//! The levelwise n-ary pipeline against a brute-force composite oracle.
//!
//! The oracle enumerates *every* syntactic arity-2 candidate — same-table
//! sorted dependent pairs against same-table referenced permutations, no
//! apriori pruning — and tests tuple inclusion directly on materialised
//! row sets. On NULL-free data (the chains generator and the fixtures
//! here) the levelwise search must return the byte-identical IND set while
//! generating far fewer candidates than the oracle enumerates.

use spider_ind::core::{profile_database, AttributeProfile, NaryCandidate, NaryFinder};
use spider_ind::datagen::{generate_chains, ChainsConfig};
use spider_ind::storage::{ColumnSchema, DataType, Database, Table, TableSchema};
use spider_ind::valueset::ExportOptions;
use std::collections::HashSet;

/// Materialises the set of (component, component) canonical-byte tuples of
/// two columns, skipping rows with any NULL.
fn tuple_set(
    db: &Database,
    a: &AttributeProfile,
    b: &AttributeProfile,
) -> HashSet<(Vec<u8>, Vec<u8>)> {
    let col_a = db.column(&a.name).expect("column");
    let col_b = db.column(&b.name).expect("column");
    col_a
        .iter()
        .zip(col_b)
        .filter(|(x, y)| !x.is_null() && !y.is_null())
        .map(|(x, y)| (x.canonical_bytes(), y.canonical_bytes()))
        .collect()
}

/// Brute-force arity-2 discovery: every candidate, no pruning, direct set
/// containment. Returns the satisfied candidates sorted — the ground truth
/// the levelwise pipeline must reproduce exactly. Also returns how many
/// candidates it had to test.
fn oracle_arity_2(db: &Database) -> (Vec<NaryCandidate>, u64) {
    let profiles = profile_database(db);
    let dep_ok = |p: &AttributeProfile| p.is_dependent_candidate();
    let ref_ok = |p: &AttributeProfile| p.non_null > 0;
    let mut satisfied = Vec::new();
    let mut tested = 0u64;
    for d1 in profiles.iter().filter(|p| dep_ok(p)) {
        for d2 in profiles.iter().filter(|p| dep_ok(p)) {
            if d1.id >= d2.id || d1.name.table != d2.name.table {
                continue;
            }
            for r1 in profiles.iter().filter(|p| ref_ok(p)) {
                for r2 in profiles.iter().filter(|p| ref_ok(p)) {
                    if r1.id == r2.id || r1.name.table != r2.name.table {
                        continue;
                    }
                    if (d1.id, d2.id) == (r1.id, r2.id) {
                        continue; // trivially reflexive
                    }
                    tested += 1;
                    let dep_tuples = tuple_set(db, d1, d2);
                    let ref_tuples = tuple_set(db, r1, r2);
                    if dep_tuples.is_subset(&ref_tuples) {
                        satisfied.push(NaryCandidate::new(vec![d1.id, d2.id], vec![r1.id, r2.id]));
                    }
                }
            }
        }
    }
    satisfied.sort();
    (satisfied, tested)
}

fn assert_levelwise_matches_oracle(db: &Database) {
    let (expected, oracle_tested) = oracle_arity_2(db);
    let discovery = NaryFinder::with_max_arity(2)
        .discover_in_memory(db)
        .expect("levelwise discovery");
    assert_eq!(
        discovery.satisfied,
        expected,
        "{}: levelwise result must be byte-identical to the oracle",
        db.name()
    );
    let level2 = discovery
        .levels
        .iter()
        .find(|l| l.arity == 2)
        .expect("level 2 ran");
    assert!(
        level2.generated < oracle_tested,
        "{}: apriori generation ({}) must undercut the oracle's candidate \
         space ({})",
        db.name(),
        level2.generated,
        oracle_tested
    );
    assert_eq!(
        level2.enumerable, oracle_tested,
        "the enumerable yardstick counts exactly the oracle's space"
    );
}

#[test]
fn levelwise_matches_oracle_on_chains() {
    let db = generate_chains(&ChainsConfig::tiny());
    let (expected, _) = oracle_arity_2(&db);
    assert!(!expected.is_empty(), "chains must contain a composite IND");
    assert_levelwise_matches_oracle(&db);
}

#[test]
fn levelwise_matches_oracle_on_a_mirror_heavy_fixture() {
    // Duplicated pair tables produce a dense web of composite INDs (every
    // direction between the copies), plus a partial table that holds only
    // a subset. NULL-free so the oracle's semantics coincide exactly.
    let mut db = Database::new("mirrors");
    for (name, rows) in [("left", 18i64), ("right", 18), ("part", 9)] {
        let mut t = Table::new(
            TableSchema::new(
                name,
                vec![
                    ColumnSchema::new("k", DataType::Integer),
                    ColumnSchema::new("v", DataType::Text),
                ],
            )
            .expect("schema"),
        );
        for i in 0..rows {
            t.insert(vec![(i % 6).into(), format!("v{}", i % 3).into()])
                .expect("row");
        }
        db.add_table(t).expect("table");
    }
    assert_levelwise_matches_oracle(&db);
}

#[test]
fn chains_gold_key_is_found_and_disk_agrees() {
    let db = generate_chains(&ChainsConfig::tiny());
    let finder = NaryFinder::with_max_arity(2);
    let mem = finder.discover_in_memory(&db).expect("memory");
    let named = mem.satisfied_named();
    assert!(
        named.iter().any(|(dep, refd)| {
            dep.iter().map(ToString::to_string).collect::<Vec<_>>()
                == ["contact.pdb_code", "contact.chain_id"]
                && refd.iter().map(ToString::to_string).collect::<Vec<_>>()
                    == ["chain.pdb_code", "chain.chain_id"]
        }),
        "gold composite FK must be discovered: {named:?}"
    );
    // The negative control never shows up.
    assert!(
        named.iter().all(|(dep, _)| dep[0].table != "crystal"),
        "the poisoned crystal pairs must be refuted: {named:?}"
    );

    let dir = ind_testkit::TempDir::new("nary-agreement-disk");
    let disk = finder
        .discover_on_disk(&db, dir.path(), &ExportOptions::default())
        .expect("disk");
    assert_eq!(mem.satisfied, disk.satisfied);
    assert_eq!(mem.unary, disk.unary);
}
