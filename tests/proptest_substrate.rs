//! Property tests for the substrates: TSV persistence with hostile
//! strings, external sort vs. std sort at arbitrary spill budgets, and
//! value-file round trips over arbitrary byte strings.

use ind_testkit::TempDir;
use proptest::prelude::*;
use spider_ind::storage::tsv::{load_database, save_database};
use spider_ind::storage::{ColumnSchema, DataType, Database, Table, TableSchema, Value};
use spider_ind::valueset::{
    collect_cursor, ExternalSorter, SortOptions, ValueFileReader, ValueFileWriter,
};

fn arb_text_value() -> impl Strategy<Value = Option<String>> {
    proptest::option::of(proptest::string::string_regex("[ -~\\t\\n\\\\]{0,12}").unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tsv_round_trips_arbitrary_text(rows in proptest::collection::vec(
        (arb_text_value(), proptest::option::of(any::<i32>())), 0..12)) {
        let mut db = Database::new("prop-tsv");
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnSchema::new("s", DataType::Text),
                    ColumnSchema::new("n", DataType::Integer),
                ],
            )
            .expect("schema"),
        );
        for (s, n) in &rows {
            t.insert(vec![
                s.clone().map_or(Value::Null, Value::Text),
                n.map_or(Value::Null, |v| Value::Integer(i64::from(v))),
            ])
            .expect("row");
        }
        db.add_table(t).expect("table");

        let dir = TempDir::new("prop-tsv");
        save_database(&db, dir.path()).expect("save");
        let loaded = load_database(dir.path()).expect("load");
        let orig = db.table("t").expect("t");
        let back = loaded.table("t").expect("t");
        prop_assert_eq!(back.row_count(), orig.row_count());
        for i in 0..orig.row_count() {
            prop_assert_eq!(back.row(i), orig.row(i), "row {}", i);
        }
    }

    #[test]
    fn external_sort_equals_std_sort_at_any_budget(
        values in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..10), 0..60),
        budget in 1usize..2048,
    ) {
        let dir = TempDir::new("prop-extsort");
        let mut sorter = ExternalSorter::new(
            &dir.join("spill"),
            SortOptions { memory_budget_bytes: budget },
        )
        .expect("sorter");
        for v in &values {
            sorter.push(v).expect("push");
        }
        let out_path = dir.join("out.indv");
        let mut writer = ValueFileWriter::create(&out_path).expect("writer");
        let stats = sorter.finish_into(&mut writer).expect("merge");
        writer.finish().expect("finish");

        let mut expected = values.clone();
        expected.sort_unstable();
        expected.dedup();
        let got = collect_cursor(ValueFileReader::open(&out_path).expect("open")).expect("read");
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(stats.distinct as usize, expected.len());
        prop_assert_eq!(stats.pushed as usize, values.len());
        prop_assert_eq!(stats.min.as_deref(), expected.first().map(Vec::as_slice));
        prop_assert_eq!(stats.max.as_deref(), expected.last().map(Vec::as_slice));
    }

    #[test]
    fn value_files_round_trip_arbitrary_sorted_sets(
        raw in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..40),
    ) {
        let mut values = raw;
        values.sort_unstable();
        values.dedup();
        let dir = TempDir::new("prop-vf");
        let path = dir.join("x.indv");
        let mut w = ValueFileWriter::create(&path).expect("create");
        for v in &values {
            w.append(v).expect("append");
        }
        prop_assert_eq!(w.finish().expect("finish") as usize, values.len());
        let got = collect_cursor(ValueFileReader::open(&path).expect("open")).expect("read");
        prop_assert_eq!(got, values);
    }
}
