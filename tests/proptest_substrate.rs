//! Property tests for the substrates: TSV persistence with hostile
//! strings, external sort vs. std sort at arbitrary spill budgets, and
//! value-file round trips over arbitrary byte strings — including reads
//! through arbitrary (tiny) I/O block sizes, where record bodies straddle
//! every block boundary.

use ind_testkit::TempDir;
use proptest::prelude::*;
use spider_ind::storage::tsv::{load_database, save_database};
use spider_ind::storage::{ColumnSchema, DataType, Database, Table, TableSchema, Value};
use spider_ind::valueset::{
    collect_cursor, extract_composite_memory_set, extract_composite_to_file,
    extract_sorted_distinct, extract_to_file, ExternalSorter, IoOptions, SortOptions, ValueCursor,
    ValueFileReader, ValueFileWriter,
};

fn arb_text_value() -> impl Strategy<Value = Option<String>> {
    proptest::option::of(proptest::string::string_regex("[ -~\\t\\n\\\\]{0,12}").unwrap())
}

/// Storage values for extraction agreement: NULLs, integers, and text with
/// shared prefixes (so sorting and dedup see adjacent near-equal slices).
fn arb_column_value() -> impl Strategy<Value = Value> {
    (
        any::<u8>(),
        -50i64..50,
        proptest::string::string_regex("[a-c]{0,6}").unwrap(),
    )
        .prop_map(|(kind, n, s)| match kind % 12 {
            0 | 1 => Value::Null,
            2..=6 => Value::Integer(n),
            // A shared prefix on half the strings keeps sort/dedup honest
            // about adjacent near-equal slices.
            7 | 8 => Value::Text(format!("prefix{s}")),
            _ => Value::Text(s),
        })
}

/// Memory budgets from "spill on nearly every value" to "never spill".
fn arb_budget() -> impl Strategy<Value = usize> {
    (any::<u8>(), 64usize..2048)
        .prop_map(|(kind, small)| if kind % 4 == 0 { 1usize << 20 } else { small })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tsv_round_trips_arbitrary_text(rows in proptest::collection::vec(
        (arb_text_value(), proptest::option::of(any::<i32>())), 0..12)) {
        let mut db = Database::new("prop-tsv");
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnSchema::new("s", DataType::Text),
                    ColumnSchema::new("n", DataType::Integer),
                ],
            )
            .expect("schema"),
        );
        for (s, n) in &rows {
            t.insert(vec![
                s.clone().map_or(Value::Null, Value::Text),
                n.map_or(Value::Null, |v| Value::Integer(i64::from(v))),
            ])
            .expect("row");
        }
        db.add_table(t).expect("table");

        let dir = TempDir::new("prop-tsv");
        save_database(&db, dir.path()).expect("save");
        let loaded = load_database(dir.path()).expect("load");
        let orig = db.table("t").expect("t");
        let back = loaded.table("t").expect("t");
        prop_assert_eq!(back.row_count(), orig.row_count());
        for i in 0..orig.row_count() {
            prop_assert_eq!(back.row(i), orig.row(i), "row {}", i);
        }
    }

    #[test]
    fn external_sort_equals_std_sort_at_any_budget(
        values in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..10), 0..60),
        budget in 1usize..2048,
    ) {
        let dir = TempDir::new("prop-extsort");
        let mut sorter = ExternalSorter::new(
            &dir.join("spill"),
            SortOptions::with_memory_budget(budget),
        )
        .expect("sorter");
        for v in &values {
            sorter.push(v).expect("push");
        }
        let out_path = dir.join("out.indv");
        let mut writer = ValueFileWriter::create(&out_path).expect("writer");
        let stats = sorter.finish_into(&mut writer).expect("merge");
        writer.finish().expect("finish");

        let mut expected = values.clone();
        expected.sort_unstable();
        expected.dedup();
        let got = collect_cursor(ValueFileReader::open(&out_path).expect("open")).expect("read");
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(stats.distinct as usize, expected.len());
        prop_assert_eq!(stats.pushed as usize, values.len());
        prop_assert_eq!(stats.min.as_deref(), expected.first().map(Vec::as_slice));
        prop_assert_eq!(stats.max.as_deref(), expected.last().map(Vec::as_slice));
    }

    #[test]
    fn arena_extraction_matches_sorted_distinct_at_any_budget_and_block(
        values in proptest::collection::vec(arb_column_value(), 0..80),
        budget in arb_budget(),
        block in 1usize..96,
    ) {
        // The whole arena pipeline (render directly into the arena → index
        // sort → spill at the budget → merge-heap dedup → block-staged
        // write) must reproduce the trivial in-memory answer byte for
        // byte, whatever the budget and I/O block size.
        let dir = TempDir::new("prop-arena-extract");
        let path = dir.join("col.indv");
        let stats = extract_to_file(
            &values,
            &path,
            &dir.join("spill"),
            SortOptions {
                memory_budget_bytes: budget,
                io: IoOptions::with_block_size(block),
            },
        )
        .expect("extract");
        let expected = extract_sorted_distinct(&values);
        let got = collect_cursor(
            ValueFileReader::open_with_options(&path, &IoOptions::with_block_size(block))
                .expect("open"),
        )
        .expect("read");
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(stats.distinct as usize, expected.len());
        prop_assert_eq!(
            stats.pushed as usize,
            values.iter().filter(|v| !v.is_null()).count()
        );
        prop_assert_eq!(stats.min.as_deref(), expected.first().map(Vec::as_slice));
        prop_assert_eq!(stats.max.as_deref(), expected.last().map(Vec::as_slice));
    }

    #[test]
    fn composite_arena_extraction_matches_memory_at_any_budget_and_block(
        rows in proptest::collection::vec(
            (arb_column_value(), arb_column_value()), 1..60),
        budget in arb_budget(),
        block in 1usize..96,
    ) {
        // Tuple-encoded composite streams through the same pipeline: the
        // on-disk export must agree with the in-memory composite set even
        // when spill boundaries land inside escaped tuple encodings.
        let a: Vec<Value> = rows.iter().map(|(x, _)| x.clone()).collect();
        let b: Vec<Value> = rows.iter().map(|(_, y)| y.clone()).collect();
        let dir = TempDir::new("prop-arena-composite");
        let path = dir.join("pair.indv");
        let stats = extract_composite_to_file(
            &[&a, &b],
            &path,
            &dir.join("spill"),
            SortOptions {
                memory_budget_bytes: budget,
                io: IoOptions::with_block_size(block),
            },
        )
        .expect("extract");
        let mem = extract_composite_memory_set(&[&a, &b]);
        let got = collect_cursor(
            ValueFileReader::open_with_options(&path, &IoOptions::with_block_size(block))
                .expect("open"),
        )
        .expect("read");
        prop_assert_eq!(got, mem.as_slice().to_vec());
        prop_assert_eq!(stats.distinct, mem.len());
    }

    #[test]
    fn value_files_round_trip_arbitrary_sorted_sets(
        raw in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..40),
    ) {
        let mut values = raw;
        values.sort_unstable();
        values.dedup();
        let dir = TempDir::new("prop-vf");
        let path = dir.join("x.indv");
        let mut w = ValueFileWriter::create(&path).expect("create");
        for v in &values {
            w.append(v).expect("append");
        }
        prop_assert_eq!(w.finish().expect("finish") as usize, values.len());
        let got = collect_cursor(ValueFileReader::open(&path).expect("open")).expect("read");
        prop_assert_eq!(got, values);
    }

    #[test]
    fn value_files_round_trip_at_arbitrary_block_sizes(
        raw in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..30),
        write_block in 1usize..96,
        read_block in 1usize..96,
    ) {
        // Blocks of a few bytes against values of up to 64 bytes: most
        // records straddle a boundary, many exceed the whole block. The
        // stream must be byte-identical to the default-block one.
        let mut values = raw;
        values.sort_unstable();
        values.dedup();
        let dir = TempDir::new("prop-vf-blocks");
        let path = dir.join("x.indv");
        let mut w = ValueFileWriter::create_with_options(
            &path,
            &IoOptions::with_block_size(write_block),
        )
        .expect("create");
        for v in &values {
            w.append(v).expect("append");
        }
        w.finish().expect("finish");
        let reader = ValueFileReader::open_with_options(
            &path,
            &IoOptions::with_block_size(read_block),
        )
        .expect("open");
        prop_assert_eq!(collect_cursor(reader).expect("read"), values);
    }

    #[test]
    fn seek_agrees_with_scan_at_arbitrary_block_sizes(
        raw in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..24),
        lower in proptest::collection::vec(any::<u8>(), 0..48),
        read_block in 1usize..64,
    ) {
        let mut values = raw;
        values.sort_unstable();
        values.dedup();
        let dir = TempDir::new("prop-vf-seek");
        let path = dir.join("x.indv");
        let mut w = ValueFileWriter::create(&path).expect("create");
        for v in &values {
            w.append(v).expect("append");
        }
        w.finish().expect("finish");

        let options = IoOptions::with_block_size(read_block);
        let mut seeker = ValueFileReader::open_with_options(&path, &options).expect("open");
        let found = seeker.seek(&lower).expect("seek");
        let expected_idx = values.iter().position(|v| v.as_slice() >= lower.as_slice());
        prop_assert_eq!(found, expected_idx.is_some(), "lower={:?}", lower);
        if let Some(idx) = expected_idx {
            prop_assert_eq!(seeker.current(), values[idx].as_slice());
            // The rest of the stream must continue exactly from there.
            let mut rest = vec![values[idx].clone()];
            rest.extend(collect_cursor(seeker).expect("drain"));
            prop_assert_eq!(&rest[..], &values[idx..]);
        }
    }

    #[test]
    fn prefetched_reads_are_byte_identical_at_any_block_and_budget(
        values in proptest::collection::vec(arb_column_value(), 0..80),
        budget in arb_budget(),
        block in 1usize..96,
    ) {
        // Overlapped prefetch must be invisible in the data: the same
        // export read with and without the prefetch worker (and exported
        // with prefetched spill-merge readers) yields identical streams,
        // whatever the block size and spill budget.
        let dir = TempDir::new("prop-prefetch");
        let plain_io = IoOptions::with_block_size(block);
        let prefetch_io = IoOptions::with_block_size(block).prefetched(true);
        let plain_path = dir.join("plain.indv");
        extract_to_file(
            &values,
            &plain_path,
            &dir.join("spill-plain"),
            SortOptions {
                memory_budget_bytes: budget,
                io: plain_io.clone(),
            },
        )
        .expect("extract plain");
        let prefetch_path = dir.join("prefetch.indv");
        extract_to_file(
            &values,
            &prefetch_path,
            &dir.join("spill-prefetch"),
            SortOptions {
                memory_budget_bytes: budget,
                io: prefetch_io.clone(),
            },
        )
        .expect("extract prefetched");
        prop_assert_eq!(
            std::fs::read(&plain_path).expect("plain bytes"),
            std::fs::read(&prefetch_path).expect("prefetch bytes"),
            "prefetched spill merge must write identical files"
        );
        let baseline = collect_cursor(
            ValueFileReader::open_with_options(&plain_path, &plain_io).expect("open plain"),
        )
        .expect("read plain");
        let overlapped = collect_cursor(
            ValueFileReader::open_with_options(&plain_path, &prefetch_io).expect("open prefetch"),
        )
        .expect("read prefetched");
        prop_assert_eq!(&overlapped, &baseline);
    }

    #[test]
    fn truncated_value_files_never_read_clean(
        raw in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..24), 1..12),
        cut_seed in 0usize..10_000,
        read_block in 1usize..64,
    ) {
        // Cutting anywhere strictly inside the record region must surface
        // as `Corrupt` (open or drain), never as a silently shorter stream.
        let mut values = raw;
        values.sort_unstable();
        values.dedup();
        let dir = TempDir::new("prop-vf-trunc");
        let full = dir.join("full.indv");
        let mut w = ValueFileWriter::create(&full).expect("create");
        for v in &values {
            w.append(v).expect("append");
        }
        w.finish().expect("finish");
        let data = std::fs::read(&full).expect("read file");
        const HEADER_LEN: usize = 16;
        // `raw` is non-empty and deduped values keep >= 1 entry, so there
        // is always at least one record byte to cut.
        let cut = HEADER_LEN + cut_seed % (data.len() - HEADER_LEN);
        let path = dir.join("cut.indv");
        std::fs::write(&path, &data[..cut]).expect("write cut");
        let drained =
            ValueFileReader::open_with_options(&path, &IoOptions::with_block_size(read_block))
                .and_then(collect_cursor);
        prop_assert!(drained.is_err(), "cut at {} of {} read clean", cut, data.len());
    }
}
