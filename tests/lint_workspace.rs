//! The workspace meta-test: `cargo test` lints the entire tree.
//!
//! This is the enforcement point for the invariants PRs 2–5 established —
//! the allocation-free merge and export loops, library-wide `Result`
//! discipline, audited `unsafe`, and no silently swallowed errors. A
//! regression in any of them fails the suite with a rustc-style
//! diagnostic pointing at the offending line.

use ind_lint::{check_workspace, load_config};
use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let config = load_config(root).expect("lint.toml parses");
    let diags = check_workspace(root, &config).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "ind-lint found {} violation(s); fix them or annotate with \
         `// lint: allow(<rule>) — <reason>`:\n\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.render_text())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn hot_path_modules_stay_under_hot_alloc() {
    // The config must keep covering the merge/export hot paths; silently
    // dropping a file from the list would disable the zero-alloc guard.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let config = load_config(root).expect("lint.toml parses");
    let hot = config.hot_alloc.expect("hot_alloc rule configured");
    for file in [
        "crates/core/src/spider.rs",
        "crates/valueset/src/heap.rs",
        "crates/valueset/src/block.rs",
        "crates/valueset/src/external_sort.rs",
        "crates/valueset/src/tuple.rs",
    ] {
        assert!(
            hot.paths.iter().any(|p| p == file),
            "{file} missing from [rules.hot_alloc] paths in lint.toml"
        );
        assert!(
            root.join(file).is_file(),
            "{file} is listed in lint.toml but no longer exists"
        );
    }
}
