//! The paper's qualitative results, asserted as tests. Each test names the
//! Section 5 / Table claim it checks; EXPERIMENTS.md records the numbers.

use spider_ind::core::{Algorithm, IndFinder, PretestConfig};
use spider_ind::datagen::{
    generate_pdb, generate_scop, generate_uniprot, BiosqlConfig, OpenMmsConfig, ScopConfig,
};
use spider_ind::discovery::{
    evaluate_foreign_keys, filter_surrogate_inds, find_accession_candidates,
    identify_primary_relation, AccessionRules,
};

fn uniprot() -> spider_ind::storage::Database {
    generate_uniprot(&BiosqlConfig {
        bioentries: 200,
        ..Default::default()
    })
}

#[test]
fn uniprot_all_discoverable_fks_are_found() {
    // "Our algorithm found all defined foreign keys as INDs, with the
    // exception of two foreign keys that are defined on empty tables."
    let db = uniprot();
    let d = IndFinder::with_algorithm(Algorithm::Spider)
        .discover_in_memory(&db)
        .expect("discovery");
    let eval = evaluate_foreign_keys(&db, &d);
    assert_eq!(eval.found.len(), 19);
    assert_eq!(eval.missed_empty.len(), 2);
    assert!(eval.missed_other.is_empty());
    assert_eq!(eval.recall_discoverable(), 1.0);
    assert!(eval
        .missed_empty
        .iter()
        .all(|(dep, _)| dep.table == "sg_term_path"));
}

#[test]
fn uniprot_extras_are_in_the_closure_and_there_are_no_false_positives() {
    // "We found 11 INDs that are in the transitive closure of the foreign
    // key definitions … no false positives were produced."
    let db = uniprot();
    let d = IndFinder::with_algorithm(Algorithm::Spider)
        .discover_in_memory(&db)
        .expect("discovery");
    let eval = evaluate_foreign_keys(&db, &d);
    assert!(eval.closure_extras() >= 5, "several closure INDs expected");
    assert_eq!(
        eval.unexplained().len(),
        0,
        "false positives: {:?}",
        eval.unexplained()
    );
    assert_eq!(eval.surrogate_extras(), 0, "UniProt has no surrogate pairs");
}

#[test]
fn uniprot_has_exactly_the_three_paper_accession_candidates() {
    // "Applying these heuristics to BioSQL we identified three accession
    // number candidates (sg_bioentry.accession, sg_reference.crc and
    // sg_ontology.name)."
    let db = uniprot();
    let names: Vec<String> = find_accession_candidates(&db, &AccessionRules::strict())
        .into_iter()
        .map(|q| q.to_string())
        .collect();
    assert_eq!(
        names,
        vec![
            "sg_bioentry.accession".to_string(),
            "sg_ontology.name".to_string(),
            "sg_reference.crc".to_string(),
        ]
    );
}

#[test]
fn uniprot_primary_relation_is_bioentry_unambiguously() {
    // "Heuristic 2 identifies unambiguously the correct primary relation,
    // namely sg_bioentry."
    let db = uniprot();
    let d = IndFinder::with_algorithm(Algorithm::Spider)
        .discover_in_memory(&db)
        .expect("discovery");
    let pr = identify_primary_relation(&db, &d, &AccessionRules::strict());
    assert_eq!(pr.unambiguous_primary(), Some("sg_bioentry"));
}

#[test]
fn scop_structure_is_recovered_without_false_positives() {
    let db = generate_scop(&ScopConfig::tiny());
    let d = IndFinder::with_algorithm(Algorithm::Spider)
        .discover_in_memory(&db)
        .expect("discovery");
    let eval = evaluate_foreign_keys(&db, &d);
    assert!(eval.missed_other.is_empty());
    assert!(eval.missed_empty.is_empty());
    assert_eq!(eval.unexplained().len(), 0, "{:?}", eval.unexplained());
}

fn pdb() -> spider_ind::storage::Database {
    generate_pdb(&OpenMmsConfig {
        tables: 14,
        entries: 80,
        base_rows: 80,
        payload_columns: 8,
        strict_code_tables: 3,
        soft_code_tables: 3,
        seed: 42,
    })
}

#[test]
fn pdb_inds_are_dominated_by_surrogate_ranges() {
    // "There are INDs between almost all of these ID attributes, leading to
    // the observed 30,000 satisfied INDs" — and the proposed range filter
    // flags them.
    let db = pdb();
    let d = IndFinder::with_algorithm(Algorithm::Spider)
        .discover_in_memory(&db)
        .expect("discovery");
    assert!(d.ind_count() > 100, "surrogate blow-up expected");
    let (kept, filtered) = filter_surrogate_inds(&db, &d);
    assert!(
        filtered.len() * 10 > d.ind_count() * 9,
        "at least 90% of PDB INDs are surrogate coincidences ({} of {})",
        filtered.len(),
        d.ind_count()
    );
    assert!(kept.len() < 20, "few plausible FK guesses remain");
}

#[test]
fn pdb_accession_candidates_match_strict_and_softened_counts() {
    // "we find nine accession number candidates, and 19 … when softening";
    // the tiny fixture scales to 3 entry + 3 strict-code = 6 strict and
    // +3 softened.
    let db = pdb();
    let strict = find_accession_candidates(&db, &AccessionRules::strict());
    let softened = find_accession_candidates(&db, &AccessionRules::softened(0.97));
    assert_eq!(strict.len(), 6);
    assert_eq!(softened.len(), 9);
    // Softened is a superset of strict.
    for qn in &strict {
        assert!(softened.contains(qn), "{qn} missing from softened set");
    }
}

#[test]
fn pdb_primary_relation_is_the_three_way_entry_tie() {
    // "Heuristic 2 leads to three primary relation candidates (exptl,
    // struct, struct_keywords). Of these, struct is the correct solution."
    let db = pdb();
    let d = IndFinder::with_algorithm(Algorithm::Spider)
        .discover_in_memory(&db)
        .expect("discovery");
    let pr = identify_primary_relation(&db, &d, &AccessionRules::strict());
    assert_eq!(
        pr.primary_candidates,
        vec!["exptl", "struct", "struct_keywords"]
    );
    assert!(pr.unambiguous_primary().is_none());
}

#[test]
fn max_value_pretest_prunes_without_changing_results() {
    // Sec. 4.1: candidate reduction with identical output.
    for db in [
        generate_uniprot(&BiosqlConfig::tiny()),
        generate_scop(&ScopConfig::tiny()),
        pdb(),
    ] {
        let base = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .expect("base");
        let config = spider_ind::core::FinderConfig {
            pretests: PretestConfig::with_max_value(),
            ..Default::default()
        };
        let pruned = IndFinder::new(config)
            .discover_in_memory(&db)
            .expect("pruned");
        assert_eq!(base.satisfied, pruned.satisfied, "{}", db.name());
        assert!(
            pruned.metrics.pruned_max_value > 0 || db.name() == "scop",
            "{}: the pretest should prune something",
            db.name()
        );
        assert!(pruned.metrics.candidates() <= base.metrics.candidates());
    }
}

#[test]
fn candidate_counts_sit_in_the_papers_regime() {
    // Table 1 regime check at full harness scale is recorded in
    // EXPERIMENTS.md; here we assert the orders of magnitude at test scale.
    let db = generate_uniprot(&BiosqlConfig::default());
    let d = IndFinder::with_algorithm(Algorithm::Spider)
        .discover_in_memory(&db)
        .expect("uniprot");
    assert!(
        (500..3000).contains(&(d.metrics.candidates() as usize)),
        "uniprot candidates {} (paper: 910)",
        d.metrics.candidates()
    );
    assert!(
        (20..60).contains(&d.ind_count()),
        "uniprot satisfied {} (paper: 36)",
        d.ind_count()
    );

    let scop = generate_scop(&ScopConfig::default());
    let ds = IndFinder::with_algorithm(Algorithm::Spider)
        .discover_in_memory(&scop)
        .expect("scop");
    assert!(
        (40..300).contains(&(ds.metrics.candidates() as usize)),
        "scop candidates {} (paper: 43)",
        ds.metrics.candidates()
    );
    assert!(
        (5..30).contains(&ds.ind_count()),
        "scop satisfied {} (paper: 11)",
        ds.ind_count()
    );
}
