//! Property tests for the robustness layer: a single bit flip at an
//! arbitrary byte offset of an arbitrary attribute's value file, read
//! through an arbitrary (tiny) I/O block size, must produce either a
//! `Corrupt` error naming the poisoned file or the exactly-correct IND
//! set — never a silently wrong answer. Under `keep_going`, the same
//! sweep must quarantine exactly the poisoned attribute while every IND
//! over healthy attributes still validates.

use ind_testkit::TempDir;
use proptest::prelude::*;
use spider_ind::core::{Algorithm, IndFinder};
use spider_ind::storage::{ColumnSchema, DataType, Database, Table, TableSchema};
use spider_ind::valueset::{ExportOptions, FaultPlan, IoOptions};
use std::sync::Arc;

/// parent(id unique, label text) ← child(id unique, parent_id).
/// Attribute ids: 0=parent.id, 1=parent.label, 2=child.id, 3=child.parent_id.
fn fixture_db() -> Database {
    let mut db = Database::new("prop-faults");
    let mut parent = Table::new(
        TableSchema::new(
            "parent",
            vec![
                ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique(),
                ColumnSchema::new("label", DataType::Text),
            ],
        )
        .expect("schema"),
    );
    for i in 0..12i64 {
        parent
            .insert(vec![i.into(), format!("label-{i}").into()])
            .expect("row");
    }
    let mut child = Table::new(
        TableSchema::new(
            "child",
            vec![
                ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique(),
                ColumnSchema::new("parent_id", DataType::Integer),
            ],
        )
        .expect("schema"),
    );
    for i in 0..24i64 {
        child
            .insert(vec![(1000 + i).into(), (i % 12).into()])
            .expect("row");
    }
    db.add_table(parent).expect("parent");
    db.add_table(child).expect("child");
    db
}

/// Export options with `spec` injected and the given I/O block size
/// (sub-minimum sizes clamp, which is part of the sweep).
fn fault_options(spec: &str, block: usize, keep_going: bool) -> ExportOptions {
    let mut options = ExportOptions::default().keep_going(keep_going);
    options.sort.io = IoOptions::with_block_size(block)
        .with_fault(Arc::new(FaultPlan::parse(spec).expect("plan")));
    options
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bit_flips_never_silently_change_the_ind_set(
        target in 0u32..4,
        offset in 0u64..400,
        block in 1usize..96,
        parallel in any::<bool>(),
    ) {
        let db = fixture_db();
        let algorithm = if parallel {
            Algorithm::SpiderParallel { threads: 3 }
        } else {
            Algorithm::Spider
        };
        let finder = IndFinder::with_algorithm(algorithm);
        let baseline = finder.discover_in_memory(&db).expect("baseline");
        let dir = TempDir::new("prop-flip-strict");
        let spec = format!("read:attr-{target:05}:flip={offset}");
        match finder.discover_on_disk_with(&db, dir.path(), &fault_options(&spec, block, false)) {
            // Flip beyond the file, or in a file no candidate reads: the
            // answer must be exactly the clean one.
            Ok(d) => prop_assert_eq!(d.satisfied, baseline.satisfied),
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains(&format!("attr-{target:05}")),
                    "error must name the poisoned file: {}",
                    msg
                );
            }
        }
    }

    #[test]
    fn keep_going_quarantines_exactly_the_poisoned_attribute(
        target in 0u32..4,
        offset in 0u64..400,
        block in 1usize..96,
    ) {
        let db = fixture_db();
        let finder = IndFinder::with_algorithm(Algorithm::Spider);
        let baseline = finder.discover_in_memory(&db).expect("baseline");
        let dir = TempDir::new("prop-flip-kg");
        let spec = format!("read:attr-{target:05}:flip={offset}");
        let d = finder
            .discover_on_disk_with(&db, dir.path(), &fault_options(&spec, block, true))
            .expect("keep-going runs complete");
        let report = d.degraded.clone().expect("keep-going always reports");
        if report.is_clean() {
            // The flip landed beyond the end of the file and never fired.
            prop_assert_eq!(d.satisfied, baseline.satisfied);
        } else {
            let ids: Vec<u32> = report.quarantined.iter().map(|f| f.id).collect();
            prop_assert_eq!(ids, vec![target], "only the poisoned attribute");
            // A flip in a payload or CRC byte bumps `checksum_failures`;
            // one in a structural byte (magic, frame length) is caught by
            // shape checks instead — either way it was detected, which is
            // the property under test.
            let expected: Vec<_> = baseline
                .satisfied
                .iter()
                .copied()
                .filter(|c| c.dep != target && c.refd != target)
                .collect();
            prop_assert_eq!(d.satisfied, expected, "healthy INDs must all survive");
        }
    }
}
