//! Persistence round-trips and failure injection: TSV save/load of whole
//! generated databases, value-file corruption surfacing through the
//! discovery stack, and open-file budget exhaustion (Sec. 4.2).

use ind_testkit::TempDir;
use spider_ind::core::{
    generate_candidates, profiles_from_export, run_blockwise, run_brute_force, run_single_pass,
    Algorithm, BlockwiseConfig, IndFinder, PretestConfig, RunMetrics,
};
use spider_ind::datagen::{generate_scop, generate_uniprot, BiosqlConfig, ScopConfig};
use spider_ind::storage::tsv::{load_database, save_database};
use spider_ind::valueset::{ExportOptions, ExportedDatabase, FileBudget, ValueSetError};

#[test]
fn generated_databases_survive_tsv_round_trips() {
    let dir = TempDir::new("tsv-generated");
    for db in [
        generate_uniprot(&BiosqlConfig::tiny()),
        generate_scop(&ScopConfig::tiny()),
    ] {
        let path = dir.join(db.name());
        save_database(&db, &path).expect("save");
        let loaded = load_database(&path).expect("load");
        assert_eq!(loaded.name(), db.name());
        assert_eq!(loaded.table_count(), db.table_count());
        assert_eq!(loaded.total_rows(), db.total_rows());
        assert_eq!(loaded.gold_foreign_keys(), db.gold_foreign_keys());
        for t in db.tables() {
            let lt = loaded.table(t.name()).expect("table");
            assert_eq!(lt.schema(), t.schema(), "{}", t.name());
            for i in 0..t.row_count().min(5) {
                assert_eq!(lt.row(i), t.row(i), "{} row {i}", t.name());
            }
        }
    }
}

#[test]
fn discovery_on_reloaded_database_matches_original() {
    let dir = TempDir::new("tsv-discovery");
    let db = generate_uniprot(&BiosqlConfig::tiny());
    save_database(&db, dir.path()).expect("save");
    let loaded = load_database(dir.path()).expect("load");
    let finder = IndFinder::with_algorithm(Algorithm::Spider);
    let a = finder.discover_in_memory(&db).expect("original");
    let b = finder.discover_in_memory(&loaded).expect("reloaded");
    assert_eq!(a.satisfied_named(), b.satisfied_named());
}

#[test]
fn corrupt_value_file_surfaces_as_an_error_not_a_wrong_answer() {
    let dir = TempDir::new("corrupt-export");
    let db = generate_scop(&ScopConfig::tiny());
    let export =
        ExportedDatabase::export(&db, dir.path(), &ExportOptions::default()).expect("export");
    let profiles = profiles_from_export(&export);
    let mut gen = RunMetrics::new();
    let candidates = generate_candidates(&profiles, &PretestConfig::default(), &mut gen);

    // Truncate one value file mid-record.
    let victim = &export.attributes()[0].path;
    let bytes = std::fs::read(victim).expect("read");
    assert!(bytes.len() > 20);
    std::fs::write(victim, &bytes[..bytes.len() - 2]).expect("truncate");

    let mut m = RunMetrics::new();
    let err = run_brute_force(&export, &candidates, &mut m).expect_err("must fail");
    assert!(matches!(err, ValueSetError::Corrupt { .. }), "{err}");

    let mut m = RunMetrics::new();
    let err = run_single_pass(&export, &candidates, &mut m).expect_err("must fail");
    assert!(matches!(err, ValueSetError::Corrupt { .. }), "{err}");
}

#[test]
fn file_budget_failure_and_blockwise_recovery() {
    // Sec. 4.2 end to end: plain single-pass cannot run under a tight
    // open-file budget; brute force and block-wise can, and agree.
    let dir = TempDir::new("budget-recovery");
    let db = generate_scop(&ScopConfig::tiny());
    let mut export =
        ExportedDatabase::export(&db, dir.path(), &ExportOptions::default()).expect("export");
    let profiles = profiles_from_export(&export);
    let mut gen = RunMetrics::new();
    let candidates = generate_candidates(&profiles, &PretestConfig::default(), &mut gen);

    export.set_file_budget(FileBudget::new(4));

    let mut m = RunMetrics::new();
    let err = run_single_pass(&export, &candidates, &mut m).expect_err("budget too small");
    assert!(matches!(
        err,
        ValueSetError::FileBudgetExceeded { budget: 4 }
    ));

    let mut m = RunMetrics::new();
    let mut bf = run_brute_force(&export, &candidates, &mut m).expect("brute force fits");
    bf.sort();

    let mut m = RunMetrics::new();
    let bw = run_blockwise(
        &export,
        &candidates,
        &BlockwiseConfig { max_open_files: 4 },
        &mut m,
    )
    .expect("blockwise fits");
    assert_eq!(bf, bw);
    assert_eq!(export.file_budget().in_use(), 0, "all guards released");
}

#[test]
fn missing_export_file_is_an_io_error() {
    let dir = TempDir::new("missing-file");
    let db = generate_scop(&ScopConfig::tiny());
    let export =
        ExportedDatabase::export(&db, dir.path(), &ExportOptions::default()).expect("export");
    std::fs::remove_file(&export.attributes()[2].path).expect("delete");
    let profiles = profiles_from_export(&export);
    let mut gen = RunMetrics::new();
    let candidates = generate_candidates(&profiles, &PretestConfig::default(), &mut gen);
    let mut m = RunMetrics::new();
    let err = run_brute_force(&export, &candidates, &mut m).expect_err("must fail");
    assert!(matches!(err, ValueSetError::Io(_)), "{err}");
}

#[test]
fn export_then_rediscover_from_files_only() {
    // The paper's actual pipeline: the client program sees only the sorted
    // files, never the database.
    let dir = TempDir::new("files-only");
    let db = generate_uniprot(&BiosqlConfig::tiny());
    let expected = IndFinder::with_algorithm(Algorithm::BruteForce)
        .discover_in_memory(&db)
        .expect("expected");
    ExportedDatabase::export(&db, dir.path(), &ExportOptions::default()).expect("export");
    drop(db);

    // Reopen the export directory from scratch by re-exporting metadata —
    // the files carry everything: re-read them through cursors.
    let db2 = generate_uniprot(&BiosqlConfig::tiny());
    let export =
        ExportedDatabase::export(&db2, dir.path(), &ExportOptions::default()).expect("re-export");
    let profiles = profiles_from_export(&export);
    let mut gen = RunMetrics::new();
    let candidates = generate_candidates(&profiles, &PretestConfig::default(), &mut gen);
    let mut m = RunMetrics::new();
    let mut found = run_brute_force(&export, &candidates, &mut m).expect("bf");
    found.sort();
    assert_eq!(found, expected.satisfied);
}
