//! Cross-algorithm agreement: every implementation — three SQL baselines,
//! brute force (sequential and parallel), single-pass, SPIDER, block-wise —
//! must produce the identical IND set on every generated dataset, from
//! memory and from disk.

use ind_testkit::TempDir;
use spider_ind::core::{Algorithm, Candidate, IndFinder};
use spider_ind::datagen::{
    generate_pdb, generate_scop, generate_uniprot, BiosqlConfig, OpenMmsConfig, ScopConfig,
};
use spider_ind::sql::{run_sql_discovery, SqlApproach};
use spider_ind::storage::Database;

fn external_algorithms() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("brute-force", Algorithm::BruteForce),
        (
            "brute-force-parallel",
            Algorithm::BruteForceParallel { threads: 4 },
        ),
        ("single-pass", Algorithm::SinglePass),
        ("spider", Algorithm::Spider),
        (
            "spider-parallel-1",
            Algorithm::SpiderParallel { threads: 1 },
        ),
        (
            "spider-parallel-2",
            Algorithm::SpiderParallel { threads: 2 },
        ),
        (
            "spider-parallel-8",
            Algorithm::SpiderParallel { threads: 8 },
        ),
        ("blockwise-3", Algorithm::Blockwise { max_open_files: 3 }),
        ("blockwise-17", Algorithm::Blockwise { max_open_files: 17 }),
    ]
}

fn assert_all_agree(db: &Database) {
    let baseline = IndFinder::with_algorithm(Algorithm::BruteForce)
        .discover_in_memory(db)
        .expect("baseline discovery");
    assert!(
        baseline.ind_count() > 0,
        "{}: fixtures must contain at least one IND",
        db.name()
    );

    for (name, algorithm) in external_algorithms() {
        let d = IndFinder::with_algorithm(algorithm)
            .discover_in_memory(db)
            .expect("discovery");
        assert_eq!(
            d.satisfied,
            baseline.satisfied,
            "{} disagrees with brute force on {}",
            name,
            db.name()
        );
    }

    for approach in SqlApproach::ALL {
        let d = run_sql_discovery(db, approach, &Default::default()).expect("sql discovery");
        assert_eq!(
            d.satisfied,
            baseline.satisfied,
            "SQL {} disagrees on {}",
            approach.name(),
            db.name()
        );
    }
}

#[test]
fn all_algorithms_agree_on_uniprot() {
    assert_all_agree(&generate_uniprot(&BiosqlConfig::tiny()));
}

#[test]
fn all_algorithms_agree_on_scop() {
    assert_all_agree(&generate_scop(&ScopConfig::tiny()));
}

#[test]
fn all_algorithms_agree_on_pdb() {
    assert_all_agree(&generate_pdb(&OpenMmsConfig::tiny()));
}

#[test]
fn spider_parallel_agrees_with_every_sequential_algorithm_per_dataset() {
    // The partitioned runner must be byte-identical to brute force,
    // single-pass, and sequential SPIDER on all three generated databases,
    // at one, a few, and many partitions.
    for db in [
        generate_uniprot(&BiosqlConfig::tiny()),
        generate_scop(&ScopConfig::tiny()),
        generate_pdb(&OpenMmsConfig::tiny()),
    ] {
        let references = [
            ("brute-force", Algorithm::BruteForce),
            ("single-pass", Algorithm::SinglePass),
            ("spider", Algorithm::Spider),
        ];
        for threads in [1usize, 2, 8] {
            let par = IndFinder::with_algorithm(Algorithm::SpiderParallel { threads })
                .discover_in_memory(&db)
                .expect("spider-parallel discovery");
            for (name, algorithm) in references.clone() {
                let seq = IndFinder::with_algorithm(algorithm)
                    .discover_in_memory(&db)
                    .expect("sequential discovery");
                assert_eq!(
                    par.satisfied,
                    seq.satisfied,
                    "spider-parallel({threads}) vs {name} on {}",
                    db.name()
                );
            }
            assert_eq!(
                par.metrics.satisfied as usize,
                par.ind_count(),
                "{}: satisfied counter must match the result",
                db.name()
            );
        }
    }
}

#[test]
fn spider_parallel_handles_empty_attributes_and_single_partition() {
    use spider_ind::storage::{ColumnSchema, DataType, Database, Table, TableSchema, Value};

    // One table with an all-NULL column (empty value set), a constant
    // column (degenerate min == max stats force a single partition among
    // themselves), and a normal key column.
    let mut db = Database::new("edges");
    let mut parent = Table::new(
        TableSchema::new(
            "parent",
            vec![
                ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique(),
                ColumnSchema::new("hollow", DataType::Integer),
                ColumnSchema::new("constant", DataType::Text),
            ],
        )
        .expect("schema"),
    );
    for i in 0..30i64 {
        parent
            .insert(vec![i.into(), Value::Null, "fixed".into()])
            .expect("row");
    }
    let mut child = Table::new(
        TableSchema::new(
            "child",
            vec![ColumnSchema::new("parent_id", DataType::Integer)],
        )
        .expect("schema"),
    );
    for i in 0..60i64 {
        child.insert(vec![(i % 30).into()]).expect("row");
    }
    db.add_table(parent).expect("parent");
    db.add_table(child).expect("child");

    let baseline = IndFinder::with_algorithm(Algorithm::BruteForce)
        .discover_in_memory(&db)
        .expect("baseline");
    for threads in [1usize, 2, 8] {
        let par = IndFinder::with_algorithm(Algorithm::SpiderParallel { threads })
            .discover_in_memory(&db)
            .expect("spider-parallel");
        assert_eq!(par.satisfied, baseline.satisfied, "threads={threads}");
    }

    // All-empty database: no candidates at all, still no panic.
    let mut empty_db = Database::new("all-empty");
    let mut t = Table::new(
        TableSchema::new("t", vec![ColumnSchema::new("a", DataType::Integer)]).expect("schema"),
    );
    t.insert(vec![Value::Null]).expect("row");
    empty_db.add_table(t).expect("table");
    let d = IndFinder::with_algorithm(Algorithm::SpiderParallel { threads: 4 })
        .discover_in_memory(&empty_db)
        .expect("empty discovery");
    assert_eq!(d.ind_count(), 0);
}

#[test]
fn blockwise_at_the_budget_boundary_agrees_with_single_pass() {
    // The hard floor (`max_open_files == 2` forces 1×1 block pairs — one
    // dependent against one referenced cursor per sub-run) and a ladder of
    // odd budgets that split the attribute sets unevenly must all return
    // byte-for-byte the single-pass answer on every generated dataset.
    for db in [
        generate_uniprot(&BiosqlConfig::tiny()),
        generate_scop(&ScopConfig::tiny()),
        generate_pdb(&OpenMmsConfig::tiny()),
    ] {
        let baseline = IndFinder::with_algorithm(Algorithm::SinglePass)
            .discover_in_memory(&db)
            .expect("single-pass discovery");
        assert!(baseline.ind_count() > 0, "{}: fixture has INDs", db.name());
        for max_open_files in [2usize, 3, 5, 7, 11, 13] {
            let blockwise = IndFinder::with_algorithm(Algorithm::Blockwise { max_open_files })
                .discover_in_memory(&db)
                .expect("blockwise discovery");
            assert_eq!(
                blockwise.satisfied,
                baseline.satisfied,
                "blockwise({max_open_files}) vs single-pass on {}",
                db.name()
            );
            assert_eq!(
                blockwise.metrics.satisfied,
                baseline.metrics.satisfied,
                "blockwise({max_open_files}) satisfied counter on {}",
                db.name()
            );
        }
    }
}

#[test]
fn on_disk_discovery_matches_in_memory() {
    let db = generate_uniprot(&BiosqlConfig::tiny());
    for algorithm in [
        Algorithm::BruteForce,
        Algorithm::SinglePass,
        Algorithm::Spider,
        Algorithm::SpiderParallel { threads: 4 },
    ] {
        let finder = IndFinder::with_algorithm(algorithm.clone());
        let mem = finder.discover_in_memory(&db).expect("memory");
        let dir = TempDir::new("agreement-disk");
        let disk = finder.discover_on_disk(&db, dir.path()).expect("disk");
        assert_eq!(mem.satisfied, disk.satisfied, "{algorithm:?}");
        assert_eq!(
            mem.metrics.candidates(),
            disk.metrics.candidates(),
            "{algorithm:?}: profiles must agree"
        );
    }
}

#[test]
fn satisfied_inds_are_sorted_and_unique() {
    let db = generate_scop(&ScopConfig::tiny());
    let d = IndFinder::with_algorithm(Algorithm::SinglePass)
        .discover_in_memory(&db)
        .expect("discovery");
    let mut sorted: Vec<Candidate> = d.satisfied.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(d.satisfied, sorted);
}

#[test]
fn discovery_is_deterministic_across_runs() {
    let db = generate_pdb(&OpenMmsConfig::tiny());
    let finder = IndFinder::with_algorithm(Algorithm::SinglePass);
    let a = finder.discover_in_memory(&db).expect("first");
    let b = finder.discover_in_memory(&db).expect("second");
    assert_eq!(a.satisfied, b.satisfied);
    assert_eq!(a.metrics.items_read, b.metrics.items_read);
    assert_eq!(a.metrics.comparisons, b.metrics.comparisons);
}
