//! Integration tests for the `spider-ind` command-line tool, driving the
//! real binary end to end: generate → profile → discover → fks.

use ind_testkit::TempDir;
use std::process::Command;

fn spider_ind(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_spider-ind"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_lists_all_commands() {
    let out = spider_ind(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in ["generate", "profile", "discover", "fks"] {
        assert!(text.contains(cmd), "help missing `{cmd}`:\n{text}");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = spider_ind(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_profile_discover_fks_round_trip() {
    let dir = TempDir::new("cli-roundtrip");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");

    let out = spider_ind(&["generate", "scop", db_path, "--scale", "10"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("4 tables"));

    let out = spider_ind(&["profile", db_path]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("scop_node.sunid"));
    assert!(text.contains("unique"));

    let out = spider_ind(&["discover", db_path, "--algorithm", "spider"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("satisfied INDs"));
    assert!(
        text.contains("scop_hierarchy.sunid <= scop_node.sunid"),
        "{text}"
    );

    let out = spider_ind(&["fks", db_path]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("foreign-key guesses"));
    assert!(text.contains("accession-number candidates"));
    assert!(text.contains("primary relation candidates"));
}

#[test]
fn discover_algorithms_agree_via_cli() {
    let dir = TempDir::new("cli-agree");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");
    assert!(spider_ind(&["generate", "scop", db_path, "--scale", "5"])
        .status
        .success());

    let mut outputs = Vec::new();
    for algo in ["bf", "sp", "spider", "spiderpar", "blockwise"] {
        let mut args = vec!["discover", db_path, "--algorithm", algo];
        if algo == "spiderpar" {
            args.extend(["--threads", "3"]);
        }
        let out = spider_ind(&args);
        assert!(out.status.success(), "{algo}");
        // Compare only the IND lines (the header contains timings).
        let inds: Vec<String> = stdout(&out)
            .lines()
            .filter(|l| l.contains(" <= "))
            .map(str::to_string)
            .collect();
        outputs.push((algo, inds));
    }
    for pair in outputs.windows(2) {
        assert_eq!(pair[0].1, pair[1].1, "{} vs {}", pair[0].0, pair[1].0);
    }
}

#[test]
fn on_disk_discovery_matches_in_memory_via_cli() {
    let dir = TempDir::new("cli-ondisk");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");
    assert!(spider_ind(&["generate", "scop", db_path, "--scale", "5"])
        .status
        .success());

    let inds = |out: &std::process::Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| l.contains(" <= "))
            .map(str::to_string)
            .collect()
    };
    let mem = spider_ind(&["discover", db_path, "--algorithm", "spider"]);
    assert!(mem.status.success());

    // Disk-backed runs at default and non-default block sizes, with an
    // explicit workdir (kept) and without (temp, removed).
    let workdir = dir.join("export");
    let disk = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--names",
        "--workdir",
        workdir.to_str().expect("utf8"),
    ]);
    assert!(
        disk.status.success(),
        "{}",
        String::from_utf8_lossy(&disk.stderr)
    );
    assert_eq!(inds(&mem), inds(&disk));
    assert!(workdir.exists(), "explicit --workdir is kept");
    assert!(
        stdout(&disk).contains("read_calls="),
        "--names must report read calls:\n{}",
        stdout(&disk)
    );

    let tiny = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--block-size",
        "64",
    ]);
    assert!(tiny.status.success());
    assert_eq!(
        inds(&mem),
        inds(&tiny),
        "block size must not change results"
    );
}

#[test]
fn tiny_memory_budget_spills_and_matches_in_memory_via_cli() {
    // `--memory-budget` caps the export sorter; 256 bytes is far below any
    // column's value volume at scale 10, so every attribute export goes
    // through multi-run spills and the merge heap — and discovery must be
    // byte-identical to the in-memory run.
    let dir = TempDir::new("cli-budget");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");
    assert!(spider_ind(&["generate", "scop", db_path, "--scale", "10"])
        .status
        .success());

    let inds = |out: &std::process::Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| l.contains(" <= "))
            .map(str::to_string)
            .collect()
    };
    let mem = spider_ind(&["discover", db_path, "--algorithm", "spider"]);
    assert!(mem.status.success());
    assert!(!inds(&mem).is_empty(), "scop at scale 10 has INDs");

    let spilled = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--memory-budget",
        "256",
    ]);
    assert!(
        spilled.status.success(),
        "{}",
        String::from_utf8_lossy(&spilled.stderr)
    );
    assert_eq!(
        inds(&mem),
        inds(&spilled),
        "a spill-forcing memory budget must not change results"
    );

    // The n-ary pipeline takes the same knob for its composite exports.
    let chains_dir = dir.join("chains");
    let chains_path = chains_dir.to_str().expect("utf8 path");
    assert!(
        spider_ind(&["generate", "chains", chains_path, "--scale", "20"])
            .status
            .success()
    );
    let nary_mem = spider_ind(&["discover", chains_path, "--max-arity", "2"]);
    assert!(nary_mem.status.success());
    let nary_spilled = spider_ind(&[
        "discover",
        chains_path,
        "--max-arity",
        "2",
        "--on-disk",
        "--memory-budget",
        "256",
    ]);
    assert!(
        nary_spilled.status.success(),
        "{}",
        String::from_utf8_lossy(&nary_spilled.stderr)
    );
    assert_eq!(
        inds(&nary_mem),
        inds(&nary_spilled),
        "composite streams must survive spill-forcing budgets too"
    );
}

#[test]
fn discover_max_arity_finds_the_composite_fk_via_cli() {
    let dir = TempDir::new("cli-nary");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");

    let out = spider_ind(&["generate", "chains", db_path, "--scale", "30"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("4 tables"));

    let expected_ind = "(contact.pdb_code, contact.chain_id) <= (chain.pdb_code, chain.chain_id)";
    let mem = spider_ind(&["discover", db_path, "--max-arity", "2"]);
    assert!(mem.status.success());
    let text = stdout(&mem);
    assert!(text.contains(expected_ind), "{text}");
    assert!(
        text.contains("1 found, 0 missed, 0 extras"),
        "composite gold evaluation must be exact:\n{text}"
    );
    assert!(text.contains("enumerable"), "per-level table is printed");

    // The on-disk pipeline prints the identical IND set.
    let work_dir = dir.join("work");
    let disk = spider_ind(&[
        "discover",
        db_path,
        "--max-arity",
        "2",
        "--on-disk",
        "--block-size",
        "4096",
        "--workdir",
        work_dir.to_str().expect("utf8 path"),
    ]);
    assert!(
        disk.status.success(),
        "{}",
        String::from_utf8_lossy(&disk.stderr)
    );
    let disk_text = stdout(&disk);
    assert!(disk_text.contains(expected_ind), "{disk_text}");
    assert!(
        work_dir.join("arity-2").exists(),
        "explicit workdir keeps the composite level export"
    );
}

#[test]
fn keep_going_quarantines_and_exits_degraded_via_cli() {
    let dir = TempDir::new("cli-keepgoing");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");
    assert!(spider_ind(&["generate", "scop", db_path, "--scale", "5"])
        .status
        .success());

    // A bit flip in one attribute's value file: the run completes, prints
    // the machine-readable degraded report, and exits with the distinct
    // degraded status (2) — not success, not hard failure.
    let degraded = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--keep-going",
        "--fault-plan",
        "read:attr-00001:flip=30",
    ]);
    assert_eq!(
        degraded.status.code(),
        Some(2),
        "stdout:\n{}\nstderr:\n{}",
        stdout(&degraded),
        String::from_utf8_lossy(&degraded.stderr)
    );
    let text = stdout(&degraded);
    assert!(
        text.contains("degraded: {\"quarantined\":[{\"id\":1,"),
        "{text}"
    );
    assert!(text.contains("\"checksum_failures\":"), "{text}");
    assert!(
        text.contains("satisfied INDs"),
        "the run still answers: {text}"
    );

    // Keep-going with nothing wrong: clean report, normal exit.
    let clean = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--keep-going",
    ]);
    assert!(clean.status.success());
    assert!(
        stdout(&clean).contains("degraded: {\"quarantined\":[]"),
        "{}",
        stdout(&clean)
    );

    // Transient faults are healed, not quarantined: normal exit.
    let healed = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--keep-going",
        "--fault-plan",
        "read:*:eintr@5",
    ]);
    assert!(
        healed.status.success(),
        "{}",
        String::from_utf8_lossy(&healed.stderr)
    );
    assert!(
        stdout(&healed).contains("\"quarantined\":[]"),
        "{}",
        stdout(&healed)
    );

    // The robustness flags are disk-pipeline-only.
    let rejected = spider_ind(&["discover", db_path, "--keep-going"]);
    assert!(!rejected.status.success());
    assert!(
        String::from_utf8_lossy(&rejected.stderr).contains("--on-disk"),
        "{}",
        String::from_utf8_lossy(&rejected.stderr)
    );
}

#[test]
fn report_and_folded_trace_come_out_well_formed() {
    use spider_ind::trace::json::{parse, Json};

    let dir = TempDir::new("cli-report");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");
    assert!(spider_ind(&["generate", "scop", db_path, "--scale", "10"])
        .status
        .success());

    let report_path = dir.join("report.json");
    let folded_path = dir.join("trace.folded");
    let out = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--memory-budget",
        "4096",
        "--report",
        report_path.to_str().expect("utf8"),
        "--trace-folded",
        folded_path.to_str().expect("utf8"),
        "--progress",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The report parses, is versioned, and echoes the run's vitals.
    let text = std::fs::read_to_string(&report_path).expect("report written");
    let report = parse(&text).expect("report is valid JSON");
    assert_eq!(
        report.get("report_version").and_then(Json::as_u64),
        Some(1),
        "{text}"
    );
    let metrics = report.get("metrics").expect("metrics object");
    assert!(metrics.get("elapsed_ns").and_then(Json::as_u64).unwrap() > 0);
    assert!(metrics.get("satisfied").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(report.get("degraded"), Some(&Json::Null), "strict run");
    assert_eq!(
        report.get("dropped_events").and_then(Json::as_u64),
        Some(0),
        "no ring may overflow on a run this small"
    );
    let histograms = report.get("histograms").expect("histograms object");
    let record_len = histograms
        .get("record_len_bytes")
        .and_then(Json::as_arr)
        .expect("bucket array");
    assert!(
        record_len.iter().any(|b| b.as_u64() != Some(0)),
        "the export wrote records, so the length histogram is non-empty"
    );

    // The span tree: a single `discover` root whose children nest — every
    // child interval inside its parent's interval.
    let spans = report.get("spans").and_then(Json::as_arr).expect("spans");
    assert_eq!(spans.len(), 1, "one root: {text}");
    let root = &spans[0];
    assert_eq!(root.get("name").and_then(Json::as_str), Some("discover"));
    fn check_nesting(node: &Json, path: &str) {
        let start = node.get("start_ns").and_then(Json::as_u64).unwrap();
        let end = start + node.get("duration_ns").and_then(Json::as_u64).unwrap();
        for child in node.get("children").and_then(Json::as_arr).unwrap() {
            let name = child.get("name").and_then(Json::as_str).unwrap();
            let c_start = child.get("start_ns").and_then(Json::as_u64).unwrap();
            let c_end = c_start + child.get("duration_ns").and_then(Json::as_u64).unwrap();
            assert!(
                start <= c_start && c_end <= end,
                "{path}/{name}: child [{c_start}, {c_end}] outside parent [{start}, {end}]"
            );
            check_nesting(child, &format!("{path}/{name}"));
        }
    }
    check_nesting(root, "discover");
    let child_names: Vec<&str> = root
        .get("children")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|c| c.get("name").and_then(Json::as_str))
        .collect();
    for phase in ["export", "generate", "spider_merge"] {
        assert!(
            child_names.contains(&phase),
            "{phase} missing: {child_names:?}"
        );
    }

    // The folded stacks cover the same run, rooted at `discover`.
    let folded = std::fs::read_to_string(&folded_path).expect("folded written");
    assert!(!folded.trim().is_empty());
    for line in folded.lines() {
        assert!(
            line.starts_with("discover"),
            "every stack is rooted at discover: {line}"
        );
    }
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("discover;export;sort")),
        "per-attribute sort frames present:\n{folded}"
    );
}

#[test]
fn crash_then_resume_recovers_byte_identically_via_cli() {
    use spider_ind::trace::json::{parse, Json};

    let dir = TempDir::new("cli-crash-resume");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");
    assert!(spider_ind(&["generate", "scop", db_path, "--scale", "5"])
        .status
        .success());

    let inds = |out: &std::process::Output| -> Vec<String> {
        stdout(out)
            .lines()
            .filter(|l| l.contains(" <= "))
            .map(str::to_string)
            .collect()
    };
    let clean = spider_ind(&["discover", db_path, "--algorithm", "spider"]);
    assert!(clean.status.success());

    // First run dies mid-export on an injected torn write: dirty exit.
    let workdir = dir.join("work");
    let work_path = workdir.to_str().expect("utf8");
    let crashed = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--workdir",
        work_path,
        "--fault-plan",
        "write:*:crash=5",
    ]);
    assert!(!crashed.status.success(), "the crash must surface");

    // Second run resumes: completes, reuses at least one published
    // export, and leaves no staged `.tmp` behind.
    let report_path = dir.join("resume-report.json");
    let resumed = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--workdir",
        work_path,
        "--resume",
        "verify",
        "--report",
        report_path.to_str().expect("utf8"),
    ]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(inds(&clean), inds(&resumed), "resume changes no answers");
    let report = parse(&std::fs::read_to_string(&report_path).expect("report")).expect("json");
    let metrics = report.get("metrics").expect("metrics");
    assert!(
        metrics
            .get("exports_reused")
            .and_then(Json::as_u64)
            .unwrap()
            > 0,
        "resume must reuse the exports that landed before the crash"
    );
    for entry in std::fs::read_dir(&workdir).expect("workdir") {
        let path = entry.expect("entry").path();
        assert!(
            path.extension().and_then(|e| e.to_str()) != Some("tmp"),
            "orphan staged file survived resume: {}",
            path.display()
        );
    }
}

#[test]
fn deadline_expiry_exits_cancelled_with_flushed_report() {
    use spider_ind::trace::json::{parse, Json};

    let dir = TempDir::new("cli-deadline");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");
    assert!(spider_ind(&["generate", "scop", db_path, "--scale", "5"])
        .status
        .success());

    let workdir = dir.join("work");
    let report_path = dir.join("report.json");
    let out = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--workdir",
        workdir.to_str().expect("utf8"),
        "--deadline",
        "0ms",
        "--report",
        report_path.to_str().expect("utf8"),
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "deadline expiry has its own exit status\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cancelled during"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The report was still flushed, with the cancellation snapshot.
    let report = parse(&std::fs::read_to_string(&report_path).expect("report")).expect("json");
    assert_eq!(report.get("report_version").and_then(Json::as_u64), Some(1));
    let cancelled = report.get("cancelled").expect("cancelled section");
    assert!(
        cancelled.get("phase").and_then(Json::as_str).is_some(),
        "cancelled section records the phase reached"
    );

    // The interrupted workdir resumes to a clean finish.
    let resumed = spider_ind(&[
        "discover",
        db_path,
        "--algorithm",
        "spider",
        "--on-disk",
        "--workdir",
        workdir.to_str().expect("utf8"),
        "--resume",
    ]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert!(stdout(&resumed).contains("satisfied INDs"));
}

#[test]
fn resume_flag_demands_disk_pipeline_and_explicit_workdir() {
    let dir = TempDir::new("cli-resume-validate");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");
    assert!(spider_ind(&["generate", "scop", db_path, "--scale", "5"])
        .status
        .success());

    let no_disk = spider_ind(&["discover", db_path, "--resume"]);
    assert!(!no_disk.status.success());
    assert!(
        String::from_utf8_lossy(&no_disk.stderr).contains("--on-disk"),
        "{}",
        String::from_utf8_lossy(&no_disk.stderr)
    );

    let no_workdir = spider_ind(&["discover", db_path, "--on-disk", "--resume"]);
    assert!(!no_workdir.status.success());
    assert!(
        String::from_utf8_lossy(&no_workdir.stderr).contains("--workdir"),
        "{}",
        String::from_utf8_lossy(&no_workdir.stderr)
    );

    let bad_mode = spider_ind(&["discover", db_path, "--on-disk", "--resume", "sometimes"]);
    assert!(!bad_mode.status.success());
    assert!(
        String::from_utf8_lossy(&bad_mode.stderr).contains("sometimes"),
        "{}",
        String::from_utf8_lossy(&bad_mode.stderr)
    );
}

#[test]
fn nary_keep_going_quarantines_and_exits_degraded_via_cli() {
    let dir = TempDir::new("cli-nary-keepgoing");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");
    assert!(
        spider_ind(&["generate", "chains", db_path, "--scale", "30"])
            .status
            .success()
    );

    // A poisoned unary attribute quarantines it and every composite
    // candidate touching it; the healthy composite FK still validates.
    let degraded = spider_ind(&[
        "discover",
        db_path,
        "--max-arity",
        "2",
        "--on-disk",
        "--keep-going",
        "--fault-plan",
        "read:attr-00001:flip=30",
    ]);
    assert_eq!(
        degraded.status.code(),
        Some(2),
        "stdout:\n{}\nstderr:\n{}",
        stdout(&degraded),
        String::from_utf8_lossy(&degraded.stderr)
    );
    let text = stdout(&degraded);
    assert!(
        text.contains("degraded: {\"quarantined\":[{\"id\":1,"),
        "{text}"
    );
    assert!(
        text.contains("composite INDs"),
        "the run still answers: {text}"
    );

    // Keep-going with nothing wrong: clean degraded report, normal exit.
    let clean = spider_ind(&[
        "discover",
        db_path,
        "--max-arity",
        "2",
        "--on-disk",
        "--keep-going",
    ]);
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    assert!(
        stdout(&clean).contains("degraded: {\"quarantined\":[]"),
        "{}",
        stdout(&clean)
    );
}

#[test]
fn discover_rejects_unknown_algorithm() {
    let dir = TempDir::new("cli-badalgo");
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().expect("utf8 path");
    assert!(spider_ind(&["generate", "scop", db_path, "--scale", "5"])
        .status
        .success());
    let out = spider_ind(&["discover", db_path, "--algorithm", "quantum"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}

#[test]
fn missing_database_directory_is_a_clean_error() {
    let out = spider_ind(&["discover", "/nonexistent/place"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
