//! Focused stress tests for the single-pass subject–observer protocol —
//! the trickiest machinery in the workspace (Algorithms 2/3 plus the
//! monitor). Each scenario targets a specific interaction of the
//! `currentWaiting` / `nextWaiting` / `next` lists.

use spider_ind::core::{run_brute_force, run_single_pass, run_spider, Candidate, RunMetrics};
use spider_ind::valueset::{MemoryProvider, MemoryValueSet};

fn set(values: &[&str]) -> MemoryValueSet {
    MemoryValueSet::from_unsorted(values.iter().map(|s| s.as_bytes().to_vec()))
}

fn check(provider: &MemoryProvider, candidates: &[Candidate]) {
    let mut m_bf = RunMetrics::new();
    let mut expected = run_brute_force(provider, candidates, &mut m_bf).expect("bf");
    expected.sort();
    let mut m_sp = RunMetrics::new();
    let got = run_single_pass(provider, candidates, &mut m_sp).expect("sp");
    assert_eq!(got, expected, "single-pass disagrees");
    let mut m_spider = RunMetrics::new();
    let got = run_spider(provider, candidates, &mut m_spider).expect("spider");
    assert_eq!(got, expected, "spider disagrees");
}

fn pairs(n: u32) -> Vec<Candidate> {
    let mut out = Vec::new();
    for d in 0..n {
        for r in 0..n {
            if d != r {
                out.push(Candidate::new(d, r));
            }
        }
    }
    out
}

#[test]
fn partial_candidate_lists_are_honored() {
    // A sparse candidate set: some attributes appear only as dependents,
    // some only as references, some in both roles.
    let provider = MemoryProvider::new(vec![
        set(&["a", "b", "c"]),
        set(&["a", "b", "c", "d"]),
        set(&["b"]),
        set(&["x", "y"]),
    ]);
    let candidates = vec![
        Candidate::new(0, 1),
        Candidate::new(2, 0),
        Candidate::new(2, 1),
        Candidate::new(3, 1),
    ];
    check(&provider, &candidates);
    // Same provider, single candidate.
    check(&provider, &[Candidate::new(2, 1)]);
}

#[test]
fn one_reference_shared_by_many_dependents() {
    // One hub reference with many dependents at different positions forces
    // the "deliver only when all attached requested" rule through many
    // rounds.
    let hub = set(&["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"]);
    let mut sets = vec![hub];
    for i in 0..8u32 {
        let values: Vec<String> = (0..10u8)
            .filter(|x| x % (i as u8 + 1) == 0)
            .map(|x| ((b'a' + x) as char).to_string())
            .collect();
        sets.push(MemoryValueSet::from_unsorted(
            values.into_iter().map(String::into_bytes),
        ));
    }
    let provider = MemoryProvider::new(sets);
    let candidates: Vec<Candidate> = (1..9u32).map(|d| Candidate::new(d, 0)).collect();
    check(&provider, &candidates);
}

#[test]
fn one_dependent_against_many_references() {
    // One dependent compared against many references that refute at
    // different depths exercises currentWaiting/nextWaiting churn.
    let mut sets = vec![set(&["c", "f", "i", "l"])];
    for i in 0..9usize {
        // Reference i contains the dependent's prefix of length i.
        let values: Vec<&str> = ["c", "f", "i", "l"][..i.min(4)].to_vec();
        let mut extended = values.clone();
        extended.push("zzz"); // keep non-empty and unique-looking
        sets.push(set(&extended));
    }
    let provider = MemoryProvider::new(sets);
    let candidates: Vec<Candidate> = (1..10u32).map(|r| Candidate::new(0, r)).collect();
    check(&provider, &candidates);
}

#[test]
fn long_shared_prefixes_and_adjacent_values() {
    // Values differing only in their last byte stress comparison order.
    let provider = MemoryProvider::new(vec![
        set(&["prefix0", "prefix1", "prefix2", "prefix3"]),
        set(&["prefix0", "prefix1", "prefix2", "prefix3", "prefix4"]),
        set(&["prefix1", "prefix3"]),
        set(&["prefix", "prefix0", "prefix00", "prefix000"]),
    ]);
    check(&provider, &pairs(4));
}

#[test]
fn all_identical_sets() {
    // Every candidate satisfied; every advance is a full-group match.
    let provider = MemoryProvider::new(vec![
        set(&["m", "n", "o"]),
        set(&["m", "n", "o"]),
        set(&["m", "n", "o"]),
    ]);
    let candidates = pairs(3);
    check(&provider, &candidates);
    let mut m = RunMetrics::new();
    let found = run_single_pass(&provider, &candidates, &mut m).expect("sp");
    assert_eq!(found.len(), 6, "all ordered pairs satisfied");
}

#[test]
fn single_value_sets_and_immediate_resolutions() {
    let provider = MemoryProvider::new(vec![
        set(&["x"]),
        set(&["x"]),
        set(&["y"]),
        set(&["x", "y"]),
    ]);
    check(&provider, &pairs(4));
}

#[test]
fn staircase_of_nested_sets() {
    // s_k = first k letters; full chain of inclusions in one pass.
    let letters: Vec<String> = (0..12u8)
        .map(|i| ((b'a' + i) as char).to_string())
        .collect();
    let sets: Vec<MemoryValueSet> = (1..=12)
        .map(|k| MemoryValueSet::from_unsorted(letters[..k].iter().map(|s| s.clone().into_bytes())))
        .collect();
    let provider = MemoryProvider::new(sets);
    let candidates = pairs(12);
    check(&provider, &candidates);
    let mut m = RunMetrics::new();
    let found = run_single_pass(&provider, &candidates, &mut m).expect("sp");
    assert_eq!(found.len(), 12 * 11 / 2, "every smaller ⊆ every larger");
}

#[test]
fn duplicate_candidates_in_the_input_are_tolerated() {
    let provider = MemoryProvider::new(vec![set(&["a"]), set(&["a", "b"])]);
    let candidates = vec![
        Candidate::new(0, 1),
        Candidate::new(0, 1), // duplicate
    ];
    let mut m = RunMetrics::new();
    let found = run_single_pass(&provider, &candidates, &mut m).expect("sp");
    assert_eq!(found, vec![Candidate::new(0, 1)], "reported once");
}
