//! Property-based testing against a naive set-containment oracle.
//!
//! Random databases (small value pools force duplicates, inclusions,
//! nulls, empty columns) are run through every algorithm; each must return
//! exactly the oracle's answer, and every pruning option must leave the
//! result unchanged.

use proptest::prelude::*;
use spider_ind::core::{
    profile_database, run_brute_force, run_single_pass, run_spider, run_spider_parallel, Algorithm,
    AttributeProfile, Candidate, FinderConfig, IndFinder, PretestConfig, RunMetrics,
    SamplingConfig,
};
use spider_ind::sql::{run_sql_discovery, SqlApproach};
use spider_ind::storage::{
    ColumnSchema, DataType, Database, QualifiedName, Table, TableSchema, Value,
};
use spider_ind::valueset::{MemoryProvider, MemoryValueSet};
use std::collections::{BTreeSet, HashSet};

/// Cell model: None = NULL, Some(n) drawn from a tiny pool so inclusions
/// and duplicates happen constantly.
type CellModel = Option<u8>;
/// Column model: text flag + cells.
type ColumnModel = (bool, Vec<CellModel>);

fn arb_column(rows: usize) -> impl Strategy<Value = ColumnModel> {
    (
        any::<bool>(),
        proptest::collection::vec(proptest::option::of(0u8..8), rows),
    )
}

fn arb_table(idx: usize) -> impl Strategy<Value = Vec<ColumnModel>> {
    (0usize..20).prop_flat_map(move |rows| {
        proptest::collection::vec(arb_column(rows), 1..4).prop_map(move |cols| {
            let _ = idx;
            cols
        })
    })
}

fn arb_database() -> impl Strategy<Value = Database> {
    proptest::collection::vec(arb_table(0), 1..4).prop_map(|tables| {
        let mut db = Database::new("prop");
        for (ti, cols) in tables.into_iter().enumerate() {
            let schema = TableSchema::new(
                format!("t{ti}"),
                cols.iter()
                    .enumerate()
                    .map(|(ci, (is_text, _))| {
                        ColumnSchema::new(
                            format!("c{ci}"),
                            if *is_text {
                                DataType::Text
                            } else {
                                DataType::Integer
                            },
                        )
                    })
                    .collect(),
            )
            .expect("schema");
            let mut table = Table::new(schema);
            let rows = cols.first().map_or(0, |(_, cells)| cells.len());
            for r in 0..rows {
                let row: Vec<Value> = cols
                    .iter()
                    .map(|(is_text, cells)| match cells[r] {
                        None => Value::Null,
                        Some(n) if *is_text => Value::Text(format!("v{n}")),
                        Some(n) => Value::Integer(i64::from(n)),
                    })
                    .collect();
                table.insert(row).expect("row");
            }
            db.add_table(table).expect("table");
        }
        db
    })
}

/// Naive oracle: set containment over canonical byte sets, on exactly the
/// eligible (dependent, referenced) pairs.
fn oracle(db: &Database) -> BTreeSet<(QualifiedName, QualifiedName)> {
    let profiles = profile_database(db);
    let sets: Vec<HashSet<Vec<u8>>> = db
        .tables()
        .iter()
        .flat_map(|t| {
            t.iter_columns().map(|(_, _, col)| {
                col.iter()
                    .filter(|v| !v.is_null())
                    .map(Value::canonical_bytes)
                    .collect::<HashSet<_>>()
            })
        })
        .collect();
    let mut out = BTreeSet::new();
    for dep in &profiles {
        if !dep.is_dependent_candidate() {
            continue;
        }
        for refd in &profiles {
            if dep.id == refd.id || !refd.is_referenced_candidate() {
                continue;
            }
            if sets[dep.id as usize].is_subset(&sets[refd.id as usize]) {
                out.insert((dep.name.clone(), refd.name.clone()));
            }
        }
    }
    out
}

fn named(d: &spider_ind::core::Discovery) -> BTreeSet<(QualifiedName, QualifiedName)> {
    d.satisfied_named().into_iter().collect()
}

// ---------------------------------------------------------------------------
// Engine-level adversarial value shapes
// ---------------------------------------------------------------------------

/// Value pool engineered against the merge engine: the empty value, a 1 KB
/// shared prefix family (including the bare prefix, so prefix-of-another-
/// value ordering is exercised), and short values that interleave with it.
fn adversarial_pool() -> Vec<Vec<u8>> {
    let prefix = vec![b'p'; 1024];
    let mut pool = vec![
        Vec::new(), // the empty byte string
        b"a".to_vec(),
        b"b".to_vec(),
        b"q".to_vec(),
        prefix.clone(),
    ];
    for suffix in 0..5u8 {
        pool.push([prefix.clone(), vec![b'a' + suffix]].concat());
    }
    pool
}

/// A set of attributes drawn from the pool: each column is a multiset of
/// pool indices (`from_unsorted` sorts and dedups). Index vectors of length
/// 0 give empty columns; length-1 (and all-duplicate) vectors give the
/// all-equal-column shape.
fn arb_adversarial_sets() -> impl Strategy<Value = Vec<MemoryValueSet>> {
    let pool_len = adversarial_pool().len();
    proptest::collection::vec(proptest::collection::vec(0usize..pool_len, 0..8), 2..6).prop_map(
        move |columns| {
            let pool = adversarial_pool();
            columns
                .into_iter()
                .map(|idx| MemoryValueSet::from_unsorted(idx.into_iter().map(|i| pool[i].clone())))
                .collect()
        },
    )
}

/// Profiles over in-memory sets, as the partitioned runner needs for
/// boundary selection.
fn profiles_for_sets(sets: &[MemoryValueSet]) -> Vec<AttributeProfile> {
    sets.iter()
        .enumerate()
        .map(|(id, s)| {
            let values = s.as_slice();
            AttributeProfile {
                id: id as u32,
                name: QualifiedName::new("t", format!("c{id}")),
                data_type: DataType::Text,
                rows: values.len() as u64,
                non_null: values.len() as u64,
                distinct: values.len() as u64,
                min: values.first().cloned(),
                max: values.last().cloned(),
            }
        })
        .collect()
}

fn engine_all_pairs(n: u32) -> Vec<Candidate> {
    let mut out = Vec::new();
    for d in 0..n {
        for r in 0..n {
            if d != r {
                out.push(Candidate::new(d, r));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_algorithm_matches_the_oracle(db in arb_database()) {
        let expected = oracle(&db);
        for algorithm in [
            Algorithm::BruteForce,
            Algorithm::SinglePass,
            Algorithm::Spider,
            Algorithm::SpiderParallel { threads: 1 },
            Algorithm::SpiderParallel { threads: 3 },
            Algorithm::Blockwise { max_open_files: 2 },
        ] {
            let d = IndFinder::with_algorithm(algorithm.clone())
                .discover_in_memory(&db)
                .expect("discovery");
            prop_assert_eq!(named(&d), expected.clone(), "{:?}", algorithm);
        }
        for approach in SqlApproach::ALL {
            let d = run_sql_discovery(&db, approach, &PretestConfig::default()).expect("sql");
            prop_assert_eq!(named(&d), expected.clone(), "sql {}", approach.name());
        }
    }

    #[test]
    fn pruning_options_never_change_the_result(db in arb_database()) {
        let base = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .expect("base");

        let mut pretests = PretestConfig::with_max_value();
        pretests.min_value = true;
        let with_max = FinderConfig { pretests, ..Default::default() };
        let d = IndFinder::new(with_max).discover_in_memory(&db).expect("max");
        prop_assert_eq!(named(&d), named(&base));

        let with_transitivity = FinderConfig { transitivity: true, ..Default::default() };
        let d = IndFinder::new(with_transitivity)
            .discover_in_memory(&db)
            .expect("transitivity");
        prop_assert_eq!(named(&d), named(&base));

        let with_sampling = FinderConfig {
            sampling: Some(SamplingConfig { sample_size: 3, seed: 7 }),
            ..Default::default()
        };
        let d = IndFinder::new(with_sampling)
            .discover_in_memory(&db)
            .expect("sampling");
        prop_assert_eq!(named(&d), named(&base));
    }

    #[test]
    fn single_pass_io_never_exceeds_one_read_per_role(db in arb_database()) {
        // Figure 5's bound: the single-pass reads each value at most once
        // per role; brute force can only read more, never less, per test.
        let d = IndFinder::with_algorithm(Algorithm::SinglePass)
            .discover_in_memory(&db)
            .expect("single-pass");
        let profiles = profile_database(&db);
        let total: u64 = profiles.iter().map(|p| p.distinct).sum();
        prop_assert!(d.metrics.items_read <= 2 * total,
            "read {} of 2x{} values", d.metrics.items_read, total);
    }

    #[test]
    fn spider_engine_survives_adversarial_value_shapes(sets in arb_adversarial_sets()) {
        // Empty values, 1 KB shared prefixes, empty columns, all-equal
        // columns — run at the engine layer (no Database round-trip, so the
        // raw byte shapes reach the merge loop unmodified). Every engine
        // must return the brute-force answer byte-identically, on both the
        // all-pairs candidate set and a single-attribute candidate list,
        // and the rewritten spider must read exactly as many items as the
        // partitioned runner collapsed to one partition (they share
        // `spider_pass`, so any divergence is an engine bug).
        let n = sets.len() as u32;
        let provider = MemoryProvider::new(sets.clone());
        let profiles = profiles_for_sets(&sets);
        let total: u64 = sets.iter().map(MemoryValueSet::len).sum();
        let single = vec![Candidate::new(0, 1)];
        for candidates in [engine_all_pairs(n), single] {
            let mut m_bf = RunMetrics::new();
            let mut oracle = run_brute_force(&provider, &candidates, &mut m_bf)
                .expect("brute force");
            oracle.sort();
            let mut m_sp = RunMetrics::new();
            let sp = run_single_pass(&provider, &candidates, &mut m_sp)
                .expect("single pass");
            prop_assert_eq!(&sp, &oracle);
            let mut m1 = RunMetrics::new();
            let spider = run_spider(&provider, &candidates, &mut m1).expect("spider");
            prop_assert_eq!(&spider, &oracle);
            prop_assert!(m1.items_read <= total, "spider read {} of {}", m1.items_read, total);
            // Determinism: identical inputs, identical I/O counters.
            let mut m2 = RunMetrics::new();
            let again = run_spider(&provider, &candidates, &mut m2).expect("spider again");
            prop_assert_eq!(&again, &oracle);
            prop_assert_eq!(m1.items_read, m2.items_read);
            prop_assert_eq!(m1.value_bytes_read, m2.value_bytes_read);
            prop_assert_eq!(m1.comparisons, m2.comparisons);
            // One-partition spiderpar routes through the same merge engine:
            // identical result *and* identical I/O.
            let mut m_par1 = RunMetrics::new();
            let par1 = run_spider_parallel(&provider, &profiles, &candidates, 1, &mut m_par1)
                .expect("spiderpar 1");
            prop_assert_eq!(&par1, &oracle);
            prop_assert_eq!(m_par1.items_read, m1.items_read);
            prop_assert_eq!(m_par1.value_bytes_read, m1.value_bytes_read);
            // Multi-partition runs agree on the result (I/O may differ).
            let mut m_par3 = RunMetrics::new();
            let par3 = run_spider_parallel(&provider, &profiles, &candidates, 3, &mut m_par3)
                .expect("spiderpar 3");
            prop_assert_eq!(&par3, &oracle);
        }
    }

    #[test]
    fn transitive_closure_of_found_inds_is_consistent(db in arb_database()) {
        // INDs are transitively closed as a *semantic* relation: if A ⊆ B
        // and B ⊆ C were discovered, A ⊆ C must have been discovered too
        // (whenever it was an eligible candidate).
        let d = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .expect("discovery");
        let found: HashSet<(u32, u32)> =
            d.satisfied.iter().map(|c| (c.dep, c.refd)).collect();
        let profiles = profile_database(&db);
        for &(a, b) in &found {
            for &(b2, c) in &found {
                if b == b2 && a != c
                    && profiles[a as usize].is_dependent_candidate()
                    && profiles[c as usize].is_referenced_candidate()
                {
                    prop_assert!(
                        found.contains(&(a, c)),
                        "missing transitive IND {} ⊆ {}",
                        profiles[a as usize].name,
                        profiles[c as usize].name
                    );
                }
            }
        }
    }
}
