//! End-to-end Aladin pipeline over the three-source universe with shared
//! PDB-code pools — the integration scenario of Sec. 1.1/Sec. 5.

use spider_ind::datagen::{
    generate_universe, BiosqlConfig, OpenMmsConfig, ScopConfig, UniverseConfig,
};
use spider_ind::discovery::{run_aladin, AladinConfig};

fn universe() -> spider_ind::datagen::Universe {
    generate_universe(&UniverseConfig {
        uniprot: BiosqlConfig {
            bioentries: 120,
            ..Default::default()
        },
        scop: ScopConfig {
            nodes: 150,
            pdb_pool: 100,
            ..Default::default()
        },
        pdb: OpenMmsConfig {
            tables: 8,
            entries: 120,
            base_rows: 60,
            payload_columns: 6,
            strict_code_tables: 2,
            soft_code_tables: 1,
            seed: 42,
        },
    })
}

#[test]
fn pipeline_identifies_each_sources_primary_relation() {
    let u = universe();
    let report =
        run_aladin(&[&u.uniprot, &u.scop, &u.pdb], &AladinConfig::default()).expect("pipeline");
    let primary = |name: &str| -> Vec<String> {
        report
            .sources
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing source {name}"))
            .primary_relation
            .primary_candidates
            .clone()
    };
    assert_eq!(primary("uniprot"), vec!["sg_bioentry"]);
    assert_eq!(
        primary("pdb"),
        vec!["exptl", "struct", "struct_keywords"],
        "the paper's three-way tie"
    );
    assert!(!primary("scop").is_empty());
}

#[test]
fn pipeline_finds_the_exact_scop_to_pdb_link() {
    let u = universe();
    let report =
        run_aladin(&[&u.uniprot, &u.scop, &u.pdb], &AladinConfig::default()).expect("pipeline");
    let link = report
        .links
        .iter()
        .find(|l| {
            l.source_db == "scop"
                && l.source_attr.to_string() == "scop_classification.pdb_code"
                && l.target_attr.to_string() == "struct.entry_id"
        })
        .expect("scop→pdb link must exist");
    assert!(link.exact, "every SCOP domain names a real PDB entry");
    assert_eq!(link.coefficient, 1.0);
}

#[test]
fn pipeline_finds_the_partial_uniprot_to_pdb_link() {
    let u = universe();
    let report =
        run_aladin(&[&u.uniprot, &u.scop, &u.pdb], &AladinConfig::default()).expect("pipeline");
    let link = report
        .links
        .iter()
        .find(|l| l.source_db == "uniprot" && l.source_attr.to_string() == "sg_dbxref.accession")
        .expect("uniprot→pdb partial link must exist");
    assert!(!link.exact, "only the dbname='PDB' rows are codes");
    assert!(
        link.coefficient > 0.2 && link.coefficient < 0.8,
        "coefficient {}",
        link.coefficient
    );
}

#[test]
fn no_links_invent_themselves_between_unrelated_attributes() {
    let u = universe();
    let report =
        run_aladin(&[&u.uniprot, &u.scop, &u.pdb], &AladinConfig::default()).expect("pipeline");
    for link in &report.links {
        assert!(
            link.source_attr.column.contains("accession")
                || link.source_attr.column.contains("pdb_code")
                || link.source_attr.column.contains("entry_id")
                || link.source_attr.column.contains("code"),
            "suspicious link source: {} (coefficient {})",
            link.source_attr,
            link.coefficient
        );
    }
}

#[test]
fn key_candidates_cover_every_declared_unique_column_with_data() {
    let u = universe();
    let report =
        run_aladin(&[&u.uniprot, &u.scop, &u.pdb], &AladinConfig::default()).expect("pipeline");
    let uniprot = report.sources.iter().find(|s| s.name == "uniprot").unwrap();
    let key_names: Vec<String> = uniprot
        .key_candidates
        .iter()
        .map(|k| k.attribute.to_string())
        .collect();
    for expected in ["sg_bioentry.id", "sg_bioentry.accession", "sg_taxon.id"] {
        assert!(
            key_names.contains(&expected.to_string()),
            "{expected} missing from {key_names:?}"
        );
    }
}

#[test]
fn prefixed_pdb_codes_are_linked_via_the_concat_transform() {
    // The paper's Sec. 7 example: SCOP stores "PDB-144f" while PDB stores
    // "144f". The plain IND fails; the affix-transform search recovers it.
    let mut cfg = UniverseConfig {
        uniprot: BiosqlConfig {
            bioentries: 120,
            ..Default::default()
        },
        scop: ScopConfig {
            nodes: 150,
            pdb_pool: 100,
            prefixed_pdb_codes: true,
            ..Default::default()
        },
        pdb: OpenMmsConfig {
            tables: 8,
            entries: 120,
            base_rows: 60,
            payload_columns: 6,
            strict_code_tables: 2,
            soft_code_tables: 1,
            seed: 42,
        },
    };
    cfg.scop.prefixed_pdb_codes = true;
    let u = generate_universe(&cfg);
    let report = run_aladin(&[&u.scop, &u.pdb], &AladinConfig::default()).expect("pipeline");
    let link = report
        .links
        .iter()
        .find(|l| {
            l.source_attr.to_string() == "scop_classification.pdb_code"
                && l.target_attr.to_string() == "struct.entry_id"
        })
        .expect("transform link must exist");
    let transform = link.transform.as_deref().expect("found via transform");
    assert!(transform.contains("PDB-"), "transform: {transform}");
    assert!(link.exact, "all stripped codes are valid PDB entries");
    let rendered = report.to_string();
    assert!(rendered.contains("via transform"), "{rendered}");
}

#[test]
fn raising_the_threshold_drops_partial_links_only() {
    let u = universe();
    let strict_cfg = AladinConfig {
        link_threshold: 0.95,
        ..Default::default()
    };
    let strict = run_aladin(&[&u.uniprot, &u.scop, &u.pdb], &strict_cfg).expect("pipeline");
    assert!(strict.links.iter().all(|l| l.coefficient >= 0.95));
    assert!(
        strict
            .links
            .iter()
            .any(|l| l.source_attr.to_string() == "scop_classification.pdb_code"),
        "exact links must survive"
    );
    assert!(
        !strict
            .links
            .iter()
            .any(|l| l.source_attr.to_string() == "sg_dbxref.accession"),
        "partial links must drop"
    );
}
