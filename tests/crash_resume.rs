//! Crash-safety end to end: a run killed at an export boundary — torn
//! write, failed fsync, or cooperative cancellation — must leave a
//! workdir that a `--resume` run completes to the byte-identical result
//! of an uninterrupted run, reusing the exports that already landed and
//! sweeping every staged `.tmp` file.

use ind_testkit::TempDir;
use proptest::prelude::*;
use spider_ind::core::{Algorithm, IndFinder};
use spider_ind::storage::{ColumnSchema, DataType, Database, Table, TableSchema};
use spider_ind::valueset::{CancelToken, ExportOptions, FaultPlan, IoOptions, ResumeMode};
use std::path::Path;
use std::sync::Arc;

/// parent(id unique, label text) ← child(id unique, parent_id).
/// Attribute ids: 0=parent.id, 1=parent.label, 2=child.id, 3=child.parent_id.
fn fixture_db() -> Database {
    let mut db = Database::new("crash-resume");
    let mut parent = Table::new(
        TableSchema::new(
            "parent",
            vec![
                ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique(),
                ColumnSchema::new("label", DataType::Text),
            ],
        )
        .expect("schema"),
    );
    for i in 0..12i64 {
        parent
            .insert(vec![i.into(), format!("label-{i}").into()])
            .expect("row");
    }
    let mut child = Table::new(
        TableSchema::new(
            "child",
            vec![
                ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique(),
                ColumnSchema::new("parent_id", DataType::Integer),
            ],
        )
        .expect("schema"),
    );
    for i in 0..24i64 {
        child
            .insert(vec![(1000 + i).into(), (i % 12).into()])
            .expect("row");
    }
    db.add_table(parent).expect("parent");
    db.add_table(child).expect("child");
    db
}

/// Every published value file in `dir`, as `(name, bytes)` sorted by name
/// — the byte-identity witness.
fn value_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("read_dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("indv") {
            let name = path
                .file_name()
                .expect("name")
                .to_string_lossy()
                .into_owned();
            out.push((name, std::fs::read(&path).expect("read")));
        }
    }
    out.sort();
    out
}

/// Asserts the workdir holds no staged `.tmp` file (top level — where
/// atomic publication stages and where resume sweeps).
fn assert_no_tmp(dir: &Path) {
    for entry in std::fs::read_dir(dir).expect("read_dir") {
        let path = entry.expect("entry").path();
        assert!(
            path.extension().and_then(|e| e.to_str()) != Some("tmp"),
            "orphan staged file survived resume: {}",
            path.display()
        );
    }
}

/// Options with the given fault `spec` injected (no other tuning).
fn faulted(spec: &str) -> ExportOptions {
    let mut options = ExportOptions::default();
    options.sort.io =
        IoOptions::default().with_fault(Arc::new(FaultPlan::parse(spec).expect("plan")));
    options
}

#[test]
fn resume_recovers_from_a_crash_at_every_write_boundary() {
    let db = fixture_db();
    let finder = IndFinder::with_algorithm(Algorithm::Spider);
    let clean_dir = TempDir::new("crash-clean");
    let clean = finder
        .discover_on_disk_with(&db, clean_dir.path(), &ExportOptions::default())
        .expect("clean run");
    let clean_files = value_files(clean_dir.path());

    // Sweep the crash over every write the export issues — value-file
    // frames, footers, and the manifest itself — until a run survives
    // because the Nth write never happens; every interrupted prefix must
    // resume to the identical answer.
    let mut crashes = 0u32;
    let mut total_reused = 0u64;
    for n in 1..400u32 {
        let dir = TempDir::new("crash-boundary");
        match finder.discover_on_disk_with(&db, dir.path(), &faulted(&format!("write:*:crash={n}")))
        {
            Ok(d) => {
                assert_eq!(d.satisfied, clean.satisfied, "uncrashed run at n={n}");
                assert!(crashes > 0, "the sweep must hit at least one boundary");
                assert!(
                    total_reused > 0,
                    "later boundaries must reuse earlier exports"
                );
                return;
            }
            Err(_) => {
                crashes += 1;
                let resumed = finder
                    .discover_on_disk_with(
                        &db,
                        dir.path(),
                        &ExportOptions::default().resume(ResumeMode::Verify),
                    )
                    .unwrap_or_else(|e| panic!("resume after crash={n} failed: {e}"));
                assert_eq!(resumed.satisfied, clean.satisfied, "INDs after crash={n}");
                assert_eq!(
                    resumed.metrics.exports_reused + resumed.metrics.exports_redone,
                    4,
                    "all four attributes accounted for after crash={n}"
                );
                total_reused += resumed.metrics.exports_reused;
                assert_no_tmp(dir.path());
                assert_eq!(
                    value_files(dir.path()),
                    clean_files,
                    "value files after crash={n} resume"
                );
            }
        }
    }
    panic!("crash sweep never ran past the export's write count");
}

#[test]
fn resume_recovers_from_a_failed_fsync_at_each_publication() {
    let db = fixture_db();
    let finder = IndFinder::with_algorithm(Algorithm::Spider);
    let clean_dir = TempDir::new("fsync-clean");
    let clean = finder
        .discover_on_disk_with(&db, clean_dir.path(), &ExportOptions::default())
        .expect("clean run");
    let clean_files = value_files(clean_dir.path());

    // Fail the durability point of each artifact in turn: every value
    // file's fsync and the manifest's own.
    for target in [
        "attr-00000",
        "attr-00001",
        "attr-00002",
        "attr-00003",
        "MANIFEST",
    ] {
        let dir = TempDir::new("fsync-boundary");
        let err = finder
            .discover_on_disk_with(&db, dir.path(), &faulted(&format!("fsync:{target}:fail")))
            .expect_err("a failed fsync must abort the strict run");
        assert!(err.to_string().contains("fsync"), "{target}: {err}");

        let resumed = finder
            .discover_on_disk_with(
                &db,
                dir.path(),
                &ExportOptions::default().resume(ResumeMode::Reuse),
            )
            .unwrap_or_else(|e| panic!("resume after fsync:{target}:fail failed: {e}"));
        assert_eq!(resumed.satisfied, clean.satisfied, "INDs after {target}");
        assert_no_tmp(dir.path());
        assert_eq!(value_files(dir.path()), clean_files, "files after {target}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interrupt a run at an arbitrary point — a torn-write crash at the
    /// Nth write or a cooperative cancel at the Nth poll — across
    /// arbitrary I/O block sizes and sort memory budgets, then resume:
    /// the final IND set and every published value file must be
    /// byte-identical to an uninterrupted run at the same settings.
    #[test]
    fn interrupted_runs_resume_to_byte_identical_results(
        interrupt in 1u64..150,
        crash in any::<bool>(),
        block in 1usize..96,
        budget in 256usize..4096,
    ) {
        let db = fixture_db();
        let finder = IndFinder::with_algorithm(Algorithm::Spider);

        let clean_dir = TempDir::new("prop-resume-clean");
        let mut clean_options = ExportOptions::default();
        clean_options.sort.io = IoOptions::with_block_size(block);
        clean_options.sort.memory_budget_bytes = budget;
        let clean = finder
            .discover_on_disk_with(&db, clean_dir.path(), &clean_options)
            .expect("uninterrupted run");
        let clean_files = value_files(clean_dir.path());

        let dir = TempDir::new("prop-resume");
        let mut first = ExportOptions::default();
        first.sort.io = IoOptions::with_block_size(block);
        first.sort.memory_budget_bytes = budget;
        if crash {
            first.sort.io = first
                .sort
                .io
                .with_fault(Arc::new(FaultPlan::parse(&format!("write:*:crash={interrupt}")).expect("plan")));
        } else {
            first = first.with_cancel(CancelToken::cancel_after(interrupt));
        }
        // The interrupted run may fail at any point — or finish, when the
        // interrupt lands past the end. Both are part of the sweep.
        let _ = finder.discover_on_disk_with(&db, dir.path(), &first);

        let mut resume = ExportOptions::default().resume(ResumeMode::Verify);
        resume.sort.io = IoOptions::with_block_size(block);
        resume.sort.memory_budget_bytes = budget;
        let resumed = finder
            .discover_on_disk_with(&db, dir.path(), &resume)
            .expect("resume completes");
        prop_assert_eq!(&resumed.satisfied, &clean.satisfied);
        prop_assert_eq!(
            resumed.metrics.exports_reused + resumed.metrics.exports_redone,
            4
        );
        assert_no_tmp(dir.path());
        prop_assert_eq!(value_files(dir.path()), clean_files);
    }
}
