//! Property-based tests for `ind_core::closure::transitive_closure`:
//! random edge sets over a tiny node pool (cycles and shared paths happen
//! constantly), explicit long chains, and explicit cycles. The invariants:
//! the closure contains its base (minus self-pairs), is idempotent
//! (`closure(closure(x)) == closure(x)`), never emits self-pairs, and
//! matches reachability.

use proptest::prelude::*;
use spider_ind::core::{transitive_closure, Candidate};
use std::collections::BTreeSet;

/// Reference reachability oracle: `a ⊆ b` is in the closure iff `b` is
/// reachable from `a` over one or more base edges (excluding `a == b`).
fn reachability_oracle(edges: &[Candidate]) -> BTreeSet<Candidate> {
    let nodes: BTreeSet<u32> = edges.iter().flat_map(|c| [c.dep, c.refd]).collect();
    let mut out = BTreeSet::new();
    for &start in &nodes {
        let mut frontier = vec![start];
        let mut seen = BTreeSet::new();
        while let Some(n) = frontier.pop() {
            for e in edges.iter().filter(|e| e.dep == n) {
                if seen.insert(e.refd) {
                    frontier.push(e.refd);
                }
            }
        }
        for reach in seen {
            if reach != start {
                out.insert(Candidate::new(start, reach));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn closure_is_idempotent_and_matches_reachability(
        raw in proptest::collection::vec((0u32..8, 0u32..8), 0..24),
    ) {
        // A small node pool forces cycles, diamonds, and chains.
        let edges: Vec<Candidate> = raw
            .iter()
            .filter(|(d, r)| d != r)
            .map(|&(d, r)| Candidate::new(d, r))
            .collect();
        let closure = transitive_closure(&edges);

        prop_assert!(
            closure.iter().all(|c| c.dep != c.refd),
            "self-pairs must never be emitted"
        );
        prop_assert!(
            edges.iter().all(|e| closure.contains(e)),
            "the closure contains its base"
        );
        prop_assert_eq!(&closure, &reachability_oracle(&edges));

        let closure_vec: Vec<Candidate> = closure.iter().copied().collect();
        let again = transitive_closure(&closure_vec);
        prop_assert_eq!(closure, again, "closure(closure(x)) == closure(x)");
    }

    #[test]
    fn long_chains_close_completely(len in 1u32..40) {
        // 0 → 1 → … → len: the closure is every ordered pair (i, j), i < j.
        let edges: Vec<Candidate> =
            (0..len).map(|i| Candidate::new(i, i + 1)).collect();
        let closure = transitive_closure(&edges);
        prop_assert_eq!(
            closure.len(),
            (len as usize + 1) * len as usize / 2,
            "chain of {} edges", len
        );
        prop_assert!(closure.contains(&Candidate::new(0, len)));
        prop_assert!(!closure.contains(&Candidate::new(len, 0)));
        let closure_vec: Vec<Candidate> = closure.iter().copied().collect();
        prop_assert_eq!(transitive_closure(&closure_vec), closure);
    }

    #[test]
    fn cycles_close_to_complete_digraphs_without_self_pairs(len in 2u32..30) {
        // 0 → 1 → … → len−1 → 0: everything reaches everything else.
        let edges: Vec<Candidate> =
            (0..len).map(|i| Candidate::new(i, (i + 1) % len)).collect();
        let closure = transitive_closure(&edges);
        prop_assert_eq!(
            closure.len(),
            len as usize * (len as usize - 1),
            "cycle of {} nodes", len
        );
        prop_assert!(closure.iter().all(|c| c.dep != c.refd));
        let closure_vec: Vec<Candidate> = closure.iter().copied().collect();
        prop_assert_eq!(transitive_closure(&closure_vec), closure);
    }
}
