//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros — backed by a
//! plain `std::time::Instant` harness instead of criterion's statistical
//! machinery. Each benchmark runs one warm-up iteration plus `sample_size`
//! measured iterations and prints min / mean / max wall-clock per
//! iteration. Good enough to compare algorithms; not a statistics suite.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle, passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter, like criterion's `new`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{label}: no samples recorded");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "  {group}/{label}: mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
            self.samples.len()
        );
    }
}

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(runs, 4, "one warm-up + three samples");
    }
}
