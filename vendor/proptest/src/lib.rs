//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`;
//! * integer-range, tuple, [`collection::vec`], [`option::of`], and
//!   [`string::string_regex`] strategies, plus [`any`] for primitives;
//! * the [`proptest!`], [`prop_assert!`], and [`prop_assert_eq!`] macros;
//! * [`test_runner::ProptestConfig`] (`cases` only).
//!
//! Differences from the real crate: generation is seeded deterministically
//! from the test name (every run explores the same cases), and there is no
//! shrinking — a failing case reports its index and message immediately.
//! For a reproduction codebase that needs *regressions caught*, not minimal
//! counterexamples, this trade keeps the dependency surface at zero.

#![warn(missing_docs)]

pub mod test_runner {
    //! Configuration and the per-test value source.

    /// Subset of proptest's config: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic value source handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// Runner seeded from a test name, so every `cargo test` run
        /// explores the same inputs.
        pub fn from_name(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `lo..hi` (panics when empty).
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and generic combinators.

    use crate::test_runner::TestRunner;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value from `runner`'s random stream.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` derives
        /// from it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            (**self).new_value(runner)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.new_value(runner))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn new_value(&self, runner: &mut TestRunner) -> T::Value {
            (self.f)(self.inner.new_value(runner)).new_value(runner)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = u128::from(runner.next_u64()) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = u128::from(runner.next_u64()) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(runner),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Strategy for a primitive via its bit pattern; see [`crate::any`].
    #[derive(Debug)]
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }
}

pub mod arbitrary {
    //! Types with a canonical "any value" strategy.

    use crate::test_runner::TestRunner;

    /// Types generatable from raw random bits.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// The canonical strategy for `T` ("any value of this type").
pub fn any<T: arbitrary::Arbitrary>() -> strategy::Any<T> {
    strategy::Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner.usize_in(self.size.lo, self.size.hi_exclusive);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Strategy producing `Option`s; see [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` of the inner strategy about three times in four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.new_value(runner))
            }
        }
    }
}

pub mod string {
    //! String strategies from (a small subset of) regex syntax.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Error parsing an unsupported or malformed pattern.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    /// Strategy produced by [`string_regex`].
    #[derive(Debug, Clone)]
    pub struct RegexStringStrategy {
        alphabet: Vec<char>,
        min_len: usize,
        max_len: usize,
    }

    impl Strategy for RegexStringStrategy {
        type Value = String;
        fn new_value(&self, runner: &mut TestRunner) -> String {
            let len = runner.usize_in(self.min_len, self.max_len + 1);
            (0..len)
                .map(|_| self.alphabet[(runner.next_u64() as usize) % self.alphabet.len()])
                .collect()
        }
    }

    /// Strategy for strings matching `pattern`.
    ///
    /// Supported subset: a single character class with an optional counted
    /// repetition — `[<items>]{lo,hi}` — where items are literal characters,
    /// ranges `a-b`, and the escapes `\t` `\n` `\r` `\\` `\-` `\]`. This is
    /// exactly the shape the workspace's property tests use.
    pub fn string_regex(pattern: &str) -> Result<RegexStringStrategy, Error> {
        let err = |detail: &str| Error(format!("unsupported pattern {pattern:?}: {detail}"));
        let mut chars = pattern.chars().peekable();
        if chars.next() != Some('[') {
            return Err(err("expected leading ["));
        }
        let mut alphabet: Vec<char> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().ok_or_else(|| err("unterminated class"))?;
            match c {
                ']' => break,
                '\\' => {
                    let e = chars.next().ok_or_else(|| err("dangling escape"))?;
                    let lit = match e {
                        't' => '\t',
                        'n' => '\n',
                        'r' => '\r',
                        other => other,
                    };
                    if let Some(p) = pending.take() {
                        alphabet.push(p);
                    }
                    pending = Some(lit);
                }
                '-' => {
                    let lo = pending.take().ok_or_else(|| err("range without start"))?;
                    let hi = match chars.next().ok_or_else(|| err("range without end"))? {
                        '\\' => chars.next().ok_or_else(|| err("dangling escape"))?,
                        h => h,
                    };
                    if hi < lo {
                        return Err(err("descending range"));
                    }
                    alphabet.extend(lo..=hi);
                }
                other => {
                    if let Some(p) = pending.take() {
                        alphabet.push(p);
                    }
                    pending = Some(other);
                }
            }
        }
        if let Some(p) = pending.take() {
            alphabet.push(p);
        }
        if alphabet.is_empty() {
            return Err(err("empty class"));
        }
        let (min_len, max_len) = match chars.next() {
            None => (1, 1),
            Some('{') => {
                let rest: String = chars.collect();
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated {"))?;
                let (lo, hi) = body.split_once(',').ok_or_else(|| err("need {lo,hi}"))?;
                let lo: usize = lo.trim().parse().map_err(|_| err("bad lower bound"))?;
                let hi: usize = hi.trim().parse().map_err(|_| err("bad upper bound"))?;
                if hi < lo {
                    return Err(err("descending repetition"));
                }
                (lo, hi)
            }
            Some(_) => return Err(err("trailing syntax after class")),
        };
        Ok(RegexStringStrategy {
            alphabet,
            min_len,
            max_len,
        })
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case aborts with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body, with optional context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)*)
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `config.cases` generated
/// inputs. Accepts an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut runner);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!("property {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, message);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn ranges_and_collections_generate_in_bounds() {
        let mut runner = TestRunner::from_name("bounds");
        let strat = crate::collection::vec(0u8..8, 3..7);
        for _ in 0..200 {
            let v = Strategy::new_value(&strat, &mut runner);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 8));
        }
    }

    #[test]
    fn string_regex_respects_class_and_length() {
        let mut runner = TestRunner::from_name("regex");
        let strat = crate::string::string_regex("[ -~\\t\\n\\\\]{0,12}").unwrap();
        for _ in 0..200 {
            let s = Strategy::new_value(&strat, &mut runner);
            assert!(s.chars().count() <= 12);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\t' || c == '\n' || c == '\\'));
        }
        assert!(crate::string::string_regex("unsupported+").is_err());
    }

    #[test]
    fn flat_map_feeds_dependent_strategies() {
        let mut runner = TestRunner::from_name("flatmap");
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        for _ in 0..100 {
            let v = Strategy::new_value(&strat, &mut runner);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u8..100, flip in crate::option::of(0i32..3)) {
            prop_assert!(x < 100, "x was {}", x);
            if let Some(f) = flip {
                prop_assert!((0..3).contains(&f));
            }
            prop_assert_eq!(x as i64 + 1, i64::from(x) + 1);
        }
    }
}
