//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the API surface the workspace consumes: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! with `gen_range`/`gen_bool`, [`seq::SliceRandom::shuffle`], and
//! [`seq::index::sample`]. The generator is SplitMix64 — deterministic,
//! fast, and statistically fine for synthetic data generation (nothing in
//! this workspace needs cryptographic randomness).
//!
//! Determinism matters more than distribution quality here: the datagen
//! crate derives entire benchmark databases from fixed seeds.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generator types.

    /// Deterministic 64-bit generator (SplitMix64). Stands in for rand's
    /// `StdRng`; same name so call sites compile unchanged.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; integer or
    /// float). Panics on an empty range, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a bounded range. The blanket
/// [`SampleRange`] impls below are written over this trait (as in the real
/// crate) so an unsuffixed literal range unifies with the usage site's
/// integer type during inference.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `lo..hi` (panics when empty).
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `lo..=hi` (panics when empty).
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod seq {
    //! Sequence-related helpers (`shuffle`, index sampling).

    use crate::RngCore;

    /// Slice extension: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Sampling of distinct indices.

        use crate::RngCore;

        /// Distinct indices drawn by [`sample`]; mirrors rand's `IndexVec`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices from `0..length` (all of them
        /// when `amount >= length`) via a partial Fisher–Yates pass.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            let amount = amount.min(length);
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() as usize) % (length - i);
                indices.swap(i, j);
            }
            indices.truncate(amount);
            IndexVec(indices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..4.5f64);
            assert!((0.25..4.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let picks = super::seq::index::sample(&mut rng, 100, 10).into_vec();
        assert_eq!(picks.len(), 10);
        let mut unique = picks.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 10);
        assert!(picks.iter().all(|&i| i < 100));
        assert_eq!(
            super::seq::index::sample(&mut rng, 3, 9).into_vec().len(),
            3
        );
    }
}
