//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — the single crossbeam feature this
//! workspace uses. It is a thin adapter over `std::thread::scope` (stable
//! since Rust 1.63) that reproduces crossbeam's calling convention:
//!
//! * the scope closure and every spawned closure receive a `&Scope`
//!   argument (std passes the scope only to the outer closure);
//! * `scope` returns `thread::Result<R>` instead of unwinding when an
//!   unjoined child panicked.

#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads with crossbeam's API shape.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Panic payload carried out of a thread, as in `std::thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle: spawn threads that may borrow from the enclosing
    /// stack frame; all of them are joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` holds the
        /// panic payload if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// itself (crossbeam convention), so workers can spawn more workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a fresh scope; every thread spawned within is joined
    /// before this returns. Returns `Err` with the panic payload if the
    /// scope closure (or an unjoined child) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn workers_run_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 21);
    }

    #[test]
    fn worker_panic_is_reported_via_join() {
        let outcome = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(outcome.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let v = thread::scope(|s| {
            let h = s.spawn(|inner| {
                let nested = inner.spawn(|_| 40);
                nested.join().unwrap() + 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
