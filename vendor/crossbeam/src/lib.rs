//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the two crossbeam features this workspace uses are provided:
//!
//! * [`thread::scope`] — a thin adapter over `std::thread::scope` (stable
//!   since Rust 1.63) that reproduces crossbeam's calling convention: the
//!   scope closure and every spawned closure receive a `&Scope` argument
//!   (std passes the scope only to the outer closure), and `scope` returns
//!   `thread::Result<R>` instead of unwinding when an unjoined child
//!   panicked;
//! * [`channel::bounded`] — crossbeam's bounded MPSC channel API shape over
//!   `std::sync::mpsc::sync_channel`, used by the prefetch / shared-stream
//!   I/O workers in `ind-valueset`.

#![warn(missing_docs)]

pub mod channel {
    //! Bounded channels with crossbeam's API shape.
    //!
    //! A thin wrapper over `std::sync::mpsc::sync_channel`: `bounded(cap)`
    //! returns a `(Sender, Receiver)` pair whose `send` blocks once `cap`
    //! messages are in flight (backpressure), and whose `recv`/`try_recv`
    //! report disconnection once every sender is gone. One deliberate
    //! deviation: a capacity of `0` is clamped to `1` — std's zero-capacity
    //! channel is a rendezvous channel, which is never what the buffered
    //! producer/consumer pipelines here want.

    use std::sync::mpsc;

    /// Sending half of a bounded channel. Cloning adds a producer; the
    /// channel disconnects when all clones are dropped.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// The channel is disconnected (no receiver); the unsent message is
    /// handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is disconnected (no senders) and drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why [`Receiver::try_recv`] returned no message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message buffered right now; senders still exist.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Creates a bounded channel holding at most `cap.max(1)` in-flight
    /// messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while the channel is full. Errs (returning
        /// the message) once the receiver is dropped — including when the
        /// drop happens mid-block.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errs once every sender is dropped
        /// and the buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Non-blocking receive: a buffered message, or why there is none.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's API shape.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Panic payload carried out of a thread, as in `std::thread::Result`.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle: spawn threads that may borrow from the enclosing
    /// stack frame; all of them are joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` holds the
        /// panic payload if it panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// itself (crossbeam convention), so workers can spawn more workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a fresh scope; every thread spawned within is joined
    /// before this returns. Returns `Err` with the panic payload if the
    /// scope closure (or an unjoined child) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn workers_run_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 21);
    }

    #[test]
    fn worker_panic_is_reported_via_join() {
        let outcome = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(outcome.is_err());
    }

    use super::channel;

    #[test]
    fn bounded_channel_round_trip_and_backpressure() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_unblocks_with_error_when_receiver_drops() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).unwrap(); // channel now full
        let blocked = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx); // must wake the blocked sender with an error
        assert_eq!(blocked.join().unwrap(), Err(channel::SendError(2)));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        // std's cap-0 channel is rendezvous; ours must buffer one message
        // so a lone sender never blocks on the first send.
        let (tx, rx) = channel::bounded::<u8>(0);
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let v = thread::scope(|s| {
            let h = s.spawn(|inner| {
                let nested = inner.spawn(|_| 40);
                nested.join().unwrap() + 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
