//! Per-column statistics.
//!
//! Three statistics drive the paper's candidate generation and pruning:
//! the number of distinct values (cardinality pretest, Sec. 1.2/2), the
//! data-driven uniqueness of a column (referenced attributes are "non-empty
//! unique columns", Sec. 2; Aladin step 2 computes key candidates from the
//! uniqueness of the data), and the minimum/maximum canonical value
//! (max-value pretest, Sec. 4.1).

use crate::table::Table;
use crate::value::Value;

/// Statistics for one column, computed from the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnStats {
    /// Total rows in the owning table.
    pub rows: usize,
    /// Number of non-null values (with duplicates), `|v(a)|`.
    pub non_null: usize,
    /// Number of distinct non-null values, `|s(a)|`.
    pub distinct: usize,
    /// Smallest canonical rendering, if any value exists.
    pub min: Option<Vec<u8>>,
    /// Largest canonical rendering, if any value exists.
    pub max: Option<Vec<u8>>,
    /// Minimum rendered length over non-null values.
    pub min_len: usize,
    /// Maximum rendered length over non-null values.
    pub max_len: usize,
}

impl ColumnStats {
    /// Computes statistics by sorting the canonical renderings of the
    /// column's non-null values — the same ordering every discovery
    /// algorithm uses, so `min`/`max` here agree byte-for-byte with the
    /// first/last entries of the extracted value sets.
    pub fn compute(values: &[Value]) -> Self {
        let rows = values.len();
        let mut rendered: Vec<Vec<u8>> = Vec::new();
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        for v in values {
            if v.is_null() {
                continue;
            }
            let bytes = v.canonical_bytes();
            min_len = min_len.min(bytes.len());
            max_len = max_len.max(bytes.len());
            rendered.push(bytes);
        }
        let non_null = rendered.len();
        rendered.sort_unstable();
        let min = rendered.first().cloned();
        let max = rendered.last().cloned();
        rendered.dedup();
        let distinct = rendered.len();
        ColumnStats {
            rows,
            non_null,
            distinct,
            min,
            max,
            min_len: if non_null == 0 { 0 } else { min_len },
            max_len,
        }
    }

    /// "Non-empty" in the paper's sense: the column holds at least one
    /// non-null value.
    pub fn is_non_empty(&self) -> bool {
        self.non_null > 0
    }

    /// Data-driven uniqueness: every non-null value occurs exactly once.
    /// Empty columns are *not* unique (a referenced attribute must be
    /// non-empty anyway).
    pub fn is_unique(&self) -> bool {
        self.non_null > 0 && self.distinct == self.non_null
    }
}

/// Statistics for every column of a table, in schema order.
pub fn table_stats(table: &Table) -> Vec<ColumnStats> {
    (0..table.schema().arity())
        .map(|i| ColumnStats::compute(table.column(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(values: Vec<Value>) -> ColumnStats {
        ColumnStats::compute(&values)
    }

    #[test]
    fn counts_distinct_and_non_null() {
        let s = stats_of(vec![1.into(), 2.into(), 2.into(), Value::Null, 3.into()]);
        assert_eq!(s.rows, 5);
        assert_eq!(s.non_null, 4);
        assert_eq!(s.distinct, 3);
        assert!(s.is_non_empty());
        assert!(!s.is_unique());
    }

    #[test]
    fn unique_column_detected_from_data() {
        let s = stats_of(vec![10.into(), 11.into(), Value::Null]);
        assert!(s.is_unique(), "nulls do not break uniqueness");
        let s = stats_of(vec![10.into(), 10.into()]);
        assert!(!s.is_unique());
    }

    #[test]
    fn empty_column_is_neither_non_empty_nor_unique() {
        let s = stats_of(vec![Value::Null, Value::Null]);
        assert!(!s.is_non_empty());
        assert!(!s.is_unique());
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
    }

    #[test]
    fn min_max_use_canonical_order() {
        // Lexicographic: "10" < "2" < "9".
        let s = stats_of(vec![9.into(), 10.into(), 2.into()]);
        assert_eq!(s.min.as_deref(), Some(b"10".as_slice()));
        assert_eq!(s.max.as_deref(), Some(b"9".as_slice()));
    }

    #[test]
    fn length_range_tracks_rendered_lengths() {
        let s = stats_of(vec!["ab".into(), "abcd".into(), Value::Null]);
        assert_eq!(s.min_len, 2);
        assert_eq!(s.max_len, 4);
    }

    #[test]
    fn table_stats_cover_all_columns() {
        use crate::schema::{ColumnSchema, TableSchema};
        use crate::value::DataType;
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnSchema::new("a", DataType::Integer),
                    ColumnSchema::new("b", DataType::Text),
                ],
            )
            .unwrap(),
        );
        t.insert(vec![1.into(), "x".into()]).unwrap();
        t.insert(vec![1.into(), Value::Null]).unwrap();
        let stats = table_stats(&t);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].distinct, 1);
        assert_eq!(stats[1].non_null, 1);
    }
}
