//! # ind-storage
//!
//! Relational storage substrate for the spider-ind workspace: typed values
//! with the paper's canonical (`to_char`) rendering, schemas with
//! gold-standard foreign keys, columnar tables, per-column statistics, and
//! TSV persistence.
//!
//! This crate plays the role of the RDBMS the paper assumes: it holds the
//! undocumented database whose structure the discovery algorithms recover.
//! Nothing here looks at the declared foreign keys during discovery — those
//! exist solely for evaluation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod database;
mod error;
mod schema;
mod stats;
mod table;
pub mod tsv;
mod value;

pub use database::Database;
pub use error::{Result, StorageError};
pub use schema::{ColumnSchema, CompositeForeignKeyDef, ForeignKeyDef, QualifiedName, TableSchema};
pub use stats::{table_stats, ColumnStats};
pub use table::Table;
pub use value::{DataType, Value};
