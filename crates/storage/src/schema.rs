//! Schema metadata: columns, tables, and (gold standard) foreign keys.
//!
//! Foreign keys declared here are *never* consulted by the discovery
//! algorithms — they are the gold standard the paper evaluates against
//! ("The BioSQL schema ... defines foreign key constraints, which we use as
//! gold standard", Sec. 5).

use crate::error::{Result, StorageError};
use crate::value::DataType;

/// A single column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSchema {
    /// Column name, unique within its table.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Whether NULL is permitted.
    pub nullable: bool,
    /// Declared uniqueness (primary key or unique constraint). Candidate
    /// generation uses *data-driven* uniqueness (Aladin step 2), not this
    /// flag; the flag exists so generated schemas can carry their intent.
    pub unique: bool,
}

impl ColumnSchema {
    /// A nullable, non-unique column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnSchema {
            name: name.into(),
            data_type,
            nullable: true,
            unique: false,
        }
    }

    /// Marks the column NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// Marks the column UNIQUE.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }
}

/// A declared unary foreign key: `table.column ⊆ ref_table.ref_column`.
///
/// The paper's scope is unary; composite (multi-column) keys are declared
/// separately via [`CompositeForeignKeyDef`] and evaluated by the n-ary
/// discovery layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ForeignKeyDef {
    /// Referring column in the owning table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column.
    pub ref_column: String,
}

/// A declared composite foreign key:
/// `table.(c1, …, ck) ⊆ ref_table.(r1, …, rk)` with `k ≥ 2` and positional
/// column alignment. Like [`ForeignKeyDef`], never consulted by discovery —
/// it is the gold standard the n-ary pipeline evaluates against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompositeForeignKeyDef {
    /// Referring columns in the owning table, in key order.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns, aligned positionally with `columns`.
    pub ref_columns: Vec<String>,
}

impl CompositeForeignKeyDef {
    /// Number of column pairs in the key.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A table declaration: name, columns, and gold-standard foreign keys
/// (unary and composite).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name, unique within its database.
    pub name: String,
    /// Ordered column declarations.
    pub columns: Vec<ColumnSchema>,
    /// Gold-standard unary foreign keys owned by this table.
    pub foreign_keys: Vec<ForeignKeyDef>,
    /// Gold-standard composite foreign keys owned by this table.
    pub composite_foreign_keys: Vec<CompositeForeignKeyDef>,
}

impl TableSchema {
    /// Creates a table schema, validating column-name uniqueness.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnSchema>) -> Result<Self> {
        let name = name.into();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::DuplicateColumn {
                    table: name,
                    column: c.name.clone(),
                });
            }
        }
        Ok(TableSchema {
            name,
            columns,
            foreign_keys: Vec::new(),
            composite_foreign_keys: Vec::new(),
        })
    }

    /// Adds a gold-standard foreign key; validates the local column exists.
    /// (The referenced side is validated when the database assembles.)
    pub fn add_foreign_key(
        &mut self,
        column: impl Into<String>,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> Result<()> {
        let column = column.into();
        if self.column_index(&column).is_none() {
            return Err(StorageError::UnknownColumn {
                table: self.name.clone(),
                column,
            });
        }
        self.foreign_keys.push(ForeignKeyDef {
            column,
            ref_table: ref_table.into(),
            ref_column: ref_column.into(),
        });
        Ok(())
    }

    /// Adds a gold-standard composite foreign key; validates that every
    /// local column exists, that both sides have the same arity ≥ 2, and
    /// that neither side repeats a column. (The referenced side's existence
    /// is validated when the database assembles.)
    pub fn add_composite_foreign_key(
        &mut self,
        columns: impl IntoIterator<Item = impl Into<String>>,
        ref_table: impl Into<String>,
        ref_columns: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<()> {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        let ref_columns: Vec<String> = ref_columns.into_iter().map(Into::into).collect();
        if columns.len() < 2 || columns.len() != ref_columns.len() {
            return Err(StorageError::Parse {
                context: self.name.clone(),
                detail: format!(
                    "composite foreign key needs matching arities >= 2, got {} vs {}",
                    columns.len(),
                    ref_columns.len()
                ),
            });
        }
        for side in [&columns, &ref_columns] {
            for (i, c) in side.iter().enumerate() {
                if side[..i].contains(c) {
                    return Err(StorageError::DuplicateColumn {
                        table: self.name.clone(),
                        column: c.clone(),
                    });
                }
            }
        }
        for column in &columns {
            if self.column_index(column).is_none() {
                return Err(StorageError::UnknownColumn {
                    table: self.name.clone(),
                    column: column.clone(),
                });
            }
        }
        self.composite_foreign_keys.push(CompositeForeignKeyDef {
            columns,
            ref_table: ref_table.into(),
            ref_columns,
        });
        Ok(())
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column lookup that produces a proper error.
    pub fn column(&self, name: &str) -> Result<&ColumnSchema> {
        self.column_index(name)
            .map(|i| &self.columns[i])
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// Fully qualified attribute name, the unit the paper's algorithms work on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QualifiedName {
    /// Table part.
    pub table: String,
    /// Column part.
    pub column: String,
}

impl QualifiedName {
    /// Builds a qualified name.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        QualifiedName {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl std::fmt::Display for QualifiedName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique(),
                ColumnSchema::new("name", DataType::Text),
            ],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                ColumnSchema::new("a", DataType::Integer),
                ColumnSchema::new("a", DataType::Text),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn { .. }));
    }

    #[test]
    fn column_lookup() {
        let s = two_col_schema();
        assert_eq!(s.column_index("id"), Some(0));
        assert_eq!(s.column_index("name"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert!(s.column("missing").is_err());
        assert_eq!(s.column("id").unwrap().data_type, DataType::Integer);
    }

    #[test]
    fn foreign_key_requires_local_column() {
        let mut s = two_col_schema();
        assert!(s.add_foreign_key("name", "other", "id").is_ok());
        assert!(s.add_foreign_key("nope", "other", "id").is_err());
        assert_eq!(s.foreign_keys.len(), 1);
    }

    #[test]
    fn composite_foreign_key_validation() {
        let mut s = two_col_schema();
        s.add_composite_foreign_key(["id", "name"], "other", ["a", "b"])
            .unwrap();
        assert_eq!(s.composite_foreign_keys.len(), 1);
        assert_eq!(s.composite_foreign_keys[0].arity(), 2);

        // Arity mismatch, unary arity, unknown and duplicated columns.
        assert!(s
            .add_composite_foreign_key(["id", "name"], "other", ["a"])
            .is_err());
        assert!(s.add_composite_foreign_key(["id"], "other", ["a"]).is_err());
        assert!(s
            .add_composite_foreign_key(["id", "nope"], "other", ["a", "b"])
            .is_err());
        assert!(s
            .add_composite_foreign_key(["id", "id"], "other", ["a", "b"])
            .is_err());
        assert!(s
            .add_composite_foreign_key(["id", "name"], "other", ["a", "a"])
            .is_err());
        assert_eq!(s.composite_foreign_keys.len(), 1, "failures add nothing");
    }

    #[test]
    fn builder_flags() {
        let c = ColumnSchema::new("id", DataType::Integer)
            .not_null()
            .unique();
        assert!(!c.nullable);
        assert!(c.unique);
        let c = ColumnSchema::new("x", DataType::Text);
        assert!(c.nullable);
        assert!(!c.unique);
    }

    #[test]
    fn qualified_name_display_and_order() {
        let a = QualifiedName::new("t", "a");
        let b = QualifiedName::new("t", "b");
        assert_eq!(a.to_string(), "t.a");
        assert!(a < b);
    }
}
