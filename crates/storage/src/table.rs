//! Columnar table storage.

use crate::error::{Result, StorageError};
use crate::schema::TableSchema;
use crate::value::Value;

/// A table instance: a schema plus column-oriented data.
///
/// Storage is columnar because every consumer in this workspace — value-set
/// extraction, statistics, the SQL baseline operators — scans one column at
/// a time.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl Table {
    /// Creates an empty table for `schema`.
    pub fn new(schema: TableSchema) -> Self {
        let columns = schema.columns.iter().map(|_| Vec::new()).collect();
        Table {
            schema,
            columns,
            rows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// True if the table holds no rows. Empty tables matter: the paper notes
    /// foreign keys defined on empty tables "obviously cannot be found when
    /// regarding the data" (Sec. 5).
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Inserts one row, validating arity, types, and NOT NULL constraints.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (value, col) in row.iter().zip(&self.schema.columns) {
            if value.is_null() {
                if !col.nullable {
                    return Err(StorageError::NullViolation {
                        table: self.schema.name.clone(),
                        column: col.name.clone(),
                    });
                }
            } else if !value.compatible_with(col.data_type) {
                return Err(StorageError::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: col.name.clone(),
                    detail: format!(
                        "value `{value}` not compatible with column type {}",
                        col.data_type
                    ),
                });
            }
        }
        for (slot, value) in self.columns.iter_mut().zip(row) {
            slot.push(value);
        }
        self.rows += 1;
        Ok(())
    }

    /// Bulk insert convenience.
    pub fn insert_all<I: IntoIterator<Item = Vec<Value>>>(&mut self, rows: I) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Full column by index.
    pub fn column(&self, idx: usize) -> &[Value] {
        &self.columns[idx]
    }

    /// Full column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&[Value]> {
        let idx = self
            .schema
            .column_index(name)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.schema.name.clone(),
                column: name.to_string(),
            })?;
        Ok(&self.columns[idx])
    }

    /// Materializes row `i` (test/debug convenience; hot paths stay columnar).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// Iterator over `(column index, column schema, column data)`.
    pub fn iter_columns(
        &self,
    ) -> impl Iterator<Item = (usize, &crate::schema::ColumnSchema, &[Value])> {
        self.schema
            .columns
            .iter()
            .enumerate()
            .map(move |(i, cs)| (i, cs, self.columns[i].as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnSchema;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(
            TableSchema::new(
                "person",
                vec![
                    ColumnSchema::new("id", DataType::Integer)
                        .not_null()
                        .unique(),
                    ColumnSchema::new("name", DataType::Text),
                    ColumnSchema::new("score", DataType::Float),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = table();
        t.insert(vec![1.into(), "ada".into(), 9.5.into()]).unwrap();
        t.insert(vec![2.into(), Value::Null, Value::Null]).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column(0), &[Value::Integer(1), Value::Integer(2)]);
        assert_eq!(
            t.column_by_name("name").unwrap()[0],
            Value::Text("ada".into())
        );
        assert_eq!(t.row(1), vec![Value::Integer(2), Value::Null, Value::Null]);
    }

    #[test]
    fn arity_is_enforced() {
        let mut t = table();
        let err = t.insert(vec![1.into()]).unwrap_err();
        assert!(matches!(
            err,
            StorageError::ArityMismatch {
                expected: 3,
                got: 1,
                ..
            }
        ));
        assert_eq!(t.row_count(), 0, "failed insert must not partially apply");
    }

    #[test]
    fn types_are_enforced() {
        let mut t = table();
        let err = t
            .insert(vec!["oops".into(), Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn not_null_is_enforced() {
        let mut t = table();
        let err = t
            .insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, StorageError::NullViolation { .. }));
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = table();
        assert!(t.is_empty());
        assert_eq!(t.iter_columns().count(), 3);
    }
}
