//! A database: a named collection of tables.

use crate::error::{Result, StorageError};
use crate::schema::{CompositeForeignKeyDef, ForeignKeyDef, QualifiedName};
use crate::table::Table;
use std::collections::HashMap;

/// A database instance. Table order is insertion order (deterministic), with
/// a name index for lookup.
#[derive(Debug, Clone)]
pub struct Database {
    name: String,
    tables: Vec<Table>,
    index: HashMap<String, usize>,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            tables: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Database name (e.g. `uniprot`, `scop`, `pdb`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a table; rejects duplicates by name.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_string();
        if self.index.contains_key(&name) {
            return Err(StorageError::DuplicateTable(name));
        }
        self.index.insert(name, self.tables.len());
        self.tables.push(table);
        Ok(())
    }

    /// Table lookup by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.index
            .get(name)
            .map(|&i| &self.tables[i])
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        match self.index.get(name) {
            Some(&i) => Ok(&mut self.tables[i]),
            None => Err(StorageError::UnknownTable(name.to_string())),
        }
    }

    /// Tables in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total attribute (column) count across all tables — the `n` in the
    /// paper's `(n² − n)/2` candidate analysis.
    pub fn attribute_count(&self) -> usize {
        self.tables.iter().map(|t| t.schema().arity()).sum()
    }

    /// Total row count across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.row_count()).sum()
    }

    /// All attributes as qualified names, in deterministic schema order.
    pub fn attributes(&self) -> Vec<QualifiedName> {
        let mut out = Vec::with_capacity(self.attribute_count());
        for t in &self.tables {
            for c in &t.schema().columns {
                out.push(QualifiedName::new(t.name(), c.name.clone()));
            }
        }
        out
    }

    /// Column data addressed by qualified name.
    pub fn column(&self, qn: &QualifiedName) -> Result<&[crate::value::Value]> {
        self.table(&qn.table)?.column_by_name(&qn.column)
    }

    /// All gold-standard foreign keys as `(dependent, referenced)` qualified
    /// name pairs, in deterministic order.
    pub fn gold_foreign_keys(&self) -> Vec<(QualifiedName, QualifiedName)> {
        let mut out = Vec::new();
        for t in &self.tables {
            for ForeignKeyDef {
                column,
                ref_table,
                ref_column,
            } in &t.schema().foreign_keys
            {
                out.push((
                    QualifiedName::new(t.name(), column.clone()),
                    QualifiedName::new(ref_table.clone(), ref_column.clone()),
                ));
            }
        }
        out
    }

    /// All gold-standard composite foreign keys as aligned qualified-name
    /// sequences `(dependent columns, referenced columns)`, in
    /// deterministic order.
    pub fn gold_composite_foreign_keys(&self) -> Vec<(Vec<QualifiedName>, Vec<QualifiedName>)> {
        let mut out = Vec::new();
        for t in &self.tables {
            for CompositeForeignKeyDef {
                columns,
                ref_table,
                ref_columns,
            } in &t.schema().composite_foreign_keys
            {
                out.push((
                    columns
                        .iter()
                        .map(|c| QualifiedName::new(t.name(), c.clone()))
                        .collect(),
                    ref_columns
                        .iter()
                        .map(|c| QualifiedName::new(ref_table.clone(), c.clone()))
                        .collect(),
                ));
            }
        }
        out
    }

    /// Validates that every declared foreign key — unary and composite —
    /// points at an existing table/column. Generators call this after
    /// assembly.
    pub fn validate_foreign_keys(&self) -> Result<()> {
        for (dep, refd) in self.gold_foreign_keys() {
            self.table(&refd.table)?.schema().column(&refd.column)?;
            self.table(&dep.table)?.schema().column(&dep.column)?;
        }
        for (deps, refs) in self.gold_composite_foreign_keys() {
            for qn in deps.iter().chain(&refs) {
                self.table(&qn.table)?.schema().column(&qn.column)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnSchema, TableSchema};
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new("test");
        let mut parent = Table::new(
            TableSchema::new(
                "parent",
                vec![ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique()],
            )
            .unwrap(),
        );
        parent.insert(vec![1.into()]).unwrap();
        parent.insert(vec![2.into()]).unwrap();
        db.add_table(parent).unwrap();

        let mut schema = TableSchema::new(
            "child",
            vec![
                ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique(),
                ColumnSchema::new("parent_id", DataType::Integer),
            ],
        )
        .unwrap();
        schema.add_foreign_key("parent_id", "parent", "id").unwrap();
        let mut child = Table::new(schema);
        child.insert(vec![10.into(), 1.into()]).unwrap();
        db.add_table(child).unwrap();
        db
    }

    #[test]
    fn lookup_and_counts() {
        let db = db();
        assert_eq!(db.table_count(), 2);
        assert_eq!(db.attribute_count(), 3);
        assert_eq!(db.total_rows(), 3);
        assert!(db.table("parent").is_ok());
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        let t = Table::new(TableSchema::new("parent", vec![]).unwrap());
        assert!(matches!(
            db.add_table(t),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn attributes_are_deterministic() {
        let db = db();
        let attrs = db.attributes();
        assert_eq!(
            attrs.iter().map(|a| a.to_string()).collect::<Vec<_>>(),
            vec!["parent.id", "child.id", "child.parent_id"]
        );
    }

    #[test]
    fn column_by_qualified_name() {
        let db = db();
        let col = db
            .column(&QualifiedName::new("child", "parent_id"))
            .unwrap();
        assert_eq!(col, &[Value::Integer(1)]);
    }

    #[test]
    fn gold_foreign_keys_collected_and_validated() {
        let db = db();
        let fks = db.gold_foreign_keys();
        assert_eq!(fks.len(), 1);
        assert_eq!(fks[0].0.to_string(), "child.parent_id");
        assert_eq!(fks[0].1.to_string(), "parent.id");
        db.validate_foreign_keys().unwrap();
    }

    #[test]
    fn gold_composite_foreign_keys_collected_and_validated() {
        let mut db = Database::new("composite");
        let parent = Table::new(
            TableSchema::new(
                "pair_parent",
                vec![
                    ColumnSchema::new("a", DataType::Integer),
                    ColumnSchema::new("b", DataType::Integer),
                ],
            )
            .unwrap(),
        );
        db.add_table(parent).unwrap();
        let mut schema = TableSchema::new(
            "pair_child",
            vec![
                ColumnSchema::new("x", DataType::Integer),
                ColumnSchema::new("y", DataType::Integer),
            ],
        )
        .unwrap();
        schema
            .add_composite_foreign_key(["x", "y"], "pair_parent", ["a", "b"])
            .unwrap();
        db.add_table(Table::new(schema)).unwrap();

        let cfks = db.gold_composite_foreign_keys();
        assert_eq!(cfks.len(), 1);
        let (deps, refs) = &cfks[0];
        assert_eq!(
            deps.iter().map(|q| q.to_string()).collect::<Vec<_>>(),
            vec!["pair_child.x", "pair_child.y"]
        );
        assert_eq!(
            refs.iter().map(|q| q.to_string()).collect::<Vec<_>>(),
            vec!["pair_parent.a", "pair_parent.b"]
        );
        db.validate_foreign_keys().unwrap();
    }

    #[test]
    fn dangling_composite_foreign_key_detected() {
        let mut db = Database::new("broken-composite");
        let mut schema = TableSchema::new(
            "t",
            vec![
                ColumnSchema::new("x", DataType::Integer),
                ColumnSchema::new("y", DataType::Integer),
            ],
        )
        .unwrap();
        schema
            .add_composite_foreign_key(["x", "y"], "ghost", ["a", "b"])
            .unwrap();
        db.add_table(Table::new(schema)).unwrap();
        assert!(db.validate_foreign_keys().is_err());
    }

    #[test]
    fn dangling_foreign_key_detected() {
        let mut db = Database::new("broken");
        let mut schema =
            TableSchema::new("t", vec![ColumnSchema::new("x", DataType::Integer)]).unwrap();
        schema.add_foreign_key("x", "ghost", "id").unwrap();
        db.add_table(Table::new(schema)).unwrap();
        assert!(db.validate_foreign_keys().is_err());
    }
}
