//! Typed values and their canonical textual rendering.
//!
//! The paper (Sec. 3.2) sorts *all* attribute values — including numerics —
//! lexicographically after converting them to character data (`to_char` in
//! the SQL statements of Sec. 2): "We can use lexicographic sorting for all
//! values including numeric values, because the actual order of values is
//! irrelevant as long as it is consistent over all sets." The single source
//! of truth for that conversion is [`Value::render_canonical`]; every
//! algorithm in the workspace compares the resulting byte strings.

use std::cmp::Ordering;
use std::fmt;

/// Declared type of a column.
///
/// `Lob` models large-object columns, which the paper excludes from the set
/// of potentially dependent attributes ("non-empty columns of any type
/// except LOB", Sec. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Float,
    /// Variable-length character data.
    Text,
    /// Large object (CLOB/BLOB-like); excluded from IND candidate generation.
    Lob,
}

impl DataType {
    /// Stable lowercase name used in persisted schemas.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Integer => "integer",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Lob => "lob",
        }
    }

    /// Inverse of [`DataType::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "integer" => Some(DataType::Integer),
            "float" => Some(DataType::Float),
            "text" => Some(DataType::Text),
            "lob" => Some(DataType::Lob),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single cell value.
///
/// `Lob` columns store their payload as `Text` values; the exclusion from
/// IND discovery happens at the schema level, not the value level.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL. Never participates in value sets (`v(a)` collects only
    /// non-null values).
    Null,
    /// Integer payload.
    Integer(i64),
    /// Float payload.
    Float(f64),
    /// Character payload.
    Text(String),
}

impl Value {
    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value may be stored in a column of type `dt`.
    ///
    /// NULL is compatible with every type. Lob columns accept text payloads.
    pub fn compatible_with(&self, dt: DataType) -> bool {
        matches!(
            (self, dt),
            (Value::Null, _)
                | (Value::Integer(_), DataType::Integer)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text | DataType::Lob)
        )
    }

    /// Appends the canonical textual rendering to `buf` (the `to_char`
    /// conversion used throughout the paper). Panics on NULL, which by
    /// definition never enters a value set.
    pub fn render_canonical(&self, buf: &mut Vec<u8>) {
        use std::io::Write;
        match self {
            // lint: allow(no_unwrap) — documented contract: NULLs are filtered before rendering, per the paper's value-set definition
            Value::Null => panic!("NULL has no canonical rendering"),
            // lint: allow(no_unwrap) — fmt writes into a Vec are infallible
            Value::Integer(i) => write!(buf, "{i}").expect("write to Vec cannot fail"),
            // lint: allow(no_unwrap) — fmt writes into a Vec are infallible
            Value::Float(x) => write!(buf, "{x}").expect("write to Vec cannot fail"),
            Value::Text(s) => buf.extend_from_slice(s.as_bytes()),
        }
    }

    /// Canonical rendering as a fresh byte vector. Prefer
    /// [`Value::render_canonical`] with a reused buffer in hot loops.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.render_canonical(&mut buf);
        buf
    }

    /// Lexicographic comparison of the canonical renderings, the one and
    /// only ordering used by the discovery algorithms.
    pub fn cmp_canonical(&self, other: &Value) -> Ordering {
        // Fast path: same-variant comparisons avoid rendering.
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => a.as_bytes().cmp(b.as_bytes()),
            _ => self.canonical_bytes().cmp(&other.canonical_bytes()),
        }
    }

    /// Parses a canonical rendering back into a typed value. Used by the
    /// TSV loader. An empty string parses as empty text for text columns.
    pub fn parse(dt: DataType, s: &str) -> Option<Value> {
        match dt {
            DataType::Integer => s.parse::<i64>().ok().map(Value::Integer),
            DataType::Float => s.parse::<f64>().ok().map(Value::Float),
            DataType::Text | DataType::Lob => Some(Value::Text(s.to_string())),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_rendering_matches_to_char() {
        assert_eq!(Value::Integer(42).canonical_bytes(), b"42");
        assert_eq!(Value::Integer(-7).canonical_bytes(), b"-7");
        assert_eq!(Value::Float(1.5).canonical_bytes(), b"1.5");
        assert_eq!(Value::Text("abc".into()).canonical_bytes(), b"abc");
    }

    #[test]
    fn lexicographic_order_is_not_numeric_order() {
        // The paper's point: "10" < "9" lexicographically is fine as long
        // as the ordering is consistent across all sets.
        assert_eq!(
            Value::Integer(10).cmp_canonical(&Value::Integer(9)),
            Ordering::Less
        );
        assert_eq!(
            Value::Integer(9).cmp_canonical(&Value::Integer(10)),
            Ordering::Greater
        );
    }

    #[test]
    fn cross_type_comparison_uses_rendering() {
        // Integer 42 and text "42" render identically, so they compare equal
        // under the canonical ordering — exactly the behaviour needed for
        // life-science data where "often even attributes containing solely
        // integers are represented as string" (Sec. 4.1).
        assert_eq!(
            Value::Integer(42).cmp_canonical(&Value::Text("42".into())),
            Ordering::Equal
        );
    }

    #[test]
    fn compatibility_rules() {
        assert!(Value::Null.compatible_with(DataType::Integer));
        assert!(Value::Integer(1).compatible_with(DataType::Integer));
        assert!(!Value::Integer(1).compatible_with(DataType::Text));
        assert!(Value::Text("x".into()).compatible_with(DataType::Lob));
        assert!(!Value::Float(1.0).compatible_with(DataType::Integer));
    }

    #[test]
    fn parse_round_trips() {
        for (dt, v) in [
            (DataType::Integer, Value::Integer(-12)),
            (DataType::Float, Value::Float(2.25)),
            (DataType::Text, Value::Text("hello world".into())),
        ] {
            let rendered = String::from_utf8(v.canonical_bytes()).unwrap();
            assert_eq!(Value::parse(dt, &rendered), Some(v));
        }
        assert_eq!(Value::parse(DataType::Integer, "abc"), None);
    }

    #[test]
    #[should_panic(expected = "NULL has no canonical rendering")]
    fn null_has_no_rendering() {
        Value::Null.canonical_bytes();
    }

    #[test]
    fn datatype_names_round_trip() {
        for dt in [
            DataType::Integer,
            DataType::Float,
            DataType::Text,
            DataType::Lob,
        ] {
            assert_eq!(DataType::from_name(dt.name()), Some(dt));
        }
        assert_eq!(DataType::from_name("varchar"), None);
    }
}
