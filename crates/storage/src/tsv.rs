//! TSV persistence for databases.
//!
//! Layout: `<dir>/schema.txt` describes tables, columns, and gold-standard
//! foreign keys; `<dir>/<table>.tsv` holds one row per line with
//! tab-separated canonical values. `\N` encodes NULL; tabs, newlines, and
//! backslashes inside text are escaped. The format exists so generated
//! datasets can be inspected, diffed, and reloaded by the experiment
//! harness without regeneration.

use crate::database::Database;
use crate::error::{Result, StorageError};
use crate::schema::{ColumnSchema, TableSchema};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

const NULL_TOKEN: &str = "\\N";

fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

fn unescape(s: &str, context: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('N') => out.push_str("\\N"), // literal "\N" inside longer field
            other => {
                return Err(StorageError::Parse {
                    context: context.to_string(),
                    detail: format!("bad escape sequence `\\{}`", other.unwrap_or(' ')),
                })
            }
        }
    }
    Ok(out)
}

/// Saves `db` under `dir` (created if missing).
pub fn save_database(db: &Database, dir: &Path) -> Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut schema_out = BufWriter::new(std::fs::File::create(dir.join("schema.txt"))?);
    writeln!(schema_out, "database\t{}", db.name())?;
    for table in db.tables() {
        writeln!(schema_out, "table\t{}", table.name())?;
        for c in &table.schema().columns {
            writeln!(
                schema_out,
                "column\t{}\t{}\t{}\t{}",
                c.name,
                c.data_type.name(),
                if c.nullable { "null" } else { "notnull" },
                if c.unique { "unique" } else { "dup" },
            )?;
        }
        for fk in &table.schema().foreign_keys {
            writeln!(
                schema_out,
                "fk\t{}\t{}\t{}",
                fk.column, fk.ref_table, fk.ref_column
            )?;
        }
        // Composite keys: `cfk  <ref_table>  <arity>  cols…  ref_cols…`,
        // one tab-separated field per column so names never need quoting.
        for cfk in &table.schema().composite_foreign_keys {
            write!(schema_out, "cfk\t{}\t{}", cfk.ref_table, cfk.arity())?;
            for c in cfk.columns.iter().chain(&cfk.ref_columns) {
                write!(schema_out, "\t{c}")?;
            }
            writeln!(schema_out)?;
        }
    }
    schema_out.flush()?;

    let mut line = String::new();
    for table in db.tables() {
        let mut out = BufWriter::new(std::fs::File::create(
            dir.join(format!("{}.tsv", table.name())),
        )?);
        for i in 0..table.row_count() {
            line.clear();
            for (j, _, col) in table.iter_columns() {
                if j > 0 {
                    line.push('\t');
                }
                match &col[i] {
                    Value::Null => line.push_str(NULL_TOKEN),
                    v => {
                        let rendered = v.to_string();
                        escape(&rendered, &mut line);
                    }
                }
            }
            line.push('\n');
            out.write_all(line.as_bytes())?;
        }
        out.flush()?;
    }
    Ok(())
}

/// Loads a database previously written by [`save_database`].
pub fn load_database(dir: &Path) -> Result<Database> {
    let schema_path = dir.join("schema.txt");
    let ctx = schema_path.display().to_string();
    let file = std::fs::File::open(&schema_path)?;
    let reader = BufReader::new(file);

    /// Parsed foreign key line: (column, referenced table, referenced column).
    type FkLine = (String, String, String);
    /// Parsed composite foreign key line: (columns, referenced table,
    /// referenced columns).
    type CfkLine = (Vec<String>, String, Vec<String>);
    let mut db_name: Option<String> = None;
    #[allow(clippy::type_complexity)]
    let mut tables: Vec<(String, Vec<ColumnSchema>, Vec<FkLine>, Vec<CfkLine>)> = Vec::new();

    for line in reader.lines() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "database" if fields.len() == 2 => db_name = Some(fields[1].to_string()),
            "table" if fields.len() == 2 => {
                tables.push((fields[1].to_string(), Vec::new(), Vec::new(), Vec::new()))
            }
            "column" if fields.len() == 5 => {
                let (_, cols, _, _) = tables.last_mut().ok_or_else(|| StorageError::Parse {
                    context: ctx.clone(),
                    detail: "column line before any table line".into(),
                })?;
                let dt = DataType::from_name(fields[2]).ok_or_else(|| StorageError::Parse {
                    context: ctx.clone(),
                    detail: format!("unknown data type `{}`", fields[2]),
                })?;
                let mut c = ColumnSchema::new(fields[1], dt);
                c.nullable = fields[3] == "null";
                c.unique = fields[4] == "unique";
                cols.push(c);
            }
            "fk" if fields.len() == 4 => {
                let (_, _, fks, _) = tables.last_mut().ok_or_else(|| StorageError::Parse {
                    context: ctx.clone(),
                    detail: "fk line before any table line".into(),
                })?;
                fks.push((
                    fields[1].to_string(),
                    fields[2].to_string(),
                    fields[3].to_string(),
                ));
            }
            "cfk" if fields.len() >= 3 => {
                let (_, _, _, cfks) = tables.last_mut().ok_or_else(|| StorageError::Parse {
                    context: ctx.clone(),
                    detail: "cfk line before any table line".into(),
                })?;
                let arity: usize = fields[2].parse().map_err(|_| StorageError::Parse {
                    context: ctx.clone(),
                    detail: format!("bad composite-key arity `{}`", fields[2]),
                })?;
                // Checked arithmetic: a hostile arity must be a parse
                // error, not a debug-build overflow panic.
                let expected_fields = arity
                    .checked_mul(2)
                    .and_then(|n| n.checked_add(3))
                    .ok_or_else(|| StorageError::Parse {
                        context: ctx.clone(),
                        detail: format!("bad composite-key arity `{arity}`"),
                    })?;
                if fields.len() != expected_fields {
                    return Err(StorageError::Parse {
                        context: ctx,
                        detail: format!(
                            "cfk line has {} column fields, expected {}",
                            fields.len() - 3,
                            2 * arity
                        ),
                    });
                }
                cfks.push((
                    fields[3..3 + arity].iter().map(|s| s.to_string()).collect(),
                    fields[1].to_string(),
                    fields[3 + arity..].iter().map(|s| s.to_string()).collect(),
                ));
            }
            other => {
                return Err(StorageError::Parse {
                    context: ctx,
                    detail: format!("unrecognized schema line starting with `{other}`"),
                })
            }
        }
    }

    let mut db = Database::new(db_name.ok_or_else(|| StorageError::Parse {
        context: ctx.clone(),
        detail: "missing database line".into(),
    })?);

    for (name, cols, fks, cfks) in tables {
        let mut schema = TableSchema::new(&name, cols)?;
        for (col, rt, rc) in fks {
            schema.add_foreign_key(col, rt, rc)?;
        }
        for (cols, rt, rcs) in cfks {
            schema.add_composite_foreign_key(cols, rt, rcs)?;
        }
        let mut table = Table::new(schema);

        let data_path = dir.join(format!("{name}.tsv"));
        let data_ctx = data_path.display().to_string();
        let file = std::fs::File::open(&data_path)?;
        let mut reader = BufReader::new(file);
        let mut line = String::new();
        let mut line_no = 0usize;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            line_no += 1;
            let trimmed = line.strip_suffix('\n').unwrap_or(&line);
            let arity = table.schema().arity();
            let mut row = Vec::with_capacity(arity);
            for (j, field) in trimmed.split('\t').enumerate() {
                if j >= arity {
                    return Err(StorageError::Parse {
                        context: data_ctx.clone(),
                        detail: format!("line {line_no}: too many fields"),
                    });
                }
                if field == NULL_TOKEN {
                    row.push(Value::Null);
                } else {
                    let dt = table.schema().columns[j].data_type;
                    let unescaped = unescape(field, &data_ctx)?;
                    let v = Value::parse(dt, &unescaped).ok_or_else(|| StorageError::Parse {
                        context: data_ctx.clone(),
                        detail: format!("line {line_no}: cannot parse `{unescaped}` as {dt}"),
                    })?;
                    row.push(v);
                }
            }
            table.insert(row)?;
        }
        db.add_table(table)?;
    }
    db.validate_foreign_keys()?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnSchema, TableSchema};
    use ind_testkit::TempDir;

    fn sample_db() -> Database {
        let mut db = Database::new("roundtrip");
        let mut schema = TableSchema::new(
            "items",
            vec![
                ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique(),
                ColumnSchema::new("label", DataType::Text),
                ColumnSchema::new("weight", DataType::Float),
            ],
        )
        .unwrap();
        schema.add_foreign_key("id", "items", "id").unwrap();
        schema
            .add_composite_foreign_key(["id", "label"], "items", ["label", "id"])
            .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![1.into(), "plain".into(), 1.25.into()])
            .unwrap();
        t.insert(vec![2.into(), "tab\there".into(), Value::Null])
            .unwrap();
        t.insert(vec![3.into(), "line\nbreak \\ slash".into(), 0.5.into()])
            .unwrap();
        t.insert(vec![4.into(), Value::Null, Value::Null]).unwrap();
        db.add_table(t).unwrap();
        db.add_table(Table::new(
            TableSchema::new("empty", vec![ColumnSchema::new("x", DataType::Text)]).unwrap(),
        ))
        .unwrap();
        db
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = TempDir::new("tsv-roundtrip");
        let db = sample_db();
        save_database(&db, dir.path()).unwrap();
        let loaded = load_database(dir.path()).unwrap();

        assert_eq!(loaded.name(), db.name());
        assert_eq!(loaded.table_count(), db.table_count());
        let orig = db.table("items").unwrap();
        let back = loaded.table("items").unwrap();
        assert_eq!(back.schema(), orig.schema());
        assert_eq!(
            back.schema().composite_foreign_keys,
            orig.schema().composite_foreign_keys,
            "composite gold keys must survive the round trip"
        );
        assert_eq!(back.row_count(), orig.row_count());
        for i in 0..orig.row_count() {
            assert_eq!(back.row(i), orig.row(i), "row {i}");
        }
        assert!(loaded.table("empty").unwrap().is_empty());
    }

    #[test]
    fn escape_unescape_round_trip() {
        for s in [
            "plain",
            "a\tb",
            "a\nb",
            "back\\slash",
            "\\N",
            "",
            "mix\t\n\\",
        ] {
            let mut esc = String::new();
            escape(s, &mut esc);
            assert!(!esc.contains('\t'));
            assert!(!esc.contains('\n'));
            assert_eq!(unescape(&esc, "test").unwrap(), s, "input {s:?}");
        }
    }

    #[test]
    fn corrupt_schema_is_an_error() {
        let dir = TempDir::new("tsv-corrupt");
        std::fs::write(dir.join("schema.txt"), "garbage\tline\n").unwrap();
        assert!(matches!(
            load_database(dir.path()),
            Err(StorageError::Parse { .. })
        ));
    }

    #[test]
    fn hostile_cfk_arity_is_a_parse_error_not_a_panic() {
        let dir = TempDir::new("tsv-cfk-arity");
        for arity in ["9223372036854775807", "18446744073709551615", "x"] {
            std::fs::write(
                dir.join("schema.txt"),
                format!(
                    "database\tx\ntable\tt\ncolumn\ta\ttext\tnull\tdup\n\
                     column\tb\ttext\tnull\tdup\ncfk\tt\t{arity}\ta\tb\ta\tb\n"
                ),
            )
            .unwrap();
            assert!(matches!(
                load_database(dir.path()),
                Err(StorageError::Parse { .. })
            ));
        }
    }

    #[test]
    fn missing_data_file_is_an_error() {
        let dir = TempDir::new("tsv-missing");
        std::fs::write(
            dir.join("schema.txt"),
            "database\tx\ntable\tt\ncolumn\tc\ttext\tnull\tdup\n",
        )
        .unwrap();
        assert!(matches!(
            load_database(dir.path()),
            Err(StorageError::Io(_))
        ));
    }

    #[test]
    fn bad_value_reports_line() {
        let dir = TempDir::new("tsv-badvalue");
        std::fs::write(
            dir.join("schema.txt"),
            "database\tx\ntable\tt\ncolumn\tc\tinteger\tnull\tdup\n",
        )
        .unwrap();
        std::fs::write(dir.join("t.tsv"), "notanumber\n").unwrap();
        match load_database(dir.path()) {
            Err(StorageError::Parse { detail, .. }) => assert!(detail.contains("line 1")),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
