//! Error type shared by all storage operations.

use std::fmt;

/// Errors produced by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure (persistence).
    Io(std::io::Error),
    /// A table name was not found in the database.
    UnknownTable(String),
    /// A column name was not found in a table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// A row had the wrong number of values for its table.
    ArityMismatch {
        /// Table being inserted into.
        table: String,
        /// Number of columns declared.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A value's type did not match the column declaration.
    TypeMismatch {
        /// Table being inserted into.
        table: String,
        /// Offending column.
        column: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// NULL supplied for a non-nullable column.
    NullViolation {
        /// Table being inserted into.
        table: String,
        /// Offending column.
        column: String,
    },
    /// Two tables with the same name were added to a database.
    DuplicateTable(String),
    /// Two columns with the same name were declared in one table.
    DuplicateColumn {
        /// Table declaring the duplicate.
        table: String,
        /// Duplicated name.
        column: String,
    },
    /// Failure while parsing persisted data back in.
    Parse {
        /// Source location (file or table).
        context: String,
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StorageError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "row arity mismatch for table `{table}`: expected {expected} values, got {got}"
            ),
            StorageError::TypeMismatch {
                table,
                column,
                detail,
            } => write!(f, "type mismatch in `{table}`.`{column}`: {detail}"),
            StorageError::NullViolation { table, column } => {
                write!(f, "NULL not allowed in `{table}`.`{column}`")
            }
            StorageError::DuplicateTable(t) => write!(f, "duplicate table `{t}`"),
            StorageError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column `{column}` in table `{table}`")
            }
            StorageError::Parse { context, detail } => {
                write!(f, "parse error in {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::UnknownColumn {
            table: "t".into(),
            column: "c".into(),
        };
        assert!(e.to_string().contains('t'));
        assert!(e.to_string().contains('c'));

        let e = StorageError::ArityMismatch {
            table: "t".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
