//! # ind-trace
//!
//! Hierarchical phase spans, live progress counters, and power-of-two
//! histograms for the whole workspace — with the tree's usual discipline:
//! **zero steady-state allocation** once tracing is warm. Span identities
//! are pre-registered statics ([`SpanId`]), events land in thread-local
//! fixed-size ring buffers (a full ring counts drops, never grows), and
//! every span close carries a delta snapshot of the global progress
//! counters, so a finished run can be folded into a span tree
//! ([`collect`]), a versioned JSON report ([`spans_json`]), or
//! flamegraph-compatible folded stacks ([`folded`]) without the engines
//! ever having formatted a byte.
//!
//! When tracing is disabled (the default), a span start/finish is one
//! relaxed atomic load each and the counters are never touched — the
//! instrumented hot loops cost nothing.

#![warn(missing_docs)]

mod hist;
pub mod json;
mod progress;
mod report;
mod ring;
mod span;

pub use hist::{histograms, Histogram, BLOCK_FILL_NANOS, HIST_BUCKETS, RECORD_LEN_BYTES};
pub use progress::{
    add_counter, candidates_live, progress, set_candidates_live, Counter, ProgressSnapshot,
    COUNTER_COUNT, COUNTER_NAMES,
};
pub use report::{collect, folded, span_label, spans_json, SpanNode, Trace};
pub use ring::dropped_events;
pub use span::{
    current_parent, disable, enable, enabled, reset, start, start_arg, start_under, ParentToken,
    SpanGuard, SpanId, BLOCK_PASS, DISCOVER, EXPORT, GENERATE, LEVEL, PARTITION, PREFETCH_WAIT,
    PRESCAN, PROFILE, RESUME_SCAN, SAMPLING, SORT, SPAN_NAMES, SPIDER_MERGE, SPILL_MERGE,
};
