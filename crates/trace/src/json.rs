//! A minimal JSON parser for report validation and round-trip tests.
//!
//! The workspace vendors no JSON crate; every producer hand-rolls its
//! output, so this is the matching consumer: strict enough to reject
//! malformed reports, small enough to audit. Integers that fit `u64`
//! are kept exact (counters round-trip losslessly); everything else
//! numeric becomes `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's field list.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(want), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = text_tail(bytes, *pos)?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn text_tail(bytes: &[u8], pos: usize) -> Result<&str, String> {
    std::str::from_utf8(&bytes[pos..]).map_err(|e| e.to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}
