//! Global progress counters: the live surface behind `--progress` and
//! the per-span delta snapshots.
//!
//! All relaxed atomics — the numbers are telemetry, not synchronisation —
//! and every mutator is gated on [`crate::enabled`], so a disabled run
//! never touches the cache lines.

use crate::span::enabled;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of delta-snapshotted counters (the fixed span payload size).
pub const COUNTER_COUNT: usize = 4;

/// Counter names in [`Counter`] order (the report vocabulary).
pub const COUNTER_NAMES: [&str; COUNTER_COUNT] = [
    "items_read",
    "value_bytes_read",
    "attributes_exported",
    "spill_runs",
];

/// One of the global progress counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Values pulled through merge cursors.
    ItemsRead = 0,
    /// Payload bytes those values carried.
    ValueBytesRead = 1,
    /// Attribute exports completed (extract → sort → write).
    AttributesExported = 2,
    /// Spill runs written by the external sorter.
    SpillRuns = 3,
}

static COUNTERS: [AtomicU64; COUNTER_COUNT] = [const { AtomicU64::new(0) }; COUNTER_COUNT];
/// Gauge, not a counter: the engines overwrite it with the survivor count.
static CANDIDATES_LIVE: AtomicU64 = AtomicU64::new(0);

/// Adds `delta` to a counter. No-op (one relaxed load) when disabled.
#[inline]
pub fn add_counter(counter: Counter, delta: u64) {
    if enabled() {
        COUNTERS[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }
}

/// Publishes the current surviving-candidate count (a gauge).
#[inline]
pub fn set_candidates_live(count: u64) {
    if enabled() {
        CANDIDATES_LIVE.store(count, Ordering::Relaxed);
    }
}

/// The last published surviving-candidate count.
pub fn candidates_live() -> u64 {
    CANDIDATES_LIVE.load(Ordering::Relaxed)
}

/// Snapshot of the delta-tracked counters, in [`Counter`] order.
#[inline]
pub(crate) fn snapshot() -> [u64; COUNTER_COUNT] {
    let mut out = [0u64; COUNTER_COUNT];
    let mut i = 0;
    while i < COUNTER_COUNT {
        out[i] = COUNTERS[i].load(Ordering::Relaxed);
        i += 1;
    }
    out
}

/// Everything the heartbeat prints, read in one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Values pulled through merge cursors so far.
    pub items_read: u64,
    /// Payload bytes those values carried.
    pub value_bytes_read: u64,
    /// Attribute exports completed so far.
    pub attributes_exported: u64,
    /// Spill runs written so far.
    pub spill_runs: u64,
    /// Candidates still surviving (gauge; engines overwrite it).
    pub candidates_live: u64,
}

/// Reads the progress counters (valid whether or not tracing is on).
pub fn progress() -> ProgressSnapshot {
    let c = snapshot();
    ProgressSnapshot {
        items_read: c[Counter::ItemsRead as usize],
        value_bytes_read: c[Counter::ValueBytesRead as usize],
        attributes_exported: c[Counter::AttributesExported as usize],
        spill_runs: c[Counter::SpillRuns as usize],
        candidates_live: candidates_live(),
    }
}

/// Zeroes every counter and the gauge (for multi-run harnesses).
pub(crate) fn reset_counters() {
    for counter in COUNTERS.iter() {
        counter.store(0, Ordering::Relaxed);
    }
    CANDIDATES_LIVE.store(0, Ordering::Relaxed);
}
