//! Power-of-two-bucket histograms for hot-path latency and size
//! distributions.
//!
//! Bucket `i` counts values in `[2^(i-1), 2^i)` (bucket 0 counts zero).
//! Recording is one relaxed `fetch_add` behind the global enable gate —
//! cheap enough for per-block and per-record call sites.

use crate::span::enabled;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per histogram (covers the full `u64` range).
pub const HIST_BUCKETS: usize = 64;

/// A fixed-bucket power-of-two histogram.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    /// The histogram's report name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Counts one value. No-op (one relaxed load) when tracing is off.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let bucket = (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed snapshot of all bucket counts.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        let mut i = 0;
        while i < HIST_BUCKETS {
            out[i] = self.buckets[i].load(Ordering::Relaxed);
            i += 1;
        }
        out
    }

    fn reset(&self) {
        for bucket in self.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// Block-fill latency (nanoseconds per block read into the block layer).
pub static BLOCK_FILL_NANOS: Histogram = Histogram::new("block_fill_nanos");
/// Record payload length (bytes per value written to a value file).
pub static RECORD_LEN_BYTES: Histogram = Histogram::new("record_len_bytes");

/// Every registered histogram, for report assembly.
pub fn histograms() -> [&'static Histogram; 2] {
    [&BLOCK_FILL_NANOS, &RECORD_LEN_BYTES]
}

/// Zeroes every histogram (for multi-run harnesses).
pub(crate) fn reset_histograms() {
    for hist in histograms() {
        hist.reset();
    }
}
