//! Span identities, the global enable switch, and the RAII span guard.
//!
//! Hot-path module: a guard on the disabled path is one relaxed load; on
//! the enabled path it is two fixed-size ring-buffer writes and a handful
//! of relaxed counter reads. Nothing here allocates after the per-thread
//! ring has been set up (see [`crate::ring`]).

use crate::progress;
use crate::ring::{self, Event, EventKind};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A pre-registered span identity: an index into [`SPAN_NAMES`].
///
/// Identities are static so starting a span never formats or hashes a
/// name; the label is resolved only at report time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u16);

/// How a span's `arg` is rendered in labels (report time only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArgStyle {
    /// `arg` is incidental; the label is the bare name.
    None,
    /// `name/attr=arg` — per-attribute spans.
    Attr,
    /// `name=arg` — the arg is the span's own index (level, partition…).
    Index,
}

/// The span-name registry: `(name, arg rendering)` per [`SpanId`].
pub(crate) const SPAN_TABLE: [(&str, ArgStyle); 14] = [
    ("discover", ArgStyle::None),
    ("export", ArgStyle::None),
    ("profile", ArgStyle::None),
    ("prescan", ArgStyle::None),
    ("generate", ArgStyle::None),
    ("sampling", ArgStyle::None),
    ("sort", ArgStyle::Attr),
    ("spill_merge", ArgStyle::None),
    ("spider_merge", ArgStyle::None),
    ("partition", ArgStyle::Index),
    ("block_pass", ArgStyle::Index),
    ("level", ArgStyle::Index),
    ("prefetch_wait", ArgStyle::None),
    ("resume_scan", ArgStyle::None),
];

/// Span names in [`SpanId`] order (the report vocabulary).
pub const SPAN_NAMES: [&str; 14] = [
    "discover",
    "export",
    "profile",
    "prescan",
    "generate",
    "sampling",
    "sort",
    "spill_merge",
    "spider_merge",
    "partition",
    "block_pass",
    "level",
    "prefetch_wait",
    "resume_scan",
];

/// Whole run: the root span every other phase nests under.
pub const DISCOVER: SpanId = SpanId(0);
/// The export phase (extract → sort → write, all attributes).
pub const EXPORT: SpanId = SpanId(1);
/// Building attribute profiles from an export.
pub const PROFILE: SpanId = SpanId(2);
/// The keep-going pre-scan that quarantines unreadable attributes.
pub const PRESCAN: SpanId = SpanId(3);
/// Candidate generation (incl. cardinality/min/max pretests).
pub const GENERATE: SpanId = SpanId(4);
/// The sampling pretest over the generated candidates.
pub const SAMPLING: SpanId = SpanId(5);
/// One attribute's extract+sort during export; `arg` = attribute id.
pub const SORT: SpanId = SpanId(6);
/// The k-way spill-run merge inside the external sorter; `arg` = runs.
pub const SPILL_MERGE: SpanId = SpanId(7);
/// The SPIDER min-heap merge over all cursors.
pub const SPIDER_MERGE: SpanId = SpanId(8);
/// One range partition of the parallel engine; `arg` = partition index.
pub const PARTITION: SpanId = SpanId(9);
/// One block of the block-wise engine; `arg` = block-pair index.
pub const BLOCK_PASS: SpanId = SpanId(10);
/// One level of the n-ary pipeline; `arg` = arity.
pub const LEVEL: SpanId = SpanId(11);
/// Consumer blocked waiting on the prefetch worker's next block.
pub const PREFETCH_WAIT: SpanId = SpanId(12);
/// The resume sweep: orphan cleanup plus manifest-vs-footer validation.
pub const RESUME_SCAN: SpanId = SpanId(13);

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Span-instance tokens and event ordering share one sequence so report
/// assembly can totally order events from every thread.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Token of the innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// Is tracing on? One relaxed load — engines may call this per item.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on, fixing the time epoch on first use.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns tracing off; recorded events stay collectable.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clears every ring, counter, and histogram (the epoch and the enable
/// flag are kept). For harnesses that trace several runs in one process.
pub fn reset() {
    ring::reset_rings();
    progress::reset_counters();
    crate::hist::reset_histograms();
}

/// Nanoseconds since the trace epoch (0 before the first [`enable`]).
#[inline]
pub(crate) fn now_ns() -> u64 {
    match EPOCH.get() {
        Some(epoch) => epoch.elapsed().as_nanos() as u64,
        None => 0,
    }
}

/// An opaque handle to a span instance, for parenting work that runs on
/// another thread (worker spans under the spawning phase).
#[derive(Debug, Clone, Copy)]
pub struct ParentToken(u64);

impl ParentToken {
    /// True when no span is open — work started under this token would
    /// become a root. Leaf instrumentation on detached helper threads
    /// (which would each pay for a whole event ring just to hold a few
    /// orphan spans) uses this to skip recording.
    pub fn is_root(&self) -> bool {
        self.0 == 0
    }
}

/// The innermost open span on this thread, as a cross-thread parent
/// handle. Returns a root token when no span is open (or tracing is off).
#[inline]
pub fn current_parent() -> ParentToken {
    CURRENT.with(|c| ParentToken(c.get()))
}

/// An open span; finishes (records wall time + counter deltas) on drop.
///
/// Plain `Copy` data only — creating and dropping a guard never
/// allocates.
#[must_use = "a span measures nothing unless it lives across the phase"]
pub struct SpanGuard {
    token: u64,
    prev: u64,
    span: u16,
    arg: u64,
    base: [u64; progress::COUNTER_COUNT],
    active: bool,
}

/// Starts a span under the thread's current span.
#[inline]
pub fn start(id: SpanId) -> SpanGuard {
    start_arg(id, 0)
}

/// Starts a span with an argument (attribute id, level, partition…).
#[inline]
pub fn start_arg(id: SpanId, arg: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    let parent = CURRENT.with(Cell::get);
    start_recorded(id, arg, parent)
}

/// Starts a span under an explicit parent — for worker threads, which
/// otherwise have no span context.
#[inline]
pub fn start_under(id: SpanId, arg: u64, parent: ParentToken) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    start_recorded(id, arg, parent.0)
}

fn start_recorded(id: SpanId, arg: u64, parent: u64) -> SpanGuard {
    let token = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT.with(|c| c.replace(token));
    ring::record(Event {
        seq: token,
        kind: EventKind::Start,
        span: id.0,
        arg,
        token,
        parent,
        t_ns: now_ns(),
        counters: [0; progress::COUNTER_COUNT],
    });
    SpanGuard {
        token,
        prev,
        span: id.0,
        arg,
        base: progress::snapshot(),
        active: true,
    }
}

impl SpanGuard {
    fn inert() -> Self {
        SpanGuard {
            token: 0,
            prev: 0,
            span: 0,
            arg: 0,
            base: [0; progress::COUNTER_COUNT],
            active: false,
        }
    }

    /// Ends the span now (drop does the same; this names the intent).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let now = progress::snapshot();
        let mut deltas = [0u64; progress::COUNTER_COUNT];
        let mut i = 0;
        while i < progress::COUNTER_COUNT {
            deltas[i] = now[i].wrapping_sub(self.base[i]);
            i += 1;
        }
        ring::record(Event {
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
            kind: EventKind::End,
            span: self.span,
            arg: self.arg,
            token: self.token,
            parent: 0,
            t_ns: now_ns(),
            counters: deltas,
        });
        CURRENT.with(|c| c.set(self.prev));
    }
}
