//! Thread-local fixed-size event rings with a global registry.
//!
//! Each tracing thread owns one pre-sized event buffer behind an
//! `Arc<Mutex<…>>` that is also registered globally, so a worker's
//! events survive its thread and report assembly can drain every ring.
//! Recording into a ring with spare capacity never allocates; a full
//! ring counts the drop instead of growing.

use crate::progress::COUNTER_COUNT;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Events each thread can hold before drops start. Spans are
/// phase-granular (per attribute at the finest), so this is generous.
const RING_CAPACITY: usize = 16 * 1024;

/// Start or end marker of one span instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Span opened.
    Start,
    /// Span closed; `counters` holds the delta snapshot.
    End,
}

/// One ring entry. `Copy`, fixed size: recording is a plain array write.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// Global order (shared sequence with span tokens).
    pub seq: u64,
    /// Start or end.
    pub kind: EventKind,
    /// Index into the span-name registry.
    pub span: u16,
    /// Span argument (attribute id, level, partition…).
    pub arg: u64,
    /// Span-instance token.
    pub token: u64,
    /// Parent token (start events only; 0 = root).
    pub parent: u64,
    /// Nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Progress-counter deltas (end events only).
    pub counters: [u64; COUNTER_COUNT],
}

struct Ring {
    events: Vec<Event>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: Event) {
        if self.events.len() < self.events.capacity() {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }
}

/// Every thread's ring, kept alive past thread exit for report assembly.
// lint: allow(hot_alloc) — empty registry; Vec::new is const and does not allocate
static REGISTRY: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
/// Drops recorded on rings that were full (surfaced in the report).
static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

/// Appends one event to this thread's ring, creating and registering the
/// ring on first use (the module's only allocation).
pub(crate) fn record(event: Event) {
    LOCAL.with(|local| {
        let mut slot = local.borrow_mut();
        if slot.is_none() {
            let ring = Arc::new(Mutex::new(Ring {
                events: Vec::with_capacity(RING_CAPACITY),
                dropped: 0,
            }));
            match REGISTRY.lock() {
                Ok(mut registry) => registry.push(Arc::clone(&ring)),
                Err(_) => return, // a panicking collector poisoned the registry; drop the event
            }
            *slot = Some(ring);
        }
        if let Some(ring) = slot.as_ref() {
            if let Ok(mut ring) = ring.lock() {
                ring.push(event);
            }
        }
    });
}

/// Copies every ring's events out, sorted by global sequence.
pub(crate) fn drain_sorted() -> Vec<Event> {
    let mut all = Vec::with_capacity(1024);
    if let Ok(registry) = REGISTRY.lock() {
        let mut total_dropped = 0;
        for ring in registry.iter() {
            if let Ok(ring) = ring.lock() {
                all.extend_from_slice(&ring.events);
                total_dropped += ring.dropped;
            }
        }
        DROPPED.store(total_dropped, Ordering::Relaxed);
    }
    all.sort_unstable_by_key(|e| e.seq);
    all
}

/// Events lost to full rings, as of the last [`drain_sorted`].
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clears every ring (capacity retained) and the drop counter.
pub(crate) fn reset_rings() {
    if let Ok(registry) = REGISTRY.lock() {
        for ring in registry.iter() {
            if let Ok(mut ring) = ring.lock() {
                ring.events.clear();
                ring.dropped = 0;
            }
        }
    }
    DROPPED.store(0, Ordering::Relaxed);
}
