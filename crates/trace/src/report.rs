//! Report-time assembly: span tree, JSON rendering, folded stacks.
//!
//! Everything here runs after the measured work and may allocate freely.

use crate::progress::{COUNTER_COUNT, COUNTER_NAMES};
use crate::ring::{self, EventKind};
use crate::span::{ArgStyle, SPAN_TABLE};
use std::collections::HashMap;

/// One finished span with its children, ready for rendering.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Registered span name (see [`crate::SPAN_NAMES`]).
    pub name: &'static str,
    /// Span argument (attribute id, level, partition…).
    pub arg: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Wall time from start to finish.
    pub duration_ns: u64,
    /// Progress-counter deltas over the span, in [`COUNTER_NAMES`] order.
    pub counters: [u64; COUNTER_COUNT],
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall time of this span not covered by its children.
    pub fn self_ns(&self) -> u64 {
        let child_total: u64 = self.children.iter().map(|c| c.duration_ns).sum();
        self.duration_ns.saturating_sub(child_total)
    }
}

/// A collected run: root spans plus the ring-overflow count.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Top-level spans (usually one `discover` root).
    pub roots: Vec<SpanNode>,
    /// Events lost to full rings (0 on any normal run).
    pub dropped_events: u64,
}

/// The human label for a span (`sort/attr=3`, `level=2`, `export`…).
pub fn span_label(name: &str, arg: u64) -> String {
    for (registered, style) in SPAN_TABLE {
        if registered == name {
            return match style {
                ArgStyle::None => name.to_string(),
                ArgStyle::Attr => format!("{name}/attr={arg}"),
                ArgStyle::Index => format!("{name}={arg}"),
            };
        }
    }
    name.to_string()
}

struct Pending {
    span: u16,
    arg: u64,
    parent: u64,
    start_ns: u64,
    end_ns: Option<u64>,
    counters: [u64; COUNTER_COUNT],
    children: Vec<u64>,
}

/// Drains every thread's ring and folds the events into a span tree.
///
/// Spans still open at collection time are omitted (their finished
/// children are promoted to roots), so the tree always satisfies
/// child-interval ⊆ parent-interval.
pub fn collect() -> Trace {
    let events = ring::drain_sorted();
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for event in &events {
        match event.kind {
            EventKind::Start => {
                pending.insert(
                    event.token,
                    Pending {
                        span: event.span,
                        arg: event.arg,
                        parent: event.parent,
                        start_ns: event.t_ns,
                        end_ns: None,
                        counters: [0; COUNTER_COUNT],
                        children: Vec::new(),
                    },
                );
                order.push(event.token);
            }
            EventKind::End => {
                if let Some(p) = pending.get_mut(&event.token) {
                    p.end_ns = Some(event.t_ns);
                    p.counters = event.counters;
                }
            }
        }
    }
    // Attach children to parents (in start order, so sibling order is
    // stable); a finished span under an unfinished or unknown parent
    // becomes a root.
    let mut roots: Vec<u64> = Vec::new();
    for &token in &order {
        let parent = pending[&token].parent;
        let parent_finished =
            parent != 0 && pending.get(&parent).is_some_and(|p| p.end_ns.is_some());
        if parent_finished {
            if let Some(p) = pending.get_mut(&parent) {
                p.children.push(token);
            }
        } else if pending[&token].end_ns.is_some() {
            roots.push(token);
        }
    }
    fn build(token: u64, pending: &HashMap<u64, Pending>) -> Option<SpanNode> {
        let p = pending.get(&token)?;
        let end_ns = p.end_ns?;
        let mut children = Vec::with_capacity(p.children.len());
        for &child in &p.children {
            if let Some(node) = build(child, pending) {
                children.push(node);
            }
        }
        Some(SpanNode {
            name: SPAN_TABLE
                .get(p.span as usize)
                .map_or("unknown", |(name, _)| name),
            arg: p.arg,
            start_ns: p.start_ns,
            duration_ns: end_ns.saturating_sub(p.start_ns),
            counters: p.counters,
            children,
        })
    }
    Trace {
        roots: roots
            .into_iter()
            .filter_map(|t| build(t, &pending))
            .collect(),
        dropped_events: ring::dropped_events(),
    }
}

fn write_span(out: &mut String, node: &SpanNode, indent: usize) {
    let pad = " ".repeat(indent);
    out.push_str(&format!("{pad}{{\n"));
    out.push_str(&format!("{pad}  \"name\": \"{}\",\n", node.name));
    out.push_str(&format!("{pad}  \"arg\": {},\n", node.arg));
    out.push_str(&format!("{pad}  \"start_ns\": {},\n", node.start_ns));
    out.push_str(&format!("{pad}  \"duration_ns\": {},\n", node.duration_ns));
    out.push_str(&format!("{pad}  \"counters\": {{"));
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        out.push_str(&format!(
            "\"{name}\": {}{}",
            node.counters[i],
            if i + 1 < COUNTER_COUNT { ", " } else { "" }
        ));
    }
    out.push_str("},\n");
    if node.children.is_empty() {
        out.push_str(&format!("{pad}  \"children\": []\n"));
    } else {
        out.push_str(&format!("{pad}  \"children\": [\n"));
        for (i, child) in node.children.iter().enumerate() {
            write_span(out, child, indent + 4);
            if i + 1 < node.children.len() {
                out.push_str(",\n");
            } else {
                out.push('\n');
            }
        }
        out.push_str(&format!("{pad}  ]\n"));
    }
    out.push_str(&format!("{pad}}}"));
}

/// Renders the span tree as a JSON array (the report's `"spans"` value).
pub fn spans_json(trace: &Trace, indent: usize) -> String {
    let mut out = String::new();
    if trace.roots.is_empty() {
        out.push_str("[]");
        return out;
    }
    out.push_str("[\n");
    for (i, root) in trace.roots.iter().enumerate() {
        write_span(&mut out, root, indent + 2);
        if i + 1 < trace.roots.len() {
            out.push_str(",\n");
        } else {
            out.push('\n');
        }
    }
    out.push_str(&format!("{}]", " ".repeat(indent)));
    out
}

fn fold_into(out: &mut String, node: &SpanNode, stack: &mut String) {
    let rollback = stack.len();
    if !stack.is_empty() {
        stack.push(';');
    }
    stack.push_str(&span_label(node.name, node.arg));
    let self_us = node.self_ns() / 1_000;
    out.push_str(&format!("{stack} {self_us}\n"));
    for child in &node.children {
        fold_into(out, child, stack);
    }
    stack.truncate(rollback);
}

/// Renders flamegraph-compatible folded stacks: one line per span,
/// `discover;export;sort/attr=3 <self-microseconds>`.
pub fn folded(trace: &Trace) -> String {
    let mut out = String::new();
    let mut stack = String::new();
    for root in &trace.roots {
        fold_into(&mut out, root, &mut stack);
    }
    out
}
