//! Behavioural tests for the span recorder, progress counters,
//! histograms, and the JSON consumer.
//!
//! Tracing state is process-global, so every test touching it serialises
//! on one lock and resets the rings/counters it uses.

use ind_trace::json::{self, Json};
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    match TRACE_LOCK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[test]
fn spans_nest_within_parents_across_threads() {
    let _lock = locked();
    ind_trace::enable();
    ind_trace::reset();

    {
        let _root = ind_trace::start(ind_trace::DISCOVER);
        {
            let _export = ind_trace::start(ind_trace::EXPORT);
            let parent = ind_trace::current_parent();
            let worker = std::thread::spawn(move || {
                let sort = ind_trace::start_under(ind_trace::SORT, 7, parent);
                ind_trace::add_counter(ind_trace::Counter::AttributesExported, 1);
                sort.finish();
            });
            worker.join().expect("worker");
        }
        let _merge = ind_trace::start(ind_trace::SPIDER_MERGE);
        ind_trace::add_counter(ind_trace::Counter::ItemsRead, 42);
    }

    let trace = ind_trace::collect();
    ind_trace::disable();

    assert_eq!(trace.dropped_events, 0);
    assert_eq!(trace.roots.len(), 1, "one discover root: {trace:?}");
    let root = &trace.roots[0];
    assert_eq!(root.name, "discover");
    assert_eq!(root.children.len(), 2, "{root:?}");
    let export = &root.children[0];
    assert_eq!(export.name, "export");
    assert_eq!(export.children.len(), 1);
    let sort = &export.children[0];
    assert_eq!((sort.name, sort.arg), ("sort", 7));
    assert_eq!(sort.counters[2], 1, "attributes_exported delta on sort");
    let merge = &root.children[1];
    assert_eq!(merge.name, "spider_merge");
    assert_eq!(merge.counters[0], 42, "items_read delta on merge");

    // Interval containment: every child starts no earlier and ends no
    // later than its parent.
    fn check(node: &ind_trace::SpanNode) {
        let end = node.start_ns + node.duration_ns;
        for child in &node.children {
            assert!(child.start_ns >= node.start_ns, "{node:?}");
            assert!(child.start_ns + child.duration_ns <= end, "{node:?}");
            check(child);
        }
    }
    check(root);

    // Root counter deltas include everything recorded inside it.
    assert_eq!(root.counters[0], 42);
    assert_eq!(root.counters[2], 1);
}

#[test]
fn disabled_tracing_records_nothing_and_counts_nothing() {
    let _lock = locked();
    ind_trace::enable();
    ind_trace::reset();
    ind_trace::disable();

    {
        let _root = ind_trace::start(ind_trace::DISCOVER);
        ind_trace::add_counter(ind_trace::Counter::ItemsRead, 99);
        ind_trace::set_candidates_live(5);
        ind_trace::BLOCK_FILL_NANOS.record(1234);
    }
    let trace = ind_trace::collect();
    assert!(trace.roots.is_empty(), "{trace:?}");
    assert_eq!(ind_trace::progress().items_read, 0);
    assert_eq!(ind_trace::progress().candidates_live, 0);
    let total: u64 = ind_trace::BLOCK_FILL_NANOS.bucket_counts().iter().sum();
    assert_eq!(total, 0);
}

#[test]
fn folded_stacks_carry_labels_and_self_time() {
    let _lock = locked();
    ind_trace::enable();
    ind_trace::reset();
    {
        let _root = ind_trace::start(ind_trace::DISCOVER);
        {
            let _export = ind_trace::start(ind_trace::EXPORT);
            let _sort = ind_trace::start_arg(ind_trace::SORT, 3);
        }
        let _level = ind_trace::start_arg(ind_trace::LEVEL, 2);
    }
    let trace = ind_trace::collect();
    ind_trace::disable();
    let folded = ind_trace::folded(&trace);
    assert!(folded.contains("discover "), "{folded}");
    assert!(folded.contains("discover;export;sort/attr=3 "), "{folded}");
    assert!(folded.contains("discover;level=2 "), "{folded}");
    for line in folded.lines() {
        let (_, value) = line.rsplit_once(' ').expect("stack value");
        value.parse::<u64>().expect("numeric self time");
    }
}

#[test]
fn spans_json_is_parseable_and_well_formed() {
    let _lock = locked();
    ind_trace::enable();
    ind_trace::reset();
    {
        let _root = ind_trace::start(ind_trace::DISCOVER);
        let _export = ind_trace::start(ind_trace::EXPORT);
        ind_trace::add_counter(ind_trace::Counter::ValueBytesRead, 10);
    }
    let trace = ind_trace::collect();
    ind_trace::disable();
    let text = ind_trace::spans_json(&trace, 0);
    let parsed = json::parse(&text).expect("valid JSON");
    let spans = parsed.as_arr().expect("array");
    assert_eq!(spans.len(), 1);
    let root = &spans[0];
    assert_eq!(root.get("name").and_then(Json::as_str), Some("discover"));
    let children = root
        .get("children")
        .and_then(Json::as_arr)
        .expect("children");
    assert_eq!(children.len(), 1);
    let counters = children[0].get("counters").expect("counters");
    assert_eq!(
        counters.get("value_bytes_read").and_then(Json::as_u64),
        Some(10)
    );
}

#[test]
fn histogram_buckets_are_power_of_two() {
    let _lock = locked();
    ind_trace::enable();
    ind_trace::reset();
    ind_trace::RECORD_LEN_BYTES.record(0);
    ind_trace::RECORD_LEN_BYTES.record(1);
    ind_trace::RECORD_LEN_BYTES.record(2);
    ind_trace::RECORD_LEN_BYTES.record(3);
    ind_trace::RECORD_LEN_BYTES.record(1024);
    ind_trace::RECORD_LEN_BYTES.record(u64::MAX);
    let counts = ind_trace::RECORD_LEN_BYTES.bucket_counts();
    ind_trace::disable();
    assert_eq!(counts[0], 1, "zero bucket");
    assert_eq!(counts[1], 1, "[1,2)");
    assert_eq!(counts[2], 2, "[2,4)");
    assert_eq!(counts[11], 1, "[1024,2048)");
    assert_eq!(counts[63], 1, "top bucket clamps");
}

#[test]
fn ring_overflow_counts_drops_instead_of_growing() {
    let _lock = locked();
    ind_trace::enable();
    ind_trace::reset();
    // Far more spans than one ring holds (each span = 2 events).
    for i in 0..20_000u64 {
        let _span = ind_trace::start_arg(ind_trace::SORT, i);
    }
    let trace = ind_trace::collect();
    ind_trace::disable();
    assert!(trace.dropped_events > 0, "ring must saturate, not grow");
    // Whatever survived still parses into finished root spans.
    assert!(!trace.roots.is_empty());
    ind_trace::reset();
}

#[test]
fn json_parser_handles_the_report_vocabulary() {
    let text = r#"{
        "report_version": 1,
        "ok": true,
        "none": null,
        "ratio": -2.5,
        "big": 18446744073709551615,
        "name": "pdb \"x\" A\n",
        "list": [1, 2, [], {}],
        "nested": {"a": {"b": 3}}
    }"#;
    let v = json::parse(text).expect("parses");
    assert_eq!(v.get("report_version").and_then(Json::as_u64), Some(1));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("none"), Some(&Json::Null));
    assert_eq!(v.get("ratio").and_then(Json::as_f64), Some(-2.5));
    assert_eq!(v.get("big").and_then(Json::as_u64), Some(u64::MAX));
    assert_eq!(v.get("name").and_then(Json::as_str), Some("pdb \"x\" A\n"));
    assert_eq!(
        v.get("list").and_then(Json::as_arr).map(<[Json]>::len),
        Some(4)
    );
    assert_eq!(
        v.get("nested")
            .and_then(|n| n.get("a"))
            .and_then(|a| a.get("b"))
            .and_then(Json::as_u64),
        Some(3)
    );

    for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
        assert!(json::parse(bad).is_err(), "{bad:?} must not parse");
    }
}
