//! UniProt-shaped database generator over the BioSQL schema (Sec. 1.4).
//!
//! The real dataset: "UniProt … using the BioSQL schema … 85 attributes in
//! 16 tables, 667 MB". This generator reproduces the properties Sec. 5
//! measures, at configurable scale:
//!
//! * 16 tables, 82 attributes, with the BioSQL foreign-key structure
//!   declared as gold standard (21 FKs, two of them on an empty table —
//!   `sg_term_path` — which are therefore undiscoverable from data);
//! * one 1:1 table (`sg_biosequence`) and one covering unique FK
//!   (`sg_reference.dbxref_id`), which make the discovered IND set a strict
//!   superset of the FKs: the extras are exactly reverses of set-equal FKs
//!   and their transitive closure;
//! * **zero** coincidental inclusions: every unique column lives in its own
//!   value-space (disjoint numeric ranges, format-distinct strings), and
//!   small-integer columns always contain both parities so they cannot sink
//!   into the odd/even nested-set columns of `sg_taxon`;
//! * exactly **three** accession-number candidates per the Sec. 5 rules:
//!   `sg_bioentry.accession`, `sg_reference.crc`, `sg_ontology.name` — and
//!   heuristic 2 then picks `sg_bioentry` as the primary relation.

use crate::pools::ValuePools;
use crate::OrAbort;
use ind_storage::{ColumnSchema, DataType, Database, Table, TableSchema, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for the UniProt-shaped generator.
#[derive(Debug, Clone)]
pub struct BiosqlConfig {
    /// Number of `sg_bioentry` rows; every other table scales from it.
    pub bioentries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Include the empty `sg_term_path` table with its two undiscoverable
    /// foreign keys (Sec. 5: FKs "defined on empty tables … obviously
    /// cannot be found when regarding the data").
    pub include_empty_tables: bool,
    /// Fraction of `sg_dbxref.accession` values drawn from the shared PDB
    /// code pool (used by the Aladin inter-source step; the rest are
    /// GO-style identifiers, making the column a *partial* IND against
    /// `struct.entry_id`).
    pub pdb_link_fraction: f64,
}

impl Default for BiosqlConfig {
    fn default() -> Self {
        BiosqlConfig {
            bioentries: 800,
            seed: 42,
            include_empty_tables: true,
            pdb_link_fraction: 0.4,
        }
    }
}

impl BiosqlConfig {
    /// A fast configuration for unit tests.
    pub fn tiny() -> Self {
        BiosqlConfig {
            bioentries: 60,
            ..Default::default()
        }
    }
}

// Disjoint 8-digit id ranges per table; counts stay far below the 10M gap.
const BASE_BIODATABASE: i64 = 10_000_000;
const BASE_BIOENTRY: i64 = 20_000_000;
const BASE_TAXON: i64 = 30_000_000;
const BASE_ONTOLOGY: i64 = 40_000_000;
const BASE_TERM: i64 = 50_000_000;
const BASE_SEQFEATURE: i64 = 60_000_000;
const BASE_LOCATION: i64 = 70_000_000;
const BASE_DBXREF: i64 = 80_000_000;
const BASE_REFERENCE: i64 = 90_000_000;
const BASE_PUBMED: i64 = 1_000_000;
const BASE_NCBI_TAXON: i64 = 5_000_000;

fn ids(base: i64, n: usize) -> Vec<i64> {
    (0..n as i64).map(|i| base + i).collect()
}

fn col(name: &str, dt: DataType) -> ColumnSchema {
    ColumnSchema::new(name, dt)
}

fn pk(name: &str) -> ColumnSchema {
    ColumnSchema::new(name, DataType::Integer)
        .not_null()
        .unique()
}

/// A small integer with both parities guaranteed across the column (rows 0
/// and 1 are pinned), so the column can never be a subset of the odd/even
/// nested-set columns.
fn small_int(rng: &mut StdRng, row: usize, lo: i64, hi: i64) -> i64 {
    match row {
        0 => lo,
        1 => lo + 1,
        _ => rng.gen_range(lo..=hi),
    }
}

/// Generates the UniProt-shaped database.
pub fn generate_uniprot(cfg: &BiosqlConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new("uniprot");

    let n_bioentry = cfg.bioentries.max(4);
    let n_biodatabase = 4;
    let n_taxon = (n_bioentry / 4).max(5);
    let n_ontology = 8;
    let n_term = 120.min(n_bioentry.max(20));
    let n_reference = (n_bioentry / 3).max(4);
    let n_dbxref = n_reference; // 1:1 with references (covering unique FK)
    let n_seqfeature = n_bioentry * 2;

    let biodatabase_ids = ids(BASE_BIODATABASE, n_biodatabase);
    let bioentry_ids = ids(BASE_BIOENTRY, n_bioentry);
    let taxon_ids = ids(BASE_TAXON, n_taxon);
    let ontology_ids = ids(BASE_ONTOLOGY, n_ontology);
    let term_ids = ids(BASE_TERM, n_term);
    let seqfeature_ids = ids(BASE_SEQFEATURE, n_seqfeature);
    let dbxref_ids = ids(BASE_DBXREF, n_dbxref);
    let reference_ids = ids(BASE_REFERENCE, n_reference);

    let pick = |rng: &mut StdRng, pool: &[i64]| -> i64 { pool[rng.gen_range(0..pool.len())] };

    // -- sg_biodatabase -----------------------------------------------------
    {
        let mut t = Table::new(
            TableSchema::new(
                "sg_biodatabase",
                vec![
                    pk("id"),
                    col("name", DataType::Text),
                    col("authority", DataType::Text),
                    col("description", DataType::Text),
                ],
            )
            .or_abort("static build"),
        );
        let names = ["EMBL", "GenBank", "SwissProt", "TrEMBL"];
        for (i, &id) in biodatabase_ids.iter().enumerate() {
            let mut pools = ValuePools::new(&mut rng);
            // Alternate word counts so the row lengths differ by far more
            // than 20% *by construction*: with only four rows, leaving the
            // spread to chance lets an unlucky RNG stream make these
            // free-text columns pass the accession-number heuristics.
            let desc = pools.text(2 + 4 * (i % 2));
            let auth = pools.text(1 + 3 * (i % 2));
            t.insert(vec![
                id.into(),
                names[i % names.len()].into(),
                auth.into(),
                desc.into(),
            ])
            .or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_bioentry ---------------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_bioentry",
            vec![
                pk("id"),
                col("biodatabase_id", DataType::Integer).not_null(),
                col("taxon_id", DataType::Integer),
                col("name", DataType::Text).unique(),
                col("accession", DataType::Text).not_null().unique(),
                col("identifier", DataType::Text).unique(),
                col("division", DataType::Text),
                col("description", DataType::Text),
                col("version", DataType::Integer),
                col("molecule_type", DataType::Text),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("biodatabase_id", "sg_biodatabase", "id")
            .or_abort("foreign key");
        schema
            .add_foreign_key("taxon_id", "sg_taxon", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        let divisions = ["PRT", "EST", "GSS"];
        let molecules = ["protein", "dna", "rna"];
        for (i, &id) in bioentry_ids.iter().enumerate() {
            let biodatabase_id = pick(&mut rng, &biodatabase_ids);
            let taxon_id = pick(&mut rng, &taxon_ids);
            let version = small_int(&mut rng, i, 1, 5);
            let division = divisions[rng.gen_range(0..divisions.len())];
            let molecule = molecules[rng.gen_range(0..molecules.len())];
            let mut pools = ValuePools::new(&mut rng);
            let name = pools.entry_name(i);
            let accession = pools.uniprot_accession(i);
            let identifier = format!("{}{}", pools.vocab(), 100_000 + i);
            let description = pools.text(6);
            t.insert(vec![
                id.into(),
                biodatabase_id.into(),
                taxon_id.into(),
                name.into(),
                accession.into(),
                identifier.into(),
                division.into(),
                description.into(),
                version.into(),
                molecule.into(),
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_biosequence (1:1 with sg_bioentry) -------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_biosequence",
            vec![
                ColumnSchema::new("bioentry_id", DataType::Integer)
                    .not_null()
                    .unique(),
                col("version", DataType::Integer),
                col("length", DataType::Integer),
                col("alphabet", DataType::Text),
                col("seq", DataType::Lob),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("bioentry_id", "sg_bioentry", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        let alphabets = ["protein", "dna", "rna"];
        for (i, &bid) in bioentry_ids.iter().enumerate() {
            let version = small_int(&mut rng, i, 1, 3);
            let len = rng.gen_range(40..400i64);
            let alphabet = alphabets[rng.gen_range(0..alphabets.len())];
            let mut pools = ValuePools::new(&mut rng);
            let seq = pools.sequence(32);
            t.insert(vec![
                bid.into(),
                version.into(),
                len.into(),
                alphabet.into(),
                seq.into(),
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_taxon -------------------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_taxon",
            vec![
                pk("id"),
                col("ncbi_taxon_id", DataType::Integer).unique(),
                col("parent_taxon_id", DataType::Integer),
                col("node_rank", DataType::Text),
                col("genetic_code", DataType::Integer),
                col("mito_genetic_code", DataType::Integer),
                col("left_value", DataType::Integer).unique(),
                col("right_value", DataType::Integer).unique(),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("parent_taxon_id", "sg_taxon", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        let ranks = ["species", "genus", "family", "order", "class"];
        for (i, &id) in taxon_ids.iter().enumerate() {
            let parent = if i == 0 {
                Value::Null
            } else {
                taxon_ids[rng.gen_range(0..i)].into()
            };
            let rank = ranks[rng.gen_range(0..ranks.len())];
            let genetic = small_int(&mut rng, i, 1, 25);
            let mito = small_int(&mut rng, i, 1, 25);
            t.insert(vec![
                id.into(),
                (BASE_NCBI_TAXON + i as i64).into(),
                parent,
                rank.into(),
                genetic.into(),
                mito.into(),
                (2 * i as i64 + 1).into(), // odd nested-set bound
                (2 * i as i64 + 2).into(), // even nested-set bound
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_taxon_name ---------------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_taxon_name",
            vec![
                col("taxon_id", DataType::Integer).not_null(),
                col("name", DataType::Text),
                col("name_class", DataType::Text),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("taxon_id", "sg_taxon", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        let classes = ["scientific name", "synonym", "common name"];
        for i in 0..n_taxon * 2 {
            let taxon_id = if i < n_taxon {
                taxon_ids[i] // first pass covers every taxon
            } else {
                pick(&mut rng, &taxon_ids)
            };
            let class = classes[rng.gen_range(0..classes.len())];
            let mut pools = ValuePools::new(&mut rng);
            let name = pools.text(2);
            t.insert(vec![taxon_id.into(), name.into(), class.into()])
                .or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_ontology ------------------------------------------------------------
    {
        let mut t = Table::new(
            TableSchema::new(
                "sg_ontology",
                vec![
                    pk("id"),
                    col("name", DataType::Text).not_null().unique(),
                    col("definition", DataType::Text),
                ],
            )
            .or_abort("static build"),
        );
        for (i, &id) in ontology_ids.iter().enumerate() {
            let mut pools = ValuePools::new(&mut rng);
            let definition = pools.text(5);
            t.insert(vec![
                id.into(),
                ValuePools::ontology_name(i).into(),
                definition.into(),
            ])
            .or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_term -----------------------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_term",
            vec![
                pk("id"),
                col("name", DataType::Text),
                col("definition", DataType::Text),
                col("identifier", DataType::Text).unique(),
                col("is_obsolete", DataType::Integer),
                col("ontology_id", DataType::Integer).not_null(),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("ontology_id", "sg_ontology", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        for (i, &id) in term_ids.iter().enumerate() {
            let ontology_id = pick(&mut rng, &ontology_ids);
            let obsolete = i64::from(rng.gen_bool(0.05));
            let mut pools = ValuePools::new(&mut rng);
            let name = format!("{} {}", pools.vocab(), i);
            let definition = pools.text(4);
            t.insert(vec![
                id.into(),
                name.into(),
                definition.into(),
                ValuePools::term_identifier(i).into(),
                obsolete.into(),
                ontology_id.into(),
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_term_path (empty: its two FKs are undiscoverable from data) ----------
    if cfg.include_empty_tables {
        let mut schema = TableSchema::new(
            "sg_term_path",
            vec![
                col("subject_term_id", DataType::Integer).not_null(),
                col("object_term_id", DataType::Integer).not_null(),
                col("distance", DataType::Integer),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("subject_term_id", "sg_term", "id")
            .or_abort("foreign key");
        schema
            .add_foreign_key("object_term_id", "sg_term", "id")
            .or_abort("foreign key");
        db.add_table(Table::new(schema)).or_abort("foreign key");
    }

    // -- sg_seqfeature -------------------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_seqfeature",
            vec![
                pk("id"),
                col("bioentry_id", DataType::Integer).not_null(),
                col("type_term_id", DataType::Integer),
                col("source_term_id", DataType::Integer),
                col("display_name", DataType::Text),
                col("rank", DataType::Integer),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("bioentry_id", "sg_bioentry", "id")
            .or_abort("foreign key");
        schema
            .add_foreign_key("type_term_id", "sg_term", "id")
            .or_abort("foreign key");
        schema
            .add_foreign_key("source_term_id", "sg_term", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        for (i, &id) in seqfeature_ids.iter().enumerate() {
            let bioentry_id = pick(&mut rng, &bioentry_ids);
            let type_term = pick(&mut rng, &term_ids);
            let source_term = pick(&mut rng, &term_ids);
            let rank = small_int(&mut rng, i, 1, 4);
            let mut pools = ValuePools::new(&mut rng);
            let display = pools.vocab();
            t.insert(vec![
                id.into(),
                bioentry_id.into(),
                type_term.into(),
                source_term.into(),
                display.into(),
                rank.into(),
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_seqfeature_qualifier_value ------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_seqfeature_qualifier_value",
            vec![
                col("seqfeature_id", DataType::Integer).not_null(),
                col("term_id", DataType::Integer).not_null(),
                col("rank", DataType::Integer),
                col("value", DataType::Text),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("seqfeature_id", "sg_seqfeature", "id")
            .or_abort("foreign key");
        schema
            .add_foreign_key("term_id", "sg_term", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        for i in 0..n_seqfeature {
            let seqfeature_id = pick(&mut rng, &seqfeature_ids);
            let term_id = pick(&mut rng, &term_ids);
            let rank = small_int(&mut rng, i, 1, 3);
            let mut pools = ValuePools::new(&mut rng);
            let value = pools.text(3);
            t.insert(vec![
                seqfeature_id.into(),
                term_id.into(),
                rank.into(),
                value.into(),
            ])
            .or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_location -----------------------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_location",
            vec![
                pk("id"),
                col("seqfeature_id", DataType::Integer).not_null(),
                col("term_id", DataType::Integer),
                col("start_pos", DataType::Integer),
                col("end_pos", DataType::Integer),
                col("strand", DataType::Integer),
                col("rank", DataType::Integer),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("seqfeature_id", "sg_seqfeature", "id")
            .or_abort("foreign key");
        schema
            .add_foreign_key("term_id", "sg_term", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        let location_ids = ids(BASE_LOCATION, n_seqfeature);
        for (i, &id) in location_ids.iter().enumerate() {
            let seqfeature_id = pick(&mut rng, &seqfeature_ids);
            let term_id = pick(&mut rng, &term_ids);
            let start = small_int(&mut rng, i, 1, 5_000);
            let end = start + rng.gen_range(1..500i64);
            let strand = [-1i64, 0, 1][rng.gen_range(0..3)];
            let rank = small_int(&mut rng, i, 1, 3);
            t.insert(vec![
                id.into(),
                seqfeature_id.into(),
                term_id.into(),
                start.into(),
                end.into(),
                strand.into(),
                rank.into(),
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_dbxref (1:1 with sg_reference via reference.dbxref_id) ---------------------
    {
        let mut t = Table::new(
            TableSchema::new(
                "sg_dbxref",
                vec![
                    pk("id"),
                    col("dbname", DataType::Text),
                    col("accession", DataType::Text),
                    col("version", DataType::Integer),
                ],
            )
            .or_abort("static build"),
        );
        for (i, &id) in dbxref_ids.iter().enumerate() {
            let is_pdb = rng.gen_bool(cfg.pdb_link_fraction);
            let (dbname, accession) = if is_pdb {
                (
                    "PDB".to_string(),
                    ValuePools::pdb_code(rng.gen_range(0..n_bioentry)),
                )
            } else {
                (
                    "GO".to_string(),
                    ValuePools::term_identifier(rng.gen_range(0..50_000)),
                )
            };
            let version = small_int(&mut rng, i, 1, 3);
            t.insert(vec![
                id.into(),
                dbname.into(),
                accession.into(),
                version.into(),
            ])
            .or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_bioentry_dbxref ---------------------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_bioentry_dbxref",
            vec![
                col("bioentry_id", DataType::Integer).not_null(),
                col("dbxref_id", DataType::Integer).not_null(),
                col("rank", DataType::Integer),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("bioentry_id", "sg_bioentry", "id")
            .or_abort("foreign key");
        schema
            .add_foreign_key("dbxref_id", "sg_dbxref", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        for i in 0..n_bioentry {
            let bioentry_id = pick(&mut rng, &bioentry_ids);
            let dbxref_id = pick(&mut rng, &dbxref_ids);
            let rank = small_int(&mut rng, i, 1, 3);
            t.insert(vec![bioentry_id.into(), dbxref_id.into(), rank.into()])
                .or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_reference (dbxref_id is a covering unique FK: 1:1 with sg_dbxref) -------------
    {
        let mut schema = TableSchema::new(
            "sg_reference",
            vec![
                pk("id"),
                col("dbxref_id", DataType::Integer).unique(),
                col("location", DataType::Text),
                col("title", DataType::Text),
                col("authors", DataType::Text),
                col("crc", DataType::Text).not_null().unique(),
                col("pubmed_id", DataType::Integer).unique(),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("dbxref_id", "sg_dbxref", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        let mut shuffled = dbxref_ids.clone();
        shuffled.shuffle(&mut rng);
        for (i, &id) in reference_ids.iter().enumerate() {
            let mut pools = ValuePools::new(&mut rng);
            let location = pools.text(2);
            let title = pools.text(7);
            let authors = pools.authors();
            let crc = pools.crc(i);
            t.insert(vec![
                id.into(),
                shuffled[i].into(),
                location.into(),
                title.into(),
                authors.into(),
                crc.into(),
                (BASE_PUBMED + i as i64).into(),
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_bioentry_reference --------------------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_bioentry_reference",
            vec![
                col("bioentry_id", DataType::Integer).not_null(),
                col("reference_id", DataType::Integer).not_null(),
                col("start_pos", DataType::Integer),
                col("end_pos", DataType::Integer),
                col("rank", DataType::Integer),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("bioentry_id", "sg_bioentry", "id")
            .or_abort("foreign key");
        schema
            .add_foreign_key("reference_id", "sg_reference", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        for i in 0..n_bioentry {
            let bioentry_id = pick(&mut rng, &bioentry_ids);
            let reference_id = pick(&mut rng, &reference_ids);
            let start = small_int(&mut rng, i, 1, 900);
            let end = start + rng.gen_range(1..100i64);
            let rank = small_int(&mut rng, i, 1, 3);
            t.insert(vec![
                bioentry_id.into(),
                reference_id.into(),
                start.into(),
                end.into(),
                rank.into(),
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- sg_comment ---------------------------------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "sg_comment",
            vec![
                pk("id"),
                col("bioentry_id", DataType::Integer).not_null(),
                col("comment_text", DataType::Text),
                col("rank", DataType::Integer),
            ],
        )
        .or_abort("static build");
        schema
            .add_foreign_key("bioentry_id", "sg_bioentry", "id")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        let comment_ids = ids(BASE_LOCATION + 5_000_000, (n_bioentry / 2).max(2));
        for (i, &id) in comment_ids.iter().enumerate() {
            let bioentry_id = pick(&mut rng, &bioentry_ids);
            let rank = small_int(&mut rng, i, 1, 3);
            let mut pools = ValuePools::new(&mut rng);
            let text = pools.text(10);
            t.insert(vec![
                id.into(),
                bioentry_id.into(),
                text.into(),
                rank.into(),
            ])
            .or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    db.validate_foreign_keys()
        .or_abort("generator declares valid FKs");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let db = generate_uniprot(&BiosqlConfig::tiny());
        assert_eq!(db.table_count(), 16);
        assert_eq!(db.attribute_count(), 82);
        assert_eq!(db.gold_foreign_keys().len(), 21);
        assert!(db.table("sg_term_path").unwrap().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_uniprot(&BiosqlConfig::tiny());
        let b = generate_uniprot(&BiosqlConfig::tiny());
        for t in a.tables() {
            let tb = b.table(t.name()).unwrap();
            assert_eq!(t.row_count(), tb.row_count(), "{}", t.name());
            if t.row_count() > 0 {
                assert_eq!(t.row(0), tb.row(0), "{}", t.name());
            }
        }
        let c = generate_uniprot(&BiosqlConfig {
            seed: 99,
            ..BiosqlConfig::tiny()
        });
        assert_ne!(
            a.table("sg_bioentry").unwrap().row(0),
            c.table("sg_bioentry").unwrap().row(0),
            "different seeds give different data"
        );
    }

    #[test]
    fn foreign_keys_hold_in_the_data() {
        let db = generate_uniprot(&BiosqlConfig::tiny());
        for (dep, refd) in db.gold_foreign_keys() {
            let dep_col = db.column(&dep).unwrap();
            let ref_col = db.column(&refd).unwrap();
            let ref_set: std::collections::HashSet<Vec<u8>> = ref_col
                .iter()
                .filter(|v| !v.is_null())
                .map(Value::canonical_bytes)
                .collect();
            for v in dep_col.iter().filter(|v| !v.is_null()) {
                assert!(
                    ref_set.contains(&v.canonical_bytes()),
                    "FK violated: {dep} ⊆ {refd} missing {v}"
                );
            }
        }
    }

    #[test]
    fn biosequence_is_one_to_one_with_bioentry() {
        let db = generate_uniprot(&BiosqlConfig::tiny());
        let bioentry = db.table("sg_bioentry").unwrap();
        let bioseq = db.table("sg_biosequence").unwrap();
        assert_eq!(bioentry.row_count(), bioseq.row_count());
    }

    #[test]
    fn scaling_respects_config() {
        let small = generate_uniprot(&BiosqlConfig {
            bioentries: 50,
            ..Default::default()
        });
        let large = generate_uniprot(&BiosqlConfig {
            bioentries: 200,
            ..Default::default()
        });
        assert!(large.total_rows() > small.total_rows() * 2);
    }

    #[test]
    fn empty_tables_can_be_excluded() {
        let cfg = BiosqlConfig {
            include_empty_tables: false,
            ..BiosqlConfig::tiny()
        };
        let db = generate_uniprot(&cfg);
        assert_eq!(db.table_count(), 15);
        assert_eq!(db.gold_foreign_keys().len(), 19);
    }
}
