//! PDB-chain-shaped generator with a genuine **composite** foreign key —
//! the evaluation target of the n-ary discovery pipeline.
//!
//! Real structural-biology schemas key chain-level data by *(entry, chain)*
//! pairs whose components are individually non-unique; this generator
//! reproduces that shape at configurable scale:
//!
//! * `structure(pdb_code¹, resolution, title)` — one row per entry;
//! * `chain(pdb_code → structure, chain_id, length)` — one row per chain,
//!   jointly keyed by `(pdb_code, chain_id)` with both columns repeating
//!   individually;
//! * `contact(pdb_code, chain_id, distance)` — the **gold composite FK**
//!   `contact.(pdb_code, chain_id) ⊆ chain.(pdb_code, chain_id)`, drawn
//!   from a strict subset of the chain pairs so no reverse inclusion
//!   appears;
//! * `crystal(pdb_code, chain_id, quality)` — the negative control: both
//!   unary projections hold (every code and every chain letter exists in
//!   `chain`), but one poisoned row pairs a single-chain structure with a
//!   chain letter it does not have, so the *composite* candidate is
//!   refuted only by actually validating tuples. A levelwise run that
//!   skipped validation (or validated concatenations instead of tuples)
//!   would report it satisfied.
//!
//! Every other column lives in its own value space (disjoint numeric
//! ranges, format-distinct strings), so the expected arity-2 IND set is
//! exactly the declared composite FK.

use crate::OrAbort;
use ind_storage::{ColumnSchema, DataType, Database, Table, TableSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the chains generator.
#[derive(Debug, Clone)]
pub struct ChainsConfig {
    /// Number of `structure` rows; chains, contacts, and crystals scale
    /// from it.
    pub structures: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChainsConfig {
    fn default() -> Self {
        ChainsConfig {
            structures: 120,
            seed: 42,
        }
    }
}

impl ChainsConfig {
    /// A fast configuration for unit tests.
    pub fn tiny() -> Self {
        ChainsConfig {
            structures: 24,
            ..Default::default()
        }
    }
}

const CHAIN_LETTERS: [&str; 4] = ["A", "B", "C", "D"];

fn code(i: usize) -> String {
    format!("P{i:04}")
}

/// Generates the chains database.
pub fn generate_chains(cfg: &ChainsConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.structures.max(4);
    let mut db = Database::new("chains");

    // structure: one row per entry; resolution repeats (non-unique),
    // titles are format-distinct text.
    let mut structure = Table::new(
        TableSchema::new(
            "structure",
            vec![
                ColumnSchema::new("pdb_code", DataType::Text)
                    .not_null()
                    .unique(),
                ColumnSchema::new("resolution", DataType::Float),
                ColumnSchema::new("title", DataType::Text),
            ],
        )
        .or_abort("structure schema"),
    );
    for i in 0..n {
        structure
            .insert(vec![
                code(i).into(),
                (1.0 + f64::from(i as u32 % 30) * 0.1).into(),
                format!("title-{i:05}").into(),
            ])
            .or_abort("structure row");
    }

    // chain: (pdb_code, chain_id) pairs, distinct by construction, both
    // columns individually repeating. Structures 0 and 1 are pinned so the
    // poisoned crystal row below is *guaranteed* absent from the pair set:
    // structure 0 has exactly chain A, structure 1 has chains A and B.
    let mut chain_schema = TableSchema::new(
        "chain",
        vec![
            ColumnSchema::new("pdb_code", DataType::Text).not_null(),
            ColumnSchema::new("chain_id", DataType::Text).not_null(),
            ColumnSchema::new("length", DataType::Integer),
        ],
    )
    .or_abort("chain schema");
    chain_schema
        .add_foreign_key("pdb_code", "structure", "pdb_code")
        .or_abort("chain fk");
    let mut chain = Table::new(chain_schema);
    let mut pairs: Vec<(String, String)> = Vec::new();
    for i in 0..n {
        let chains = match i {
            0 => 1,
            1 => 2,
            _ => rng.gen_range(1..=CHAIN_LETTERS.len()),
        };
        for letter in &CHAIN_LETTERS[..chains] {
            pairs.push((code(i), (*letter).to_string()));
        }
    }
    for (pdb, letter) in &pairs {
        chain
            .insert(vec![
                pdb.clone().into(),
                letter.clone().into(),
                i64::from(rng.gen_range(100u32..500)).into(),
            ])
            .or_abort("chain row");
    }

    // contact: pairs drawn from a strict subset of the chain pairs (the
    // last pair is withheld), so contact ⊆ chain holds while chain ⊆
    // contact does not.
    let mut contact_schema = TableSchema::new(
        "contact",
        vec![
            ColumnSchema::new("pdb_code", DataType::Text).not_null(),
            ColumnSchema::new("chain_id", DataType::Text).not_null(),
            ColumnSchema::new("distance", DataType::Float),
        ],
    )
    .or_abort("contact schema");
    contact_schema
        .add_composite_foreign_key(["pdb_code", "chain_id"], "chain", ["pdb_code", "chain_id"])
        .or_abort("contact composite fk");
    let mut contact = Table::new(contact_schema);
    let pool = &pairs[..pairs.len() - 1];
    let contact_rows = n * 6;
    for i in 0..contact_rows {
        // Cycle through the pool first so its coverage is exact, then
        // random draws add realistic skew.
        let (pdb, letter) = if i < pool.len() {
            &pool[i]
        } else {
            &pool[rng.gen_range(0..pool.len())]
        };
        contact
            .insert(vec![
                pdb.clone().into(),
                letter.clone().into(),
                (100.0 + f64::from(i as u32 % 40) * 0.25).into(),
            ])
            .or_abort("contact row");
    }

    // crystal: valid chain pairs plus the poisoned (structure-0, "B") row —
    // both components exist in `chain`, the pair does not.
    let mut crystal = Table::new(
        TableSchema::new(
            "crystal",
            vec![
                ColumnSchema::new("pdb_code", DataType::Text).not_null(),
                ColumnSchema::new("chain_id", DataType::Text).not_null(),
                ColumnSchema::new("quality", DataType::Integer),
            ],
        )
        .or_abort("crystal schema"),
    );
    let mut crystal_pairs: Vec<(String, String)> = vec![(code(0), "B".to_string())];
    for _ in 0..7 {
        crystal_pairs.push(pool[rng.gen_range(0..pool.len())].clone());
    }
    for (i, (pdb, letter)) in crystal_pairs.iter().enumerate() {
        crystal
            .insert(vec![
                pdb.clone().into(),
                letter.clone().into(),
                (100_000 + i as i64).into(),
            ])
            .or_abort("crystal row");
    }

    db.add_table(structure).or_abort("structure");
    db.add_table(chain).or_abort("chain");
    db.add_table(contact).or_abort("contact");
    db.add_table(crystal).or_abort("crystal");
    db.validate_foreign_keys().or_abort("declared keys resolve");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_storage::{QualifiedName, Value};
    use std::collections::HashSet;

    fn pair_set(db: &Database, table: &str) -> HashSet<(String, String)> {
        let codes = db
            .column(&QualifiedName::new(table, "pdb_code"))
            .unwrap()
            .iter()
            .map(Value::to_string);
        let chains = db
            .column(&QualifiedName::new(table, "chain_id"))
            .unwrap()
            .iter()
            .map(Value::to_string);
        codes.zip(chains).collect()
    }

    #[test]
    fn composite_fk_holds_and_is_declared() {
        let db = generate_chains(&ChainsConfig::tiny());
        let chain = pair_set(&db, "chain");
        let contact = pair_set(&db, "contact");
        assert!(contact.is_subset(&chain), "gold composite FK must hold");
        assert!(
            contact.len() < chain.len(),
            "no reverse inclusion: contact must not cover every chain pair"
        );
        let cfks = db.gold_composite_foreign_keys();
        assert_eq!(cfks.len(), 1);
        assert_eq!(cfks[0].0[0].to_string(), "contact.pdb_code");
        assert_eq!(cfks[0].1[1].to_string(), "chain.chain_id");
    }

    #[test]
    fn crystal_projections_hold_but_the_pair_does_not() {
        let db = generate_chains(&ChainsConfig::tiny());
        let chain = pair_set(&db, "chain");
        let crystal = pair_set(&db, "crystal");
        assert!(!crystal.is_subset(&chain), "poisoned row must be present");
        let chain_codes: HashSet<String> = chain.iter().map(|(c, _)| c.clone()).collect();
        let chain_letters: HashSet<String> = chain.iter().map(|(_, l)| l.clone()).collect();
        for (c, l) in &crystal {
            assert!(chain_codes.contains(c), "unary projection on pdb_code");
            assert!(chain_letters.contains(l), "unary projection on chain_id");
        }
    }

    #[test]
    fn generator_is_deterministic_and_scales() {
        let a = generate_chains(&ChainsConfig::tiny());
        let b = generate_chains(&ChainsConfig::tiny());
        assert_eq!(
            a.table("chain").unwrap().row(3),
            b.table("chain").unwrap().row(3)
        );
        let big = generate_chains(&ChainsConfig {
            structures: 60,
            ..Default::default()
        });
        assert!(big.total_rows() > a.total_rows());
        assert_eq!(big.table_count(), 4);
    }
}
