//! PDB/OpenMMS-shaped database generator (Sec. 1.4).
//!
//! The real dataset: PDB imported through the OpenMMS schema — "1,711
//! attributes in 115 non-empty tables, with a total size of 21 GB"; the
//! paper's experiments use fractions covering 541 attributes in 39 tables
//! (2.6 GB) and 2,560 attributes in 167 tables (2.7 GB).
//!
//! This generator reproduces the properties that drive the paper's
//! findings:
//!
//! * the schema "does not define any foreign keys" — the gold standard is
//!   empty;
//! * it "often utilizes surrogate IDs, i.e., semantic-free integers whose
//!   ranges all begin at 1, as primary keys … There are INDs between almost
//!   all of these ID attributes" — dense `1..n` id and ordinal columns nest
//!   by size, producing the tens of thousands of satisfied INDs the paper
//!   reports as foreign-key false positives;
//! * three relations (`struct`, `exptl`, `struct_keywords`) carry set-equal
//!   unique `entry_id` columns of PDB codes, producing the three-way tie in
//!   the primary-relation heuristic (Sec. 5), with `struct` the correct
//!   answer;
//! * a configurable number of uniform-length "code" columns qualify as
//!   strict accession-number candidates (paper: 9), plus borderline columns
//!   that only qualify under the softened 99.98 % rule (paper: 19 total).

use crate::pools::ValuePools;
use crate::OrAbort;
use ind_storage::{ColumnSchema, DataType, Database, Table, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the OpenMMS-shaped generator.
#[derive(Debug, Clone)]
pub struct OpenMmsConfig {
    /// Number of tables (including the three entry tables).
    pub tables: usize,
    /// PDB entries (rows of `struct`; other tables reference its codes).
    pub entries: usize,
    /// Base row count for payload tables (individual tables vary around it).
    pub base_rows: usize,
    /// Payload columns per table beyond `id` and `entry_id`.
    pub payload_columns: usize,
    /// Tables (beyond the entry tables) that carry a strict accession-like
    /// code column.
    pub strict_code_tables: usize,
    /// Tables that carry a borderline code column (qualifies only under the
    /// softened rule).
    pub soft_code_tables: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OpenMmsConfig {
    fn default() -> Self {
        OpenMmsConfig::small_fraction()
    }
}

impl OpenMmsConfig {
    /// The paper's 2.6 GB fraction: 39 tables, ~541 attributes.
    /// 3 entry tables (11 attrs) + 36 payload tables carrying
    /// id + 14 payload columns = 551 attributes.
    pub fn small_fraction() -> Self {
        OpenMmsConfig {
            tables: 39,
            entries: 400,
            base_rows: 300,
            payload_columns: 14,
            strict_code_tables: 6,
            soft_code_tables: 10,
            seed: 42,
        }
    }

    /// The paper's 2.7 GB fraction: 167 tables, ~2,560 attributes. Heavy;
    /// used by the scalability experiments only.
    pub fn large_fraction() -> Self {
        OpenMmsConfig {
            tables: 167,
            entries: 500,
            base_rows: 200,
            payload_columns: 15,
            strict_code_tables: 6,
            soft_code_tables: 10,
            seed: 42,
        }
    }

    /// A fast configuration for unit tests.
    pub fn tiny() -> Self {
        OpenMmsConfig {
            tables: 10,
            entries: 40,
            base_rows: 50,
            payload_columns: 6,
            strict_code_tables: 2,
            soft_code_tables: 2,
            seed: 42,
        }
    }
}

const TABLE_STEMS: &[&str] = &[
    "atom_site",
    "entity",
    "chem_comp",
    "cell",
    "symmetry",
    "refine",
    "entity_poly",
    "struct_conf",
    "struct_sheet",
    "database_pdb",
    "citation",
    "atom_type",
    "chem_bond",
    "struct_asym",
    "entity_src",
    "diffrn",
    "reflns",
    "software",
];

fn payload_table_name(i: usize) -> String {
    format!("{}_{:02}", TABLE_STEMS[i % TABLE_STEMS.len()], i)
}

/// Generates the PDB-shaped database.
pub fn generate_pdb(cfg: &OpenMmsConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new("pdb");

    let entries = cfg.entries.max(10);
    let codes: Vec<String> = (0..entries).map(ValuePools::pdb_code).collect();

    // -- struct: the primary relation -----------------------------------------
    {
        let mut t = Table::new(
            TableSchema::new(
                "struct",
                vec![
                    ColumnSchema::new("entry_id", DataType::Text)
                        .not_null()
                        .unique(),
                    ColumnSchema::new("title", DataType::Text),
                    ColumnSchema::new("deposition_date", DataType::Text),
                    ColumnSchema::new("resolution", DataType::Float),
                    ColumnSchema::new("exp_method", DataType::Text),
                ],
            )
            .or_abort("table schema"),
        );
        let methods = ["X-RAY DIFFRACTION", "NMR", "ELECTRON MICROSCOPY"];
        for code in &codes {
            let method = methods[rng.gen_range(0..methods.len())];
            let resolution = rng.gen_range(0.9..4.5);
            let mut pools = ValuePools::new(&mut rng);
            let title = pools.text(8);
            let date = pools.date();
            t.insert(vec![
                code.as_str().into(),
                title.into(),
                date.into(),
                resolution.into(),
                method.into(),
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- exptl and struct_keywords: set-equal entry_id columns ------------------
    for (name, extra1, extra2) in [
        ("exptl", "method", "crystals_number"),
        ("struct_keywords", "pdbx_keywords", "keyword_count"),
    ] {
        let mut t = Table::new(
            TableSchema::new(
                name,
                vec![
                    ColumnSchema::new("entry_id", DataType::Text)
                        .not_null()
                        .unique(),
                    ColumnSchema::new(extra1, DataType::Text),
                    ColumnSchema::new(extra2, DataType::Integer),
                ],
            )
            .or_abort("table schema"),
        );
        for (i, code) in codes.iter().enumerate() {
            let n = if i < 2 {
                i as i64 + 1
            } else {
                rng.gen_range(1..5i64)
            };
            let mut pools = ValuePools::new(&mut rng);
            let word = pools.text(2);
            t.insert(vec![code.as_str().into(), word.into(), n.into()])
                .or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- payload tables: the surrogate-id false-positive machine -----------------
    // Real OpenMMS payload tables reference entries through integer
    // surrogates, not the textual entry code, so payload tables carry no
    // `entry_id` column — exactly why the schema exposes no usable FK
    // structure and why the dense id columns dominate the IND count.
    let payload_tables = cfg.tables.saturating_sub(3);
    for ti in 0..payload_tables {
        let name = payload_table_name(ti);
        // Dense row counts varying per table so the 1..n ranges nest.
        let rows = (cfg.base_rows / 2 + (ti * 37) % cfg.base_rows).max(10);

        let mut columns = vec![
            // Surrogate primary key: dense integers starting at 1.
            ColumnSchema::new("id", DataType::Integer)
                .not_null()
                .unique(),
        ];
        let strict_code = ti < cfg.strict_code_tables;
        let soft_code = !strict_code && ti < cfg.strict_code_tables + cfg.soft_code_tables;
        let code_table = strict_code || soft_code;
        for ci in 0..cfg.payload_columns {
            let (name, dt) = match ci {
                0 => ("seq_num".to_string(), DataType::Integer), // dense unique
                1 => ("ordinal".to_string(), DataType::Integer), // dense dup
                3 if strict_code => ("comp_code".to_string(), DataType::Text),
                3 if soft_code => ("soft_code".to_string(), DataType::Text),
                3 => ("label_3".to_string(), DataType::Text),
                4 if !code_table => ("part_num".to_string(), DataType::Integer), // dense unique
                _ => match ci % 7 {
                    2 => (format!("value_{ci}"), DataType::Float),
                    4 => (format!("count_{ci}"), DataType::Integer),
                    5 => (format!("label_{ci}"), DataType::Text),
                    _ => (format!("detail_{ci}"), DataType::Text),
                },
            };
            let schema = if ci == 0 || (ci == 4 && !code_table) {
                ColumnSchema::new(name, dt).unique()
            } else {
                ColumnSchema::new(name, dt)
            };
            columns.push(schema);
        }
        let mut t = Table::new(TableSchema::new(&name, columns).or_abort("table schema"));

        // Code-bearing tables model dictionary tables whose ids come from a
        // different sequence range; they attract no inbound surrogate INDs,
        // so the primary-relation heuristic ranks them by genuine
        // references only (reproducing the paper's three-way entry-table
        // tie). The remaining tables all use 1-based dense ids — the
        // false-positive machine.
        let id_offset: i64 = if strict_code || soft_code {
            20_000 + ti as i64 * 1_000
        } else {
            0
        };
        for row in 0..rows {
            let mut values: Vec<Value> = Vec::with_capacity(t.schema().arity());
            values.push((id_offset + row as i64 + 1).into()); // id
            for ci in 0..cfg.payload_columns {
                let v: Value = match ci {
                    // A second dense unique surrogate (offset in code
                    // tables, 1-based elsewhere).
                    0 => (id_offset * 2 + row as i64 + 1).into(),
                    // Dense duplicated ordinal 1..rows/2 — guaranteed to
                    // contain duplicates at any scale, and sinks into every
                    // dense unique column at least half this table's size.
                    1 => ((row % (rows / 2).max(1) + 1) as i64).into(),
                    3 if strict_code => {
                        // Duplicated so the column is never a referenced
                        // attribute, yet uniformly formatted so it passes
                        // the strict accession rules.
                        let mut pools = ValuePools::new(&mut rng);
                        pools.chem_code(row % (rows / 2).max(1)).into()
                    }
                    3 if soft_code => {
                        // One short outlier value per column: fails the
                        // strict rules, passes the softened rule.
                        if row == 0 {
                            "N/".into()
                        } else {
                            let mut pools = ValuePools::new(&mut rng);
                            pools.chem_code(row % (rows / 2).max(1)).into()
                        }
                    }
                    3 => {
                        let mut pools = ValuePools::new(&mut rng);
                        pools.vocab().into()
                    }
                    // A third dense unique surrogate in non-code tables.
                    4 if !code_table => (row as i64 + 1).into(),
                    _ => match ci % 7 {
                        // Quantized measurements: duplicates appear, so the
                        // column is never an accidental unique reference.
                        2 => (f64::from(rng.gen_range(0..400i32)) * 0.25).into(),
                        4 => ((row % 7) as i64).into(),
                        5 => {
                            let mut pools = ValuePools::new(&mut rng);
                            pools.vocab().into()
                        }
                        _ => {
                            let mut pools = ValuePools::new(&mut rng);
                            pools.text(3).into()
                        }
                    },
                };
                values.push(v);
            }
            t.insert(values).or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_small_fraction() {
        let cfg = OpenMmsConfig::small_fraction();
        // Count attributes without generating all the rows.
        let attrs = 5 + 3 + 3 + (cfg.tables - 3) * (1 + cfg.payload_columns);
        assert_eq!(cfg.tables, 39);
        assert!(
            (520..=560).contains(&attrs),
            "attribute count {attrs} should approximate the paper's 541"
        );
    }

    #[test]
    fn no_foreign_keys_are_declared() {
        let db = generate_pdb(&OpenMmsConfig::tiny());
        assert!(db.gold_foreign_keys().is_empty());
    }

    #[test]
    fn surrogate_ids_are_dense_from_one() {
        let cfg = OpenMmsConfig::tiny();
        let db = generate_pdb(&cfg);
        // Pick a table beyond the code-bearing ones (those use offset ids).
        let table = db
            .table(&payload_table_name(
                cfg.strict_code_tables + cfg.soft_code_tables,
            ))
            .unwrap();
        let ids: Vec<i64> = table
            .column_by_name("id")
            .unwrap()
            .iter()
            .map(|v| match v {
                Value::Integer(i) => *i,
                other => panic!("non-integer id {other}"),
            })
            .collect();
        assert_eq!(ids[0], 1);
        assert_eq!(ids.len() as i64, *ids.last().unwrap());
    }

    #[test]
    fn entry_tables_share_the_code_set() {
        let db = generate_pdb(&OpenMmsConfig::tiny());
        let collect = |t: &str| -> std::collections::BTreeSet<String> {
            db.table(t)
                .unwrap()
                .column_by_name("entry_id")
                .unwrap()
                .iter()
                .map(Value::to_string)
                .collect()
        };
        let s = collect("struct");
        assert_eq!(s, collect("exptl"));
        assert_eq!(s, collect("struct_keywords"));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_pdb(&OpenMmsConfig::tiny());
        let b = generate_pdb(&OpenMmsConfig::tiny());
        assert_eq!(
            a.table("struct").unwrap().row(5),
            b.table("struct").unwrap().row(5)
        );
    }

    #[test]
    fn row_counts_vary_across_payload_tables() {
        let db = generate_pdb(&OpenMmsConfig::tiny());
        let counts: std::collections::BTreeSet<usize> = (0..7)
            .map(|i| db.table(&payload_table_name(i)).unwrap().row_count())
            .collect();
        assert!(counts.len() > 3, "sizes must differ so id ranges nest");
    }
}
