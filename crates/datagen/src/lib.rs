//! # ind-datagen
//!
//! Seeded synthetic generators reproducing the *shape* of the paper's three
//! test databases (Sec. 1.4): UniProt via BioSQL, SCOP, and PDB via
//! OpenMMS. The generators substitute for the real datasets (667 MB / 17 MB
//! / 21 GB of curated biology) while preserving every property the
//! evaluation depends on: foreign-key structure, value-set inclusions and
//! their transitive closures, surrogate-key pathologies, accession-number
//! formats, and cross-database code pools. See DESIGN.md for the
//! substitution rationale.
//!
//! Beyond the paper's three: [`generate_chains`] is a PDB-chain-shaped
//! schema with a genuine composite `(pdb_code, chain_id)` foreign key —
//! the gold standard the n-ary discovery pipeline evaluates against — and
//! [`generate_wide`] produces few columns with *fat* values, making a
//! small row count exceed any reasonable sort budget (the bigger-than-RAM
//! stressor for the overlapped-I/O disk pipeline).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod biosql;
mod chains;
mod openmms;
mod pools;
mod scop;
mod wide;

pub use biosql::{generate_uniprot, BiosqlConfig};
pub use chains::{generate_chains, ChainsConfig};
pub use openmms::{generate_pdb, OpenMmsConfig};
pub use pools::ValuePools;
pub use scop::{generate_scop, ScopConfig};
pub use wide::{generate_wide, WideConfig};

use ind_storage::Database;

/// Unwrapping policy for generator internals.
///
/// The generators build *static* schemas and rows: every `TableSchema::new`,
/// `insert`, `add_table`, and `add_foreign_key` call operates on data the
/// generator itself just constructed, so a failure is a bug in the
/// generator, not bad input — aborting loudly is the correct response, and
/// threading `Result` through every `generate_*` signature would only blur
/// that line. This extension trait is the one sanctioned escape: call sites
/// say *what* invariant they rely on, and `ind-lint`'s `no_unwrap` rule
/// keeps plain `unwrap()` out of the crate.
pub(crate) trait OrAbort<T> {
    /// Unwraps, panicking with `context` on a generator-internal bug.
    fn or_abort(self, context: &str) -> T;
}

impl<T, E: std::fmt::Debug> OrAbort<T> for Result<T, E> {
    fn or_abort(self, context: &str) -> T {
        match self {
            Ok(value) => value,
            // lint: allow(no_unwrap) — generator-internal invariant; static schemas/rows make errors bugs, and aborting loudly beats threading Result through every generate_* signature
            Err(e) => panic!("datagen invariant violated ({context}): {e:?}"),
        }
    }
}

/// The three databases of the Aladin scenario, generated against a shared
/// PDB-code pool so the inter-source links of Sec. 5 exist in the data.
#[derive(Debug)]
pub struct Universe {
    /// UniProt-shaped database (BioSQL schema, gold-standard FKs).
    pub uniprot: Database,
    /// SCOP-shaped database (links to PDB via `pdb_code`).
    pub scop: Database,
    /// PDB-shaped database (no FKs, surrogate keys).
    pub pdb: Database,
}

/// Configuration for [`generate_universe`].
#[derive(Debug, Clone, Default)]
pub struct UniverseConfig {
    /// UniProt generator settings.
    pub uniprot: BiosqlConfig,
    /// SCOP generator settings.
    pub scop: ScopConfig,
    /// PDB generator settings.
    pub pdb: OpenMmsConfig,
}

impl UniverseConfig {
    /// Fast settings for tests: tiny databases, consistent code pools.
    pub fn tiny() -> Self {
        let pdb = OpenMmsConfig::tiny();
        UniverseConfig {
            uniprot: BiosqlConfig::tiny(),
            scop: ScopConfig {
                pdb_pool: pdb.entries,
                ..ScopConfig::tiny()
            },
            pdb,
        }
    }
}

/// Generates all three databases with aligned PDB-code pools: every
/// `scop_classification.pdb_code` is a valid `struct.entry_id`, and the
/// configured fraction of `sg_dbxref.accession` values are valid codes too
/// (a *partial* inclusion, exercising the partial-IND extension).
pub fn generate_universe(cfg: &UniverseConfig) -> Universe {
    let mut scop_cfg = cfg.scop.clone();
    // The SCOP pool must stay within the PDB entry count for the exact
    // inter-source IND to hold.
    scop_cfg.pdb_pool = scop_cfg.pdb_pool.min(cfg.pdb.entries);
    let mut uniprot_cfg = cfg.uniprot.clone();
    // The BioSQL generator draws its PDB-side dbxref codes from indices
    // below its bioentry count; clamp to the PDB entry count.
    uniprot_cfg.bioentries = uniprot_cfg.bioentries.min(cfg.pdb.entries);
    Universe {
        uniprot: generate_uniprot(&uniprot_cfg),
        scop: generate_scop(&scop_cfg),
        pdb: generate_pdb(&cfg.pdb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_storage::{QualifiedName, Value};

    #[test]
    fn universe_links_scop_to_pdb_exactly() {
        let u = generate_universe(&UniverseConfig::tiny());
        let pdb_codes: std::collections::HashSet<String> = u
            .pdb
            .column(&QualifiedName::new("struct", "entry_id"))
            .unwrap()
            .iter()
            .map(Value::to_string)
            .collect();
        for v in u
            .scop
            .column(&QualifiedName::new("scop_classification", "pdb_code"))
            .unwrap()
        {
            assert!(pdb_codes.contains(&v.to_string()), "{v} not a PDB code");
        }
    }

    #[test]
    fn universe_links_uniprot_to_pdb_partially() {
        let u = generate_universe(&UniverseConfig::tiny());
        let pdb_codes: std::collections::HashSet<String> = u
            .pdb
            .column(&QualifiedName::new("struct", "entry_id"))
            .unwrap()
            .iter()
            .map(Value::to_string)
            .collect();
        let accessions = u
            .uniprot
            .column(&QualifiedName::new("sg_dbxref", "accession"))
            .unwrap();
        let matched = accessions
            .iter()
            .filter(|v| pdb_codes.contains(&v.to_string()))
            .count();
        assert!(matched > 0, "some dbxrefs must be PDB links");
        assert!(
            matched < accessions.len(),
            "the link must be partial, not exact"
        );
    }

    #[test]
    fn universe_is_deterministic() {
        let a = generate_universe(&UniverseConfig::tiny());
        let b = generate_universe(&UniverseConfig::tiny());
        assert_eq!(
            a.uniprot.table("sg_bioentry").unwrap().row(1),
            b.uniprot.table("sg_bioentry").unwrap().row(1)
        );
        assert_eq!(
            a.pdb.table("struct").unwrap().row(1),
            b.pdb.table("struct").unwrap().row(1)
        );
    }
}
