//! Wide-value generator: few columns, *fat* values — the bigger-than-RAM
//! stressor for the disk pipeline.
//!
//! The biology-shaped generators produce many narrow attributes; this one
//! inverts the shape so a modest row count yields value files far larger
//! than any reasonable sort budget, forcing the export sorter to spill and
//! the discovery cursors to stream:
//!
//! * `blob_store(key¹, payload)` — one row per blob; `payload` is a
//!   distinct `value_bytes`-byte string, so the exported value file weighs
//!   roughly `rows × value_bytes` on its own;
//! * `blob_ref(key, note)` — references a strict subset of the store keys:
//!   the **gold FK** `blob_ref.key ⊆ blob_store.key` with no reverse
//!   inclusion.
//!
//! Payloads live in their own value space (a `W:`-prefixed format no key
//! shares), so the expected unary IND set is exactly the declared FK.

use crate::OrAbort;
use ind_storage::{ColumnSchema, DataType, Database, Table, TableSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the wide-value generator.
#[derive(Debug, Clone)]
pub struct WideConfig {
    /// Number of `blob_store` rows (`blob_ref` scales from it).
    pub rows: usize,
    /// Bytes per `payload` value. The exported payload file weighs about
    /// `rows × value_bytes`; pick the product larger than the sort budget
    /// to force spills.
    pub value_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WideConfig {
    fn default() -> Self {
        WideConfig {
            rows: 400,
            value_bytes: 4096,
            seed: 42,
        }
    }
}

impl WideConfig {
    /// A fast configuration for unit tests.
    pub fn tiny() -> Self {
        WideConfig {
            rows: 32,
            value_bytes: 64,
            ..Default::default()
        }
    }
}

fn key(i: usize) -> String {
    format!("K{i:08}")
}

/// A distinct `value_bytes`-byte payload: a row-unique prefix followed by
/// seeded random lowercase filler (incompressible enough that the on-disk
/// size is honest).
fn payload(i: usize, value_bytes: usize, rng: &mut StdRng) -> String {
    let mut out = String::with_capacity(value_bytes.max(16));
    out.push_str(&format!("W:{i:08}:"));
    while out.len() < value_bytes {
        out.push(char::from(rng.gen_range(b'a'..=b'z')));
    }
    out
}

/// Generates the wide-value database.
pub fn generate_wide(cfg: &WideConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rows = cfg.rows.max(4);
    let mut db = Database::new("wide");

    let mut store = Table::new(
        TableSchema::new(
            "blob_store",
            vec![
                ColumnSchema::new("key", DataType::Text).not_null().unique(),
                ColumnSchema::new("payload", DataType::Text).not_null(),
            ],
        )
        .or_abort("blob_store schema"),
    );
    for i in 0..rows {
        store
            .insert(vec![
                key(i).into(),
                payload(i, cfg.value_bytes, &mut rng).into(),
            ])
            .or_abort("blob_store row");
    }

    // blob_ref draws from a strict subset of the store keys (the last key
    // is withheld), so the FK holds while no reverse inclusion appears.
    let mut ref_schema = TableSchema::new(
        "blob_ref",
        vec![
            ColumnSchema::new("key", DataType::Text).not_null(),
            ColumnSchema::new("note", DataType::Integer),
        ],
    )
    .or_abort("blob_ref schema");
    ref_schema
        .add_foreign_key("key", "blob_store", "key")
        .or_abort("blob_ref fk");
    let mut blob_ref = Table::new(ref_schema);
    let pool = rows - 1;
    for i in 0..rows * 2 {
        // Cycle through the pool first so its coverage is exact, then
        // random draws add skew.
        let k = if i < pool { i } else { rng.gen_range(0..pool) };
        blob_ref
            .insert(vec![key(k).into(), (1_000_000 + i as i64).into()])
            .or_abort("blob_ref row");
    }

    db.add_table(store).or_abort("blob_store");
    db.add_table(blob_ref).or_abort("blob_ref");
    db.validate_foreign_keys().or_abort("declared keys resolve");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_storage::{QualifiedName, Value};
    use std::collections::HashSet;

    fn column_set(db: &Database, table: &str, column: &str) -> HashSet<String> {
        db.column(&QualifiedName::new(table, column))
            .unwrap()
            .iter()
            .map(Value::to_string)
            .collect()
    }

    #[test]
    fn fk_holds_with_no_reverse_inclusion() {
        let db = generate_wide(&WideConfig::tiny());
        let store = column_set(&db, "blob_store", "key");
        let refs = column_set(&db, "blob_ref", "key");
        assert!(refs.is_subset(&store), "gold FK must hold");
        assert!(refs.len() < store.len(), "no reverse inclusion");
        assert_eq!(db.gold_foreign_keys().len(), 1);
    }

    #[test]
    fn payloads_are_wide_distinct_and_disjoint_from_keys() {
        let cfg = WideConfig::tiny();
        let db = generate_wide(&cfg);
        let payloads = column_set(&db, "blob_store", "payload");
        let keys = column_set(&db, "blob_store", "key");
        assert_eq!(payloads.len(), keys.len(), "payloads must be distinct");
        assert!(payloads.iter().all(|p| p.len() >= cfg.value_bytes));
        assert!(payloads.iter().all(|p| p.starts_with("W:")));
        assert!(payloads.is_disjoint(&keys));
    }

    #[test]
    fn generator_is_deterministic_and_scales_by_bytes() {
        let a = generate_wide(&WideConfig::tiny());
        let b = generate_wide(&WideConfig::tiny());
        assert_eq!(
            a.table("blob_store").unwrap().row(3),
            b.table("blob_store").unwrap().row(3)
        );
        let fat = generate_wide(&WideConfig {
            value_bytes: 256,
            ..WideConfig::tiny()
        });
        let fat_payload = fat
            .column(&QualifiedName::new("blob_store", "payload"))
            .unwrap();
        assert!(fat_payload.iter().all(|v| v.to_string().len() >= 256));
    }
}
