//! Seeded value generators for life-science-shaped data.
//!
//! Every generator is deterministic given its RNG. Formats are designed so
//! that the accession-number heuristics of Sec. 5 classify columns exactly
//! as the paper reports: accession-style formats are uniform-length and
//! contain letters; free-text formats vary in length by more than 20 %;
//! numeric formats contain no letters.

use rand::rngs::StdRng;
use rand::Rng;

const WORDS: &[&str] = &[
    "kinase",
    "binding",
    "transport",
    "membrane",
    "receptor",
    "domain",
    "protein",
    "synthase",
    "regulator",
    "transferase",
    "hydrolase",
    "ribosomal",
    "mitochondrial",
    "nuclear",
    "cytoplasmic",
    "putative",
    "conserved",
    "hypothetical",
    "transcription",
    "signal",
];

const SPECIES: &[&str] = &[
    "HUMAN", "MOUSE", "YEAST", "ECOLI", "DROME", "ARATH", "RAT", "BOVIN", "CHICK", "XENLA",
];

/// A bundle of format-specific generators sharing one RNG.
pub struct ValuePools<'r> {
    rng: &'r mut StdRng,
}

impl<'r> ValuePools<'r> {
    /// Wraps an RNG.
    pub fn new(rng: &'r mut StdRng) -> Self {
        ValuePools { rng }
    }

    /// Direct access to the RNG for ad-hoc draws.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// UniProt-style accession: letter + 5 digits, e.g. `P04637`. Uniform
    /// length 6, contains a letter → accession-number candidate. `i` makes
    /// the value unique.
    pub fn uniprot_accession(&mut self, i: usize) -> String {
        let letter = b'O' + (self.rng.gen_range(0..4u8) % 4); // O, P, Q, R
        format!("{}{:05}", letter as char, i % 100_000)
    }

    /// PDB entry code: digit + 3 lowercase alphanumerics, e.g. `1abc`.
    /// Uniform length 4 with a guaranteed letter → accession-number
    /// candidate. Deterministic in `i` so independently generated databases
    /// share the same pool.
    pub fn pdb_code(i: usize) -> String {
        let digit = (1 + i % 9) as u8 + b'0';
        let mut rest = [0u8; 3];
        let mut k = i / 9;
        for slot in &mut rest {
            *slot = b'a' + (k % 26) as u8;
            k /= 26;
        }
        format!(
            "{}{}{}{}",
            digit as char, rest[0] as char, rest[1] as char, rest[2] as char
        )
    }

    /// CRC-style checksum: letter + 11 uppercase hex chars, uniform length
    /// 12 → accession-number candidate.
    pub fn crc(&mut self, i: usize) -> String {
        let letter = [b'A', b'B', b'C', b'D', b'E', b'F'][self.rng.gen_range(0..6)];
        format!("{}{:011X}", letter as char, i)
    }

    /// Ontology name: `ONTOLOGY_NN`, uniform length with letters →
    /// accession-number candidate (the paper's `sg_ontology.name`).
    pub fn ontology_name(i: usize) -> String {
        format!("ONTOLOGY_{:02}", i % 100)
    }

    /// Chemical-component-style code: 5 uppercase alphanumerics with a
    /// guaranteed leading letter, uniform length → accession-number
    /// candidate.
    pub fn chem_code(&mut self, i: usize) -> String {
        let letter = b'A' + self.rng.gen_range(0..26u8);
        format!("{}{:04}", letter as char, i % 10_000)
    }

    /// Entry name like `KIN1_HUMAN`: variable length (word lengths differ by
    /// far more than 20 %) → *not* an accession candidate.
    pub fn entry_name(&mut self, i: usize) -> String {
        let word = WORDS[self.rng.gen_range(0..WORDS.len())];
        let species = SPECIES[self.rng.gen_range(0..SPECIES.len())];
        format!("{}{}_{}", word.to_uppercase(), i, species)
    }

    /// GO-style term identifier with unpadded number: `GO:1`…`GO:99999`.
    /// Length varies with the number of digits → not an accession candidate.
    pub fn term_identifier(i: usize) -> String {
        format!("GO:{}", i + 1)
    }

    /// Free text of `words` words; highly variable length.
    pub fn text(&mut self, words: usize) -> String {
        let mut out = String::new();
        for w in 0..words {
            if w > 0 {
                out.push(' ');
            }
            out.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
        }
        out
    }

    /// Author-list-style text.
    pub fn authors(&mut self) -> String {
        let n = self.rng.gen_range(1..5);
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push_str(", ");
            }
            let idx = self.rng.gen_range(0..WORDS.len());
            out.push_str(&format!(
                "{}{} {}.",
                WORDS[idx][..1].to_uppercase(),
                &WORDS[idx][1..],
                (b'A' + self.rng.gen_range(0..26u8)) as char
            ));
        }
        out
    }

    /// Protein sequence text of the given length (LOB payloads).
    pub fn sequence(&mut self, len: usize) -> String {
        const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
        (0..len)
            .map(|_| AMINO[self.rng.gen_range(0..AMINO.len())] as char)
            .collect()
    }

    /// ISO-style date; digits and dashes only (no letters → never an
    /// accession candidate despite the uniform length).
    pub fn date(&mut self) -> String {
        format!(
            "{:04}-{:02}-{:02}",
            self.rng.gen_range(1990..2006),
            self.rng.gen_range(1..13),
            self.rng.gen_range(1..29)
        )
    }

    /// A word from the controlled vocabulary (variable length).
    pub fn vocab(&mut self) -> String {
        WORDS[self.rng.gen_range(0..WORDS.len())].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// The strict accession-number rules of Sec. 5.
    fn is_accession_like(values: &[String]) -> bool {
        let min_len = values.iter().map(String::len).min().unwrap();
        let max_len = values.iter().map(String::len).max().unwrap();
        values.iter().all(|v| v.len() >= 4)
            && values
                .iter()
                .all(|v| v.chars().any(|c| c.is_ascii_alphabetic()))
            && (max_len - min_len) as f64 <= 0.2 * max_len as f64
    }

    #[test]
    fn accession_formats_qualify() {
        let mut r = rng();
        let mut pools = ValuePools::new(&mut r);
        let accessions: Vec<String> = (0..500).map(|i| pools.uniprot_accession(i)).collect();
        assert!(is_accession_like(&accessions));
        let crcs: Vec<String> = (0..500).map(|i| pools.crc(i)).collect();
        assert!(is_accession_like(&crcs));
        let codes: Vec<String> = (0..500).map(ValuePools::pdb_code).collect();
        assert!(is_accession_like(&codes));
        let names: Vec<String> = (0..8).map(ValuePools::ontology_name).collect();
        assert!(is_accession_like(&names));
        let chems: Vec<String> = (0..200).map(|i| pools.chem_code(i)).collect();
        assert!(is_accession_like(&chems));
    }

    #[test]
    fn non_accession_formats_fail_some_rule() {
        let mut r = rng();
        let mut pools = ValuePools::new(&mut r);
        let names: Vec<String> = (0..500).map(|i| pools.entry_name(i)).collect();
        assert!(!is_accession_like(&names), "entry names vary in length");
        let terms: Vec<String> = (0..500).map(ValuePools::term_identifier).collect();
        assert!(!is_accession_like(&terms), "term ids vary in length");
        let dates: Vec<String> = (0..100).map(|_| pools.date()).collect();
        assert!(!is_accession_like(&dates), "dates contain no letters");
    }

    #[test]
    fn pdb_codes_are_unique_and_deterministic() {
        let codes: Vec<String> = (0..2000).map(ValuePools::pdb_code).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "codes must be injective in i");
        assert_eq!(
            codes,
            (0..2000).map(ValuePools::pdb_code).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniqueness_of_indexed_formats() {
        let mut r = rng();
        let mut pools = ValuePools::new(&mut r);
        let mut crcs: Vec<String> = (0..5000).map(|i| pools.crc(i)).collect();
        crcs.sort();
        crcs.dedup();
        assert_eq!(crcs.len(), 5000);
    }

    #[test]
    fn sequences_have_requested_length() {
        let mut r = rng();
        let mut pools = ValuePools::new(&mut r);
        assert_eq!(pools.sequence(123).len(), 123);
        assert!(pools.sequence(50).chars().all(|c| c.is_ascii_uppercase()));
    }
}
