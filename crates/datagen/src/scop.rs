//! SCOP-shaped database generator (Sec. 1.4).
//!
//! The real dataset: "SCOP is a database of protein classification … 4
//! tables with 22 attributes. The total size of the database is 17 MB."
//! The generator mirrors the structural classification shape: a node table
//! (every SCOP entity), a 1:1 hierarchy table, a per-domain classification
//! table whose columns point back at node identifiers, and a comment table.
//! SCOP also carries PDB codes, providing the natural inter-source link to
//! the PDB database (Aladin step 4).

use crate::pools::ValuePools;
use crate::OrAbort;
use ind_storage::{ColumnSchema, DataType, Database, Table, TableSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the SCOP-shaped generator.
#[derive(Debug, Clone)]
pub struct ScopConfig {
    /// Number of classification nodes; other tables scale from it.
    pub nodes: usize,
    /// RNG seed.
    pub seed: u64,
    /// Size of the shared PDB-code pool that `scop_classification.pdb_code`
    /// draws from (must not exceed the PDB generator's entry count for the
    /// inter-source IND to hold).
    pub pdb_pool: usize,
    /// Store PDB codes as `PDB-144f` instead of `144f` — the paper's
    /// concatenated-value example (Sec. 7). The plain inter-source IND then
    /// fails and only the affix-transform search recovers the link.
    pub prefixed_pdb_codes: bool,
}

impl Default for ScopConfig {
    fn default() -> Self {
        ScopConfig {
            nodes: 1500,
            seed: 42,
            pdb_pool: 400,
            prefixed_pdb_codes: false,
        }
    }
}

impl ScopConfig {
    /// A fast configuration for unit tests.
    pub fn tiny() -> Self {
        ScopConfig {
            nodes: 80,
            pdb_pool: 30,
            ..Default::default()
        }
    }
}

const BASE_SUNID: i64 = 100_000;

fn sid(i: usize) -> String {
    // SCOP stable domain identifier, e.g. `d00042a_`: uniform length.
    format!("d{:05}a_", i % 100_000)
}

/// Generates the SCOP-shaped database.
pub fn generate_scop(cfg: &ScopConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new("scop");

    let n = cfg.nodes.max(10);
    let sunids: Vec<i64> = (0..n as i64).map(|i| BASE_SUNID + i).collect();
    let n_domains = (n / 2).max(4);

    // -- scop_node (7 attrs) -------------------------------------------------
    {
        let mut t = Table::new(
            TableSchema::new(
                "scop_node",
                vec![
                    ColumnSchema::new("sunid", DataType::Integer)
                        .not_null()
                        .unique(),
                    ColumnSchema::new("entry_type", DataType::Text),
                    ColumnSchema::new("sccs", DataType::Text),
                    ColumnSchema::new("sid", DataType::Text).unique(),
                    ColumnSchema::new("description", DataType::Text),
                    ColumnSchema::new("release", DataType::Text),
                    ColumnSchema::new("sort_order", DataType::Integer),
                ],
            )
            .or_abort("table schema"),
        );
        let types = ["cl", "cf", "sf", "fa", "dm", "sp", "px"];
        for (i, &sunid) in sunids.iter().enumerate() {
            let entry_type = types[i % types.len()];
            let sccs = format!(
                "{}.{}.{}.{}",
                (b'a' + (i % 7) as u8) as char,
                i % 10,
                i % 8,
                i % 5
            );
            let order = if i < 2 {
                i as i64 + 1
            } else {
                rng.gen_range(1..1000i64)
            };
            let mut pools = ValuePools::new(&mut rng);
            let description = pools.text(4);
            t.insert(vec![
                sunid.into(),
                entry_type.into(),
                sccs.into(),
                sid(i).into(),
                description.into(),
                "1.69".into(),
                order.into(),
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- scop_hierarchy (1:1 with scop_node; 4 attrs) --------------------------
    {
        let mut schema = TableSchema::new(
            "scop_hierarchy",
            vec![
                ColumnSchema::new("sunid", DataType::Integer)
                    .not_null()
                    .unique(),
                ColumnSchema::new("parent_sunid", DataType::Integer),
                ColumnSchema::new("children_count", DataType::Integer),
                ColumnSchema::new("depth", DataType::Integer),
            ],
        )
        .or_abort("table schema");
        schema
            .add_foreign_key("sunid", "scop_node", "sunid")
            .or_abort("foreign key");
        schema
            .add_foreign_key("parent_sunid", "scop_node", "sunid")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        for (i, &sunid) in sunids.iter().enumerate() {
            let parent = if i == 0 {
                ind_storage::Value::Null
            } else {
                sunids[rng.gen_range(0..i)].into()
            };
            let children = if i < 2 {
                i as i64 + 1
            } else {
                rng.gen_range(0..40i64)
            };
            let depth = if i < 2 {
                i as i64 + 1
            } else {
                rng.gen_range(1..8i64)
            };
            t.insert(vec![sunid.into(), parent, children.into(), depth.into()])
                .or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- scop_classification (one row per domain; 8 attrs) ----------------------
    {
        let mut schema = TableSchema::new(
            "scop_classification",
            vec![
                ColumnSchema::new("sid", DataType::Text).not_null().unique(),
                ColumnSchema::new("pdb_code", DataType::Text),
                ColumnSchema::new("chain", DataType::Text),
                ColumnSchema::new("sccs", DataType::Text),
                ColumnSchema::new("sunid", DataType::Integer).unique(),
                ColumnSchema::new("class_sunid", DataType::Integer),
                ColumnSchema::new("fold_sunid", DataType::Integer),
                ColumnSchema::new("domain_count", DataType::Integer),
            ],
        )
        .or_abort("table schema");
        schema
            .add_foreign_key("sid", "scop_node", "sid")
            .or_abort("foreign key");
        schema
            .add_foreign_key("sunid", "scop_node", "sunid")
            .or_abort("foreign key");
        schema
            .add_foreign_key("class_sunid", "scop_node", "sunid")
            .or_abort("foreign key");
        schema
            .add_foreign_key("fold_sunid", "scop_node", "sunid")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        for i in 0..n_domains {
            let mut pdb = ValuePools::pdb_code(rng.gen_range(0..cfg.pdb_pool.max(1)));
            if cfg.prefixed_pdb_codes {
                pdb = format!("PDB-{pdb}");
            }
            let chain = ["A", "B", "C", "-"][rng.gen_range(0..4)];
            let sccs = format!("{}.{}.{}", (b'a' + (i % 7) as u8) as char, i % 10, i % 8);
            let class_sunid = sunids[rng.gen_range(0..n)];
            let fold_sunid = sunids[rng.gen_range(0..n)];
            let count = if i < 2 {
                i as i64 + 1
            } else {
                rng.gen_range(1..20i64)
            };
            t.insert(vec![
                sid(i).into(),
                pdb.into(),
                chain.into(),
                sccs.into(),
                sunids[i].into(),
                class_sunid.into(),
                fold_sunid.into(),
                count.into(),
            ])
            .or_abort("static build");
        }
        db.add_table(t).or_abort("add table");
    }

    // -- scop_comment (3 attrs) ---------------------------------------------------
    {
        let mut schema = TableSchema::new(
            "scop_comment",
            vec![
                ColumnSchema::new("sunid", DataType::Integer).not_null(),
                ColumnSchema::new("comment_text", DataType::Text),
                ColumnSchema::new("rank", DataType::Integer),
            ],
        )
        .or_abort("table schema");
        schema
            .add_foreign_key("sunid", "scop_node", "sunid")
            .or_abort("foreign key");
        let mut t = Table::new(schema);
        for i in 0..n {
            let sunid = sunids[rng.gen_range(0..n)];
            let rank = if i < 2 {
                i as i64 + 1
            } else {
                rng.gen_range(1..3i64)
            };
            let mut pools = ValuePools::new(&mut rng);
            let text = pools.text(6);
            t.insert(vec![sunid.into(), text.into(), rank.into()])
                .or_abort("row insert");
        }
        db.add_table(t).or_abort("add table");
    }

    db.validate_foreign_keys()
        .or_abort("generator declares valid FKs");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_storage::Value;

    #[test]
    fn shape_matches_the_paper() {
        let db = generate_scop(&ScopConfig::tiny());
        assert_eq!(db.table_count(), 4);
        assert_eq!(db.attribute_count(), 22);
        assert!(db.gold_foreign_keys().len() >= 7);
    }

    #[test]
    fn foreign_keys_hold_in_the_data() {
        let db = generate_scop(&ScopConfig::tiny());
        for (dep, refd) in db.gold_foreign_keys() {
            let ref_set: std::collections::HashSet<Vec<u8>> = db
                .column(&refd)
                .unwrap()
                .iter()
                .filter(|v| !v.is_null())
                .map(Value::canonical_bytes)
                .collect();
            for v in db.column(&dep).unwrap().iter().filter(|v| !v.is_null()) {
                assert!(ref_set.contains(&v.canonical_bytes()), "{dep} ⊆ {refd}");
            }
        }
    }

    #[test]
    fn hierarchy_is_one_to_one() {
        let db = generate_scop(&ScopConfig::tiny());
        assert_eq!(
            db.table("scop_node").unwrap().row_count(),
            db.table("scop_hierarchy").unwrap().row_count()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_scop(&ScopConfig::tiny());
        let b = generate_scop(&ScopConfig::tiny());
        assert_eq!(
            a.table("scop_node").unwrap().row(3),
            b.table("scop_node").unwrap().row(3)
        );
    }

    #[test]
    fn pdb_codes_come_from_the_shared_pool() {
        let cfg = ScopConfig::tiny();
        let db = generate_scop(&cfg);
        let pool: std::collections::HashSet<String> =
            (0..cfg.pdb_pool).map(ValuePools::pdb_code).collect();
        for v in db
            .column(&ind_storage::QualifiedName::new(
                "scop_classification",
                "pdb_code",
            ))
            .unwrap()
        {
            assert!(pool.contains(&v.to_string()), "{v} outside shared pool");
        }
    }
}
