//! no_unwrap fixture: panicking extractors in library code must be
//! flagged; annotated sites and test regions must not.

pub fn flagged_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn flagged_expect(v: Option<u32>) -> u32 {
    v.expect("fixture")
}

pub fn flagged_panic() -> ! {
    panic!("fixture")
}

pub fn suppressed(v: Option<u32>) -> u32 {
    // lint: allow(no_unwrap) — fixture: documented invariant for the test
    v.unwrap()
}

pub fn unwrap_or_variants_are_fine(v: Option<u32>) -> u32 {
    v.unwrap_or(0).max(v.unwrap_or_else(|| 1)).max(v.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_may_unwrap() {
        assert_eq!(Some(1).unwrap(), 1);
        Option::<u32>::None.expect_none_is_not_a_method();
    }
}
