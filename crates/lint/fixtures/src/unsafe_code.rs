//! safety_comment fixture: bare `unsafe` must be flagged — including
//! inside test regions, where the other rules relax but this one does not.

pub fn flagged_block(p: *const u32) -> u32 {
    unsafe { *p }
}

pub struct Wrapper(*const u32);

unsafe impl Send for Wrapper {}

pub fn commented_block(p: *const u32) -> u32 {
    // The dereference below is guarded by the caller's contract.
    // SAFETY: fixture — callers pass a pointer valid for reads.
    unsafe { *p }
}

pub fn commented_with_binding(p: *const u32) -> u32 {
    // SAFETY: fixture — same contract as above; the `let` must not
    // sever the link to this comment block.
    let v = unsafe { *p };
    v
}

pub fn suppressed(p: *const u32) -> u32 {
    // lint: allow(safety_comment) — fixture: the escape hatch must work here too
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn flagged_even_in_tests() {
        let x = 7u32;
        assert_eq!(unsafe { *(&x as *const u32) }, 7);
    }
}
