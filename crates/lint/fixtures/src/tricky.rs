//! Lexer stress fixture: every construct here is *clean* — any finding in
//! this file means the lexer misread a literal or comment as code.

pub fn raw_strings() -> (&'static str, &'static str, &'static str, &'static [u8]) {
    (
        r"plain raw with .unwrap( inside",
        r#"one-hash fence: panic!("boom") and "quotes""#,
        r##"two-hash fence holding "# and let _ = x"##,
        br#"byte raw: .expect("data")"#,
    )
}

pub fn strings_with_escapes() -> (&'static str, &'static str, char, char, u8) {
    (
        "escaped quote \" then .unwrap( as data",
        "backslash \\ and tab \t",
        '\'',
        '\\',
        b'\'',
    )
}

pub fn chars_vs_lifetimes<'a>(x: &'a u32) -> (&'a u32, char, char) {
    // 'a above is a lifetime; 'a' below is a char. '_' is a char here,
    // while `&'_ u32` elsewhere would be an anonymous lifetime.
    let c: char = 'a';
    (x, c, '_')
}

pub fn labels_are_lifetime_tokens() -> u32 {
    let mut n = 0;
    'outer: loop {
        loop {
            n += 1;
            if n > 2 {
                break 'outer;
            }
        }
    }
    n
}

/* A block comment
   /* with a nested block comment containing .unwrap( and panic!( */
   still inside the outer comment: let _ = x;
*/
pub fn after_nested_comment() -> u32 {
    1
}

pub fn raw_identifiers() -> u32 {
    let r#fn = 2u32;
    let r#unsafe = r#fn;
    r#unsafe
}
