//! swallowed_result fixture: discarded `Result`s must be flagged unless
//! annotated; plain bindings and destructuring must not.

pub fn flagged_let_underscore() {
    let _ = std::fs::remove_file("fixture");
}

pub fn flagged_ok_semicolon() {
    std::fs::remove_file("fixture").ok();
}

pub fn suppressed() {
    // lint: allow(swallowed_result) — fixture: best-effort cleanup
    let _ = std::fs::remove_file("fixture");
}

pub fn bindings_are_fine() -> u32 {
    let _named = std::fs::remove_file("fixture");
    let (_, b) = (1u32, 2u32);
    b
}
