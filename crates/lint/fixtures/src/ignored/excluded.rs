//! This directory is listed in the fixture `exclude`; the violation below
//! must never appear in the findings.

pub fn would_be_flagged(v: Option<u32>) -> u32 {
    v.unwrap()
}
