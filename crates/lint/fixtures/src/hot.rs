//! hot_alloc fixture: this file is listed in `[rules.hot_alloc] paths`,
//! so every denied allocation idiom outside a test region must be flagged.

pub fn violations() -> usize {
    let v: Vec<u32> = Vec::new();
    let w = v.clone();
    let s = format!("{}", w.len());
    let t = s.to_vec();
    t.len()
}

pub fn suppressed() -> Vec<u8> {
    // lint: allow(hot_alloc) — fixture: a justified setup-phase allocation
    let setup: Vec<u8> = Vec::new();
    setup
}

pub fn idioms_in_literals_do_not_fire() -> &'static str {
    // A comment mentioning Vec::new and format! is data, not code.
    /* so is a nested /* block comment */ holding .clone( */
    "a string with format! and Vec::new inside"
}

pub fn idioms_in_raw_strings_do_not_fire() -> &'static str {
    r#"raw string holding .to_vec( and vec![0; 8]"#
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_may_allocate() {
        let v: Vec<u32> = Vec::new();
        assert_eq!(v.clone().len(), format!("{}", 0).len() - 1);
    }
}
