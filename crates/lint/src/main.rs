//! The `ind-lint` CLI.
//!
//! ```text
//! ind-lint check [--root DIR] [--config PATH] [--json]
//! ind-lint rules
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/configuration/I/O error.

use ind_lint::{check_workspace, render_json_report, Config, LintError};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
ind-lint — static invariant checker for the SPIDER workspace

USAGE:
    ind-lint check [--root DIR] [--config PATH] [--json]
    ind-lint rules

OPTIONS:
    --root DIR       Workspace root to lint (default: nearest dir with lint.toml)
    --config PATH    Configuration file (default: <root>/lint.toml)
    --json           Emit findings as a JSON array instead of rustc-style text
";

const RULES_HELP: &str = "\
hot_alloc         allocation idioms denied in the configured hot-path modules
no_unwrap         .unwrap()/.expect(/panic! denied in library code
safety_comment    unsafe blocks/impls require a preceding // SAFETY: comment
swallowed_result  `let _ =` and `.ok();` discard errors silently

Suppress one finding with an annotation on the same line or the line above:
    // lint: allow(<rule>) — <reason>
The reason is mandatory; unused annotations are findings themselves.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<usize, String> {
    let mut command = None;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" | "rules" if command.is_none() => command = Some(arg.clone()),
            "--root" => {
                root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--config" => {
                config_path = Some(PathBuf::from(it.next().ok_or("--config needs a path")?));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    match command.as_deref() {
        Some("rules") => {
            print!("{RULES_HELP}");
            Ok(0)
        }
        Some("check") => {
            let root = match root {
                Some(r) => r,
                None => find_root()?,
            };
            let config = match &config_path {
                Some(p) => {
                    let text =
                        std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
                    Config::parse(&text).map_err(|e| e.to_string())?
                }
                None => ind_lint::load_config(&root).map_err(|e| e.to_string())?,
            };
            let diags = check_workspace(&root, &config).map_err(|e| match e {
                LintError::Io(p, e) => format!("{}: {e}", p.display()),
                LintError::Config(e) => e.to_string(),
            })?;
            if json {
                println!("{}", render_json_report(&diags));
            } else {
                for d in &diags {
                    print!("{}", d.render_text());
                    println!();
                }
                if diags.is_empty() {
                    println!("ind-lint: clean");
                } else {
                    println!(
                        "ind-lint: {} finding{} — see `ind-lint rules` for the escape hatch",
                        diags.len(),
                        if diags.len() == 1 { "" } else { "s" }
                    );
                }
            }
            Ok(diags.len())
        }
        _ => Err(format!("expected a command\n\n{USAGE}")),
    }
}

/// Walks up from the current directory to the nearest `lint.toml`.
fn find_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| e.to_string())?;
    let mut dir = start.as_path();
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no lint.toml found above {}; pass --root",
                    start.display()
                ))
            }
        }
    }
}
