//! The rule engine: turns one lexed file into diagnostics.
//!
//! Five rules guard the invariants the PRs so far established:
//!
//! - **hot_alloc** — allocation idioms (`Vec::new`, `.to_vec(`, `.clone(`,
//!   `format!`, …) are denied inside the designated hot-path modules, so
//!   the zero-alloc merge/export property is guarded structurally, not
//!   just by the counting allocator in the bench harness.
//! - **fs_open** — raw descriptor acquisition (`File::open`,
//!   `File::create`, `OpenOptions::new`) is denied inside the configured
//!   crates (minus the wrapper itself), so every open in the storage
//!   substrate goes through `ind_valueset::fault` and stays reachable by
//!   injected fault plans.
//! - **no_unwrap** — `.unwrap()` / `.expect(` / `panic!` are denied in
//!   library code; errors must flow through the crates' `Result` types.
//! - **safety_comment** — every `unsafe` block or `unsafe impl` must be
//!   directly preceded by a comment block containing `SAFETY:`. (`unsafe fn`
//!   signatures are exempt: they are obligations on the *caller*, and the
//!   interesting justification sits at the call site or impl.)
//! - **swallowed_result** — `let _ = …` and `….ok();` silently discard a
//!   possible error; PR 5 fixed exactly such a swallowed `remove_file`.
//!
//! All rules skip `#[test]` / `#[cfg(test)]` items except
//! `safety_comment`, which applies everywhere (unsafe code in tests still
//! needs its justification).
//!
//! ## Escape hatch
//!
//! A finding is suppressed by an annotation on the same line or the line
//! directly above:
//!
//! ```text
//! // lint: allow(hot_alloc) — one-time setup buffer, reused across runs
//! ```
//!
//! The reason after the dash is mandatory, malformed annotations are
//! themselves findings (`lint_annotation`), and an annotation that
//! suppresses nothing is reported too (`unused_allow`) so stale escapes
//! cannot accumulate.

use crate::config::{Config, FsOpenConfig, HotAllocConfig, RuleScope};
use crate::diag::Diagnostic;
use crate::lexer::{lex, LexError, Token, TokenKind};

/// A compiled deny-idiom: the sequence of (kind, text) atoms that must
/// appear consecutively in the code token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// The idiom as written in `lint.toml`, for messages.
    pub display: String,
    atoms: Vec<(TokenKind, String)>,
}

impl Pattern {
    /// Compiles an idiom string (e.g. `".unwrap("` or `"Vec::new"`) by
    /// lexing it with the same lexer the engine uses on source files.
    pub fn compile(idiom: &str) -> Result<Pattern, String> {
        let tokens = lex(idiom).map_err(|e| format!("bad idiom `{idiom}`: {e}"))?;
        let mut atoms = Vec::with_capacity(tokens.len());
        for t in tokens {
            match t.kind {
                TokenKind::Ident | TokenKind::Punct => {
                    atoms.push((t.kind, t.text(idiom).to_string()));
                }
                other => {
                    return Err(format!(
                        "idiom `{idiom}` contains a {other:?} token; only identifiers \
                         and punctuation can be matched"
                    ));
                }
            }
        }
        if atoms.is_empty() {
            return Err(format!("idiom `{idiom}` is empty"));
        }
        Ok(Pattern {
            display: idiom.to_string(),
            atoms,
        })
    }

    fn len(&self) -> usize {
        self.atoms.len()
    }
}

/// The default `no_unwrap` idioms.
pub const NO_UNWRAP_IDIOMS: &[&str] = &[".unwrap(", ".expect(", "panic!("];

/// The `fs_open` idioms: every way of acquiring a raw file descriptor.
pub const FS_OPEN_IDIOMS: &[&str] = &["File::open(", "File::create(", "OpenOptions::new("];

/// The default `swallowed_result` idioms.
pub const SWALLOWED_IDIOMS: &[&str] = &["let _ =", ".ok();"];

/// Lexes and analyses one file, returning its diagnostics (sorted by
/// position). `path` is the workspace-relative, `/`-separated path used
/// both for rule scoping and in diagnostics.
pub fn lint_file(path: &str, src: &str, config: &Config) -> Vec<Diagnostic> {
    let tokens = match lex(src) {
        Ok(t) => t,
        Err(e) => return vec![lex_error_diag(path, src, &e)],
    };
    let analysis = FileAnalysis::new(path, src, &tokens);
    let mut diags = Vec::new();

    if let Some(hot) = &config.hot_alloc {
        analysis.run_hot_alloc(hot, &mut diags);
    }
    if let Some(rule) = &config.fs_open {
        analysis.run_fs_open(rule, &mut diags);
    }
    if let Some(scope) = &config.no_unwrap {
        analysis.run_pattern_rule(
            scope,
            "no_unwrap",
            NO_UNWRAP_IDIOMS,
            |p| format!("`{p}…)` in library code; propagate through the error types"),
            &mut diags,
        );
    }
    if let Some(scope) = &config.swallowed_result {
        analysis.run_pattern_rule(
            scope,
            "swallowed_result",
            SWALLOWED_IDIOMS,
            |p| format!("`{p}` swallows a possible error; handle or annotate it"),
            &mut diags,
        );
    }
    if let Some(scope) = &config.safety_comment {
        analysis.run_safety_comment(scope, &mut diags);
    }
    analysis.finish(diags)
}

fn lex_error_diag(path: &str, src: &str, e: &LexError) -> Diagnostic {
    Diagnostic {
        rule: "lex_error",
        file: path.to_string(),
        line: e.line,
        col: e.col,
        span_chars: 1,
        message: format!("cannot lex file: {}", e.message),
        snippet: line_text(src, e.line).to_string(),
    }
}

fn line_text(src: &str, line: u32) -> &str {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
}

/// A parsed `// lint: allow(rule) — reason` annotation.
struct Allow {
    rule: String,
    /// Line the comment ends on; suppresses findings on this line and the
    /// next one.
    line: u32,
    col: u32,
    used: std::cell::Cell<bool>,
}

struct FileAnalysis<'a> {
    path: &'a str,
    src: &'a str,
    tokens: &'a [Token],
    /// Indices into `tokens` of the non-comment tokens.
    code: Vec<usize>,
    /// Byte ranges covered by `#[test]` / `#[cfg(test)]` items.
    test_regions: Vec<(usize, usize)>,
    allows: Vec<Allow>,
    /// Malformed annotations discovered while parsing comments.
    annotation_diags: Vec<Diagnostic>,
}

impl<'a> FileAnalysis<'a> {
    fn new(path: &'a str, src: &'a str, tokens: &'a [Token]) -> FileAnalysis<'a> {
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let test_regions = find_test_regions(src, tokens, &code);
        let mut analysis = FileAnalysis {
            path,
            src,
            tokens,
            code,
            test_regions,
            allows: Vec::new(),
            annotation_diags: Vec::new(),
        };
        analysis.collect_allows();
        analysis
    }

    fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    fn diag(
        &self,
        rule: &'static str,
        token: &Token,
        span_chars: u32,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            file: self.path.to_string(),
            line: token.line,
            col: token.col,
            span_chars,
            message,
            snippet: line_text(self.src, token.line).to_string(),
        }
    }

    /// Parses every comment for `lint: allow(...)` annotations; malformed
    /// ones become diagnostics immediately.
    fn collect_allows(&mut self) {
        for t in self.tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let text = t.text(self.src);
            // Annotations live in plain comments; doc comments only *talk*
            // about the grammar (like this one does).
            if text.starts_with("///")
                || text.starts_with("//!")
                || text.starts_with("/**")
                || text.starts_with("/*!")
            {
                continue;
            }
            let Some(at) = text.find("lint:") else {
                continue;
            };
            let rest = text[at + "lint:".len()..].trim_start();
            let parsed = parse_allow(rest);
            match parsed {
                Ok((rule, _reason)) => self.allows.push(Allow {
                    rule,
                    line: t.end_line(self.src),
                    col: t.col,
                    used: std::cell::Cell::new(false),
                }),
                Err(problem) => self.annotation_diags.push(self.diag(
                    "lint_annotation",
                    t,
                    text.chars().count() as u32,
                    format!("malformed lint annotation: {problem}"),
                )),
            }
        }
    }

    /// Suppression check: marks the matching allow used.
    fn allowed(&self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.rule == rule && (a.line == line || a.line + 1 == line) {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }

    fn run_hot_alloc(&self, rule: &HotAllocConfig, diags: &mut Vec<Diagnostic>) {
        if !rule.paths.iter().any(|p| p == self.path) {
            return;
        }
        for idiom in &rule.deny {
            let pattern = match Pattern::compile(idiom) {
                Ok(p) => p,
                Err(e) => {
                    diags.push(Diagnostic {
                        rule: "lint_config",
                        file: self.path.to_string(),
                        line: 0,
                        col: 0,
                        span_chars: 1,
                        message: e,
                        snippet: String::new(),
                    });
                    continue;
                }
            };
            self.match_pattern(&pattern, true, |token, span| {
                if !self.allowed("hot_alloc", token.line) {
                    diags.push(self.diag(
                        "hot_alloc",
                        token,
                        span,
                        format!(
                            "allocation idiom `{}` in hot-path module; the merge/export \
                             loops must stay allocation-free",
                            pattern.display
                        ),
                    ));
                }
            });
        }
    }

    fn run_fs_open(&self, rule: &FsOpenConfig, diags: &mut Vec<Diagnostic>) {
        if !rule.applies(self.path) {
            return;
        }
        for idiom in FS_OPEN_IDIOMS {
            let compiled = Pattern::compile(idiom);
            debug_assert!(compiled.is_ok(), "built-in idiom must compile: {idiom}");
            let Ok(pattern) = compiled else { continue };
            self.match_pattern(&pattern, true, |token, span| {
                if !self.allowed("fs_open", token.line) {
                    diags.push(self.diag(
                        "fs_open",
                        token,
                        span,
                        format!(
                            "raw filesystem open `{}` bypasses the fault wrapper; route \
                             through `fault::{{open_file, create_file}}` or gate with \
                             `fault::check_open` so fault plans cover this descriptor",
                            pattern.display
                        ),
                    ));
                }
            });
        }
    }

    fn run_pattern_rule(
        &self,
        scope: &RuleScope,
        rule: &'static str,
        idioms: &[&str],
        message: impl Fn(&str) -> String,
        diags: &mut Vec<Diagnostic>,
    ) {
        if scope.excludes(self.path) {
            return;
        }
        for idiom in idioms {
            let compiled = Pattern::compile(idiom);
            debug_assert!(compiled.is_ok(), "built-in idiom must compile: {idiom}");
            let Ok(pattern) = compiled else { continue };
            self.match_pattern(&pattern, true, |token, span| {
                if !self.allowed(rule, token.line) {
                    diags.push(self.diag(rule, token, span, message(&pattern.display)));
                }
            });
        }
    }

    /// Scans the code token stream for the pattern; calls `on_match` with
    /// the first matched token and the match's span in characters.
    fn match_pattern(
        &self,
        pattern: &Pattern,
        skip_tests: bool,
        mut on_match: impl FnMut(&Token, u32),
    ) {
        if self.code.len() < pattern.len() {
            return;
        }
        for window in self.code.windows(pattern.len()) {
            let first = &self.tokens[window[0]];
            if skip_tests && self.in_test_region(first.start) {
                continue;
            }
            let matches = window
                .iter()
                .zip(&pattern.atoms)
                .all(|(&ti, (kind, text))| {
                    let t = &self.tokens[ti];
                    t.kind == *kind && t.text(self.src) == text
                });
            if matches {
                let last = &self.tokens[window[pattern.len() - 1]];
                let span = if last.line == first.line {
                    self.src[first.start..last.end].chars().count() as u32
                } else {
                    first.text(self.src).chars().count() as u32
                };
                on_match(first, span);
            }
        }
    }

    fn run_safety_comment(&self, scope: &RuleScope, diags: &mut Vec<Diagnostic>) {
        if scope.excludes(self.path) {
            return;
        }
        for (pos, &ti) in self.code.iter().enumerate() {
            let t = &self.tokens[ti];
            if t.kind != TokenKind::Ident || t.text(self.src) != "unsafe" {
                continue;
            }
            let Some(&next_i) = self.code.get(pos + 1) else {
                continue;
            };
            let next = &self.tokens[next_i];
            let next_text = next.text(self.src);
            // `unsafe {` blocks and `unsafe impl`s need justification;
            // `unsafe fn` signatures are caller obligations.
            let needs_comment = (next.kind == TokenKind::Punct && next_text == "{")
                || (next.kind == TokenKind::Ident && next_text == "impl");
            if !needs_comment {
                continue;
            }
            if !self.has_safety_comment(ti) && !self.allowed("safety_comment", t.line) {
                diags.push(self.diag(
                    "safety_comment",
                    t,
                    "unsafe".len() as u32,
                    "unsafe block/impl without a preceding `// SAFETY:` comment".to_string(),
                ));
            }
        }
    }

    /// Whether the contiguous comment block directly above the token (each
    /// comment ending no more than one line above the next) contains
    /// `SAFETY:`. Multi-line `//` runs count as one block, so the marker may
    /// sit on any line of the explanation. Tokens sharing a line with the
    /// block under inspection (`let x = unsafe { … }`) don't sever the link.
    fn has_safety_comment(&self, token_index: usize) -> bool {
        let mut expect_line = self.tokens[token_index].line;
        for t in self.tokens[..token_index].iter().rev() {
            let is_comment = matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment);
            if !is_comment {
                if t.line == expect_line {
                    continue;
                }
                return false;
            }
            if t.end_line(self.src) + 1 < expect_line {
                return false;
            }
            if t.text(self.src).contains("SAFETY:") {
                return true;
            }
            expect_line = t.line;
        }
        false
    }

    /// Appends unused-allow findings and returns the sorted diagnostics.
    fn finish(self, mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags.extend(self.annotation_diags);
        for a in &self.allows {
            if !a.used.get() {
                diags.push(Diagnostic {
                    rule: "unused_allow",
                    file: self.path.to_string(),
                    line: a.line,
                    col: a.col,
                    span_chars: 1,
                    message: format!(
                        "`lint: allow({})` suppresses nothing; remove the stale annotation",
                        a.rule
                    ),
                    snippet: line_text(self.src, a.line).to_string(),
                });
            }
        }
        diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
        diags
    }
}

/// Parses `allow(rule) — reason` (the part after `lint:`). Returns the
/// rule name and reason, or a description of the problem.
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let Some(rest) = text.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>) — <reason>` after `lint:`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("missing `)` after the rule name".to_string());
    };
    let rule = rest[..close].trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("`{rule}` is not a rule name"));
    }
    let mut after = rest[close + 1..].trim_start();
    // A dash separator: em/en dash, `--`, `-`, or `:`.
    let seps = ["—", "–", "--", "-", ":"];
    let Some(sep) = seps.iter().find(|s| after.starts_with(**s)) else {
        return Err("expected `— <reason>` after the rule".to_string());
    };
    after = after[sep.len()..].trim();
    // Block comments may close on the same line; the `*/` is not a reason.
    let reason = after.trim_end_matches("*/").trim();
    if reason.is_empty() {
        return Err("the reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// Finds the byte ranges of items annotated `#[test]`, `#[cfg(test)]`, or
/// any `#[cfg(…)]` mentioning `test` (covers `cfg(all(test, …))`).
/// `#[cfg_attr(…)]` is *not* a test marker.
fn find_test_regions(src: &str, tokens: &[Token], code: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut pos = 0usize;
    while pos + 1 < code.len() {
        let hash = &tokens[code[pos]];
        let open = &tokens[code[pos + 1]];
        let is_attr_start = hash.kind == TokenKind::Punct
            && hash.text(src) == "#"
            && open.kind == TokenKind::Punct
            && open.text(src) == "[";
        if !is_attr_start {
            pos += 1;
            continue;
        }
        // Find the attribute's closing `]`.
        let mut depth = 1i32;
        let mut j = pos + 2;
        let mut is_test = false;
        let mut path_seen = false;
        let mut path_is_cfg_or_test = false;
        while j < code.len() && depth > 0 {
            let t = &tokens[code[j]];
            let text = t.text(src);
            match (t.kind, text) {
                (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, "]") => depth -= 1,
                (TokenKind::Ident, ident) => {
                    if !path_seen {
                        path_seen = true;
                        path_is_cfg_or_test = ident == "cfg" || ident == "test";
                        if ident == "test" {
                            is_test = true;
                        }
                    } else if path_is_cfg_or_test && ident == "test" {
                        is_test = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !is_test {
            pos = j.max(pos + 1);
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = j;
        while k + 1 < code.len()
            && tokens[code[k]].kind == TokenKind::Punct
            && tokens[code[k]].text(src) == "#"
            && tokens[code[k + 1]].text(src) == "["
        {
            let mut d = 1i32;
            k += 2;
            while k < code.len() && d > 0 {
                match (tokens[code[k]].kind, tokens[code[k]].text(src)) {
                    (TokenKind::Punct, "[") => d += 1,
                    (TokenKind::Punct, "]") => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        // Consume the item: up to the matching `}` of its body, or a `;`
        // at bracket depth zero for body-less items.
        let mut body_depth = 0i32;
        let mut end_offset = src.len();
        while k < code.len() {
            let t = &tokens[code[k]];
            match (t.kind, t.text(src)) {
                (TokenKind::Punct, "{") | (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => {
                    body_depth += 1;
                }
                (TokenKind::Punct, "}") | (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                    body_depth -= 1;
                    if body_depth == 0 && t.text(src) == "}" {
                        end_offset = t.end;
                        k += 1;
                        break;
                    }
                }
                (TokenKind::Punct, ";") if body_depth == 0 => {
                    end_offset = t.end;
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((hash.start, end_offset));
        pos = k;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_config() -> Config {
        Config::parse(
            r#"
[files]
include = ["."]
exclude = []

[rules.hot_alloc]
paths = ["hot.rs"]
deny = ["Vec::new", ".to_vec(", ".clone(", "format!", "Box::new", ".collect(", "String::from", "vec!"]

[rules.fs_open]
paths = ["crates/valueset"]
exclude = ["crates/valueset/src/fault.rs"]

[rules.no_unwrap]
exclude = []

[rules.safety_comment]

[rules.swallowed_result]
exclude = []
"#,
        )
        .unwrap()
    }

    fn rules_of(path: &str, src: &str) -> Vec<String> {
        lint_file(path, src, &full_config())
            .into_iter()
            .map(|d| format!("{}:{}", d.rule, d.line))
            .collect()
    }

    #[test]
    fn hot_alloc_fires_only_in_configured_files() {
        let src = "fn f() { let v = Vec::new(); }\n";
        assert_eq!(rules_of("hot.rs", src), vec!["hot_alloc:1"]);
        assert_eq!(rules_of("cold.rs", src), Vec::<String>::new());
    }

    #[test]
    fn fs_open_fires_in_scope_and_spares_the_wrapper_and_tests() {
        let open = "fn f() { let f = std::fs::File::open(\"x\"); }\n";
        assert_eq!(
            rules_of("crates/valueset/src/block.rs", open),
            vec!["fs_open:1"]
        );
        let create = "fn f() { std::fs::OpenOptions::new().read(true); }\n";
        assert_eq!(
            rules_of("crates/valueset/src/format.rs", create),
            vec!["fs_open:1"]
        );
        // The wrapper itself and out-of-scope crates are exempt.
        assert_eq!(
            rules_of("crates/valueset/src/fault.rs", open),
            Vec::<String>::new()
        );
        assert_eq!(
            rules_of("crates/core/src/runner.rs", open),
            Vec::<String>::new()
        );
        // Test code opens files freely.
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::File::open(\"x\"); }\n}\n";
        assert_eq!(
            rules_of("crates/valueset/src/block.rs", in_test),
            Vec::<String>::new()
        );
        // The escape hatch works for the one gated direct-I/O site.
        let allowed = "// lint: allow(fs_open) — gated by fault::check_open in the caller\n\
                       fn f() { std::fs::OpenOptions::new().read(true); }\n";
        assert_eq!(
            rules_of("crates/valueset/src/block.rs", allowed),
            Vec::<String>::new()
        );
    }

    #[test]
    fn idioms_inside_strings_and_comments_do_not_fire() {
        let src = r#"
fn f() -> &'static str {
    // .unwrap() in a comment is fine
    /* nested /* Vec::new() */ still a comment */
    "calls .unwrap() and panic!(now)"
}
"#;
        assert_eq!(rules_of("hot.rs", src), Vec::<String>::new());
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = r#"
fn lib() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { super::lib().to_string().parse::<u32>().unwrap(); }
}
"#;
        assert_eq!(rules_of("lib.rs", src), Vec::<String>::new());
        let bad = "fn lib() { \"1\".parse::<u32>().unwrap(); }\n";
        assert_eq!(rules_of("lib.rs", bad), vec!["no_unwrap:1"]);
    }

    #[test]
    fn cfg_test_function_without_module_is_exempt() {
        let src = r#"
#[cfg(test)]
fn helper() { "x".parse::<u32>().unwrap(); }
"#;
        assert_eq!(rules_of("lib.rs", src), Vec::<String>::new());
    }

    #[test]
    fn allow_annotation_suppresses_and_requires_reason() {
        let above = "// lint: allow(no_unwrap) — startup path, config is pre-validated\n\
                     fn f() { \"1\".parse::<u32>().unwrap(); }\n";
        assert_eq!(rules_of("lib.rs", above), Vec::<String>::new());
        let trailing = "fn f() { \"1\".parse::<u32>().unwrap(); } \
                        // lint: allow(no_unwrap) - startup path\n";
        assert_eq!(rules_of("lib.rs", trailing), Vec::<String>::new());
        let no_reason = "// lint: allow(no_unwrap)\n\
                         fn f() { \"1\".parse::<u32>().unwrap(); }\n";
        assert_eq!(
            rules_of("lib.rs", no_reason),
            vec!["lint_annotation:1", "no_unwrap:2"]
        );
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// lint: allow(no_unwrap) — nothing here needs it\nfn f() {}\n";
        assert_eq!(rules_of("lib.rs", src), vec!["unused_allow:1"]);
    }

    #[test]
    fn safety_comment_rule() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(rules_of("lib.rs", bad), vec!["safety_comment:1"]);
        let good = "fn f() {\n    // SAFETY: provably unreachable, guarded above\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        assert_eq!(rules_of("lib.rs", good), Vec::<String>::new());
        let impl_bad = "unsafe impl Send for X {}\n";
        assert_eq!(rules_of("lib.rs", impl_bad), vec!["safety_comment:1"]);
        // `unsafe fn` signatures are exempt…
        let sig = "unsafe fn f() {}\n";
        assert_eq!(rules_of("lib.rs", sig), Vec::<String>::new());
        // The marker may sit on any line of a contiguous multi-line comment,
        // and same-line tokens (`let p =`) don't sever the link…
        let multi = "fn f() {\n    // Failure is harmless here.\n    // SAFETY: the pointer is valid for the\n    // whole call, and never retained.\n    let p = unsafe { g() };\n    p\n}\n";
        assert_eq!(rules_of("lib.rs", multi), Vec::<String>::new());
        // …but a blank line breaks the block.
        let far = "// SAFETY: too far away\n\n\n\n\nfn f() { unsafe { g() } }\n";
        assert_eq!(rules_of("lib.rs", far), vec!["safety_comment:6"]);
    }

    #[test]
    fn swallowed_result_rule() {
        let src = "fn f() { let _ = std::fs::remove_file(\"x\"); }\n";
        assert_eq!(rules_of("lib.rs", src), vec!["swallowed_result:1"]);
        let ok = "fn f() { std::fs::remove_file(\"x\").ok(); }\n";
        assert_eq!(rules_of("lib.rs", ok), vec!["swallowed_result:1"]);
        // `let _x = …` binds, `let (_, b) = …` destructures: neither fires.
        let fine = "fn f() { let _x = g(); let (_, b) = h(); b }\n";
        assert_eq!(rules_of("lib.rs", fine), Vec::<String>::new());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() -> u32 { \"1\".parse().unwrap_or(0) }\n";
        assert_eq!(rules_of("lib.rs", src), Vec::<String>::new());
    }

    #[test]
    fn char_literal_vs_lifetime_does_not_confuse_matching() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'a'; c }\n";
        assert_eq!(rules_of("lib.rs", src), Vec::<String>::new());
    }

    #[test]
    fn pattern_compile_rejects_literals() {
        assert!(Pattern::compile("\"str\"").is_err());
        assert!(Pattern::compile("").is_err());
        assert!(Pattern::compile(".unwrap(").is_ok());
    }
}
