//! Diagnostics: rustc-style text rendering and `--json` output.

/// One finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`hot_alloc`, `no_unwrap`, …).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Length of the offending span in characters (for the caret underline).
    pub span_chars: u32,
    /// Human message.
    pub message: String,
    /// The full source line the finding points into.
    pub snippet: String,
}

impl Diagnostic {
    /// Renders one finding the way rustc does:
    ///
    /// ```text
    /// error[no_unwrap]: `.unwrap()` in library code
    ///   --> crates/core/src/runner.rs:42:17
    ///    |
    /// 42 |     let x = foo().unwrap();
    ///    |                  ^^^^^^^^
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("error[{}]: {}\n", self.rule, self.message));
        out.push_str(&format!("  --> {}:{}:{}\n", self.file, self.line, self.col));
        let gutter = self.line.to_string().len().max(2);
        out.push_str(&format!("{:gutter$} |\n", ""));
        out.push_str(&format!("{:gutter$} | {}\n", self.line, self.snippet));
        let carets = "^".repeat(self.span_chars.max(1) as usize);
        out.push_str(&format!(
            "{:gutter$} | {:pad$}{}\n",
            "",
            "",
            carets,
            pad = self.col.saturating_sub(1) as usize
        ));
        out
    }

    /// Renders one finding as a JSON object (one line, no trailing newline).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            json_escape(self.rule),
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message),
            json_escape(self.snippet.trim())
        )
    }
}

/// Renders the whole report as a JSON array.
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&d.render_json());
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "no_unwrap",
            file: "crates/x/src/lib.rs".into(),
            line: 42,
            col: 18,
            span_chars: 8,
            message: "`.unwrap()` in library code".into(),
            snippet: "    let x = foo().unwrap();".into(),
        }
    }

    #[test]
    fn text_rendering_points_at_the_span() {
        let text = diag().render_text();
        assert!(text.contains("error[no_unwrap]"), "{text}");
        assert!(text.contains("--> crates/x/src/lib.rs:42:18"), "{text}");
        let caret_line = text.lines().last().unwrap();
        assert_eq!(caret_line.find('^'), Some("   | ".len() + 17), "{text}");
        assert!(caret_line.ends_with("^^^^^^^^"), "{text}");
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let mut d = diag();
        d.message = "say \"hi\"\n".into();
        let json = d.render_json();
        assert!(json.contains("say \\\"hi\\\"\\n"), "{json}");
    }

    #[test]
    fn json_report_is_an_array() {
        assert_eq!(render_json_report(&[]), "[]");
        let r = render_json_report(&[diag(), diag()]);
        assert!(r.starts_with('[') && r.ends_with(']'), "{r}");
        assert_eq!(r.matches("\"rule\"").count(), 2);
    }
}
