//! `ind-lint` — an in-tree static invariant checker.
//!
//! PRs 2–5 turned the SPIDER reproduction's performance story into hard
//! invariants: a 14-allocation merge loop, an arena-backed export pipeline,
//! zero-copy block cursors, and exactly two audited `unsafe` sites. Those
//! invariants were enforced only at runtime by `bench_spider --check`; one
//! innocent `to_vec()` in the merge loop or a swallowed `remove_file`
//! error in the spill path would ship silently until a benchmark noticed.
//! This crate enforces them at review time, on every file, in every
//! `cargo test`.
//!
//! The checker is a workspace-aware pass over a hand-rolled token-level
//! lexer ([`lexer`]) — the environment is offline, so there is no `syn` —
//! driven by a rule engine ([`rules`]) configured from an in-repo
//! `lint.toml` ([`config`]). Run it as:
//!
//! ```text
//! cargo run -p ind-lint -- check [--json]
//! ```
//!
//! or call [`check_workspace`] directly (the workspace meta-test in
//! `tests/lint_workspace.rs` does exactly that).

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use config::{Config, ConfigError};
pub use diag::{render_json_report, Diagnostic};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The rules that skip non-library code (integration tests, benches,
/// examples): their contract is about *library* error discipline.
const LIBRARY_ONLY_RULES_SKIP_COMPONENTS: &[&str] = &["tests", "benches", "examples"];

/// A fatal checker error (I/O or configuration), as opposed to findings.
#[derive(Debug)]
pub enum LintError {
    Io(PathBuf, io::Error),
    Config(ConfigError),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

impl From<ConfigError> for LintError {
    fn from(e: ConfigError) -> Self {
        LintError::Config(e)
    }
}

/// Loads `lint.toml` from the workspace root.
pub fn load_config(root: &Path) -> Result<Config, LintError> {
    let path = root.join("lint.toml");
    let text = fs::read_to_string(&path).map_err(|e| LintError::Io(path, e))?;
    Ok(Config::parse(&text)?)
}

/// Lints every `.rs` file reachable from the config's include roots,
/// returning all findings sorted by `(file, line, col)`.
pub fn check_workspace(root: &Path, config: &Config) -> Result<Vec<Diagnostic>, LintError> {
    let mut files = Vec::new();
    for include in &config.include {
        collect_rust_files(root, Path::new(include), config, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut diags = Vec::new();
    for rel in &files {
        let full = root.join(rel);
        let src = fs::read_to_string(&full).map_err(|e| LintError::Io(full, e))?;
        let scoped = scope_config_for(rel, config);
        diags.extend(rules::lint_file(rel, &src, &scoped));
    }
    Ok(diags)
}

/// Integration tests, benches, and examples are not library code: the
/// `no_unwrap` and `swallowed_result` contracts do not apply there.
/// (`hot_alloc` names exact files and `safety_comment` applies
/// everywhere, so both pass through unchanged.)
fn scope_config_for(rel: &str, config: &Config) -> Config {
    let non_library = rel
        .split('/')
        .any(|c| LIBRARY_ONLY_RULES_SKIP_COMPONENTS.contains(&c));
    if !non_library {
        return config.clone();
    }
    let mut scoped = config.clone();
    scoped.no_unwrap = None;
    scoped.swallowed_result = None;
    scoped
}

fn collect_rust_files(
    root: &Path,
    rel: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> Result<(), LintError> {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    if config
        .exclude
        .iter()
        .any(|p| config::path_has_prefix(&rel_str, p))
    {
        return Ok(());
    }
    let full = root.join(rel);
    let meta = fs::metadata(&full).map_err(|e| LintError::Io(full.clone(), e))?;
    if meta.is_file() {
        if rel_str.ends_with(".rs") {
            out.push(rel_str);
        }
        return Ok(());
    }
    let entries = fs::read_dir(&full).map_err(|e| LintError::Io(full.clone(), e))?;
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(full.clone(), e))?;
        children.push(rel.join(entry.file_name()));
    }
    children.sort();
    for child in children {
        collect_rust_files(root, &child, config, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_library_paths_drop_unwrap_rules_only() {
        let config = Config::parse(
            "[files]\ninclude = []\nexclude = []\n\
             [rules.no_unwrap]\n[rules.safety_comment]\n[rules.swallowed_result]\n",
        )
        .unwrap();
        let scoped = scope_config_for("crates/core/tests/it.rs", &config);
        assert!(scoped.no_unwrap.is_none());
        assert!(scoped.swallowed_result.is_none());
        assert!(scoped.safety_comment.is_some());
        let lib = scope_config_for("crates/core/src/lib.rs", &config);
        assert!(lib.no_unwrap.is_some());
        assert!(lib.swallowed_result.is_some());
        // `examples/` and `benches/` are non-library wherever they appear.
        assert!(scope_config_for("examples/quickstart.rs", &config)
            .no_unwrap
            .is_none());
        assert!(scope_config_for("crates/core/benches/b.rs", &config)
            .no_unwrap
            .is_none());
    }
}
