//! `lint.toml` loading: a hand-rolled parser for the TOML subset the
//! configuration needs (tables, string/bool values, single- and multi-line
//! string arrays, `#` comments). No external crates — the build environment
//! is offline.
//!
//! Unknown sections and keys are **errors**, so a typo in `lint.toml`
//! cannot silently disable a rule.

use std::collections::BTreeMap;
use std::fmt;

/// Scope shared by all rules: path prefixes exempt from the rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleScope {
    /// Workspace-relative path prefixes (files or directories) the rule
    /// does not apply to.
    pub exclude: Vec<String>,
}

impl RuleScope {
    /// Whether `path` (workspace-relative, `/`-separated) is exempt.
    pub fn excludes(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| path_has_prefix(path, p))
    }
}

/// `[rules.hot_alloc]`: allocation idioms denied inside designated
/// hot-path modules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotAllocConfig {
    /// Exact workspace-relative paths of the hot-path modules.
    pub paths: Vec<String>,
    /// Denied idioms, each lexed into a token pattern (`"Vec::new"`,
    /// `".to_vec("`, `"format!"`, …).
    pub deny: Vec<String>,
}

/// `[rules.fs_open]`: raw filesystem opens (`File::open(`,
/// `File::create(`, `OpenOptions::new(`) denied inside designated crates
/// so every descriptor is acquired through the fault-injection wrapper
/// (`ind_valueset::fault`) and stays coverable by fault plans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsOpenConfig {
    /// Workspace-relative path prefixes the rule applies under.
    pub paths: Vec<String>,
    /// Path prefixes exempt from the rule (the wrapper itself).
    pub exclude: Vec<String>,
}

impl FsOpenConfig {
    /// Whether the rule applies to `path`.
    pub fn applies(&self, path: &str) -> bool {
        self.paths.iter().any(|p| path_has_prefix(path, p))
            && !self.exclude.iter().any(|p| path_has_prefix(path, p))
    }
}

/// The full `lint.toml` configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Top-level files/directories to walk, workspace-relative.
    pub include: Vec<String>,
    /// Path prefixes skipped entirely (vendored code, fixtures, `target`).
    pub exclude: Vec<String>,
    /// `[rules.hot_alloc]`, if enabled.
    pub hot_alloc: Option<HotAllocConfig>,
    /// `[rules.fs_open]`, if enabled.
    pub fs_open: Option<FsOpenConfig>,
    /// `[rules.no_unwrap]`, if enabled.
    pub no_unwrap: Option<RuleScope>,
    /// `[rules.safety_comment]`, if enabled.
    pub safety_comment: Option<RuleScope>,
    /// `[rules.swallowed_result]`, if enabled.
    pub swallowed_result: Option<RuleScope>,
}

/// A configuration-file error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// True when `path` equals `prefix` or lives underneath it.
pub fn path_has_prefix(path: &str, prefix: &str) -> bool {
    path == prefix
        || (path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.as_bytes()[prefix.len()] == b'/')
}

#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Bool(bool),
    StrArray(Vec<String>),
}

/// section name → key → (value, line of the key)
type Sections = BTreeMap<String, BTreeMap<String, (TomlValue, u32)>>;

impl Config {
    /// Parses `lint.toml` text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let sections = parse_sections(text)?;
        Config::from_sections(sections)
    }

    fn from_sections(mut sections: Sections) -> Result<Config, ConfigError> {
        let mut config = Config {
            include: Vec::new(),
            exclude: Vec::new(),
            hot_alloc: None,
            fs_open: None,
            no_unwrap: None,
            safety_comment: None,
            swallowed_result: None,
        };

        if let Some(files) = sections.remove("files") {
            for (key, (value, line)) in files {
                match key.as_str() {
                    "include" => config.include = expect_array(value, line, "files.include")?,
                    "exclude" => config.exclude = expect_array(value, line, "files.exclude")?,
                    other => {
                        return Err(err(line, format!("unknown key `files.{other}`")));
                    }
                }
            }
        }

        if let Some(table) = sections.remove("rules.hot_alloc") {
            let mut rule = HotAllocConfig::default();
            for (key, (value, line)) in table {
                match key.as_str() {
                    "paths" => rule.paths = expect_array(value, line, "paths")?,
                    "deny" => rule.deny = expect_array(value, line, "deny")?,
                    other => {
                        return Err(err(line, format!("unknown key `rules.hot_alloc.{other}`")));
                    }
                }
            }
            config.hot_alloc = Some(rule);
        }

        if let Some(table) = sections.remove("rules.fs_open") {
            let mut rule = FsOpenConfig::default();
            for (key, (value, line)) in table {
                match key.as_str() {
                    "paths" => rule.paths = expect_array(value, line, "paths")?,
                    "exclude" => rule.exclude = expect_array(value, line, "exclude")?,
                    other => {
                        return Err(err(line, format!("unknown key `rules.fs_open.{other}`")));
                    }
                }
            }
            config.fs_open = Some(rule);
        }

        for (name, slot) in [
            ("no_unwrap", &mut config.no_unwrap),
            ("safety_comment", &mut config.safety_comment),
            ("swallowed_result", &mut config.swallowed_result),
        ] {
            if let Some(table) = sections.remove(&format!("rules.{name}")) {
                let mut scope = RuleScope::default();
                for (key, (value, line)) in table {
                    match key.as_str() {
                        "exclude" => scope.exclude = expect_array(value, line, "exclude")?,
                        other => {
                            return Err(err(line, format!("unknown key `rules.{name}.{other}`")));
                        }
                    }
                }
                *slot = Some(scope);
            }
        }

        if let Some((section, table)) = sections.into_iter().next() {
            let line = table.values().map(|&(_, l)| l).min().unwrap_or(0);
            return Err(err(line, format!("unknown section `[{section}]`")));
        }
        Ok(config)
    }
}

fn err(line: u32, message: String) -> ConfigError {
    ConfigError { line, message }
}

fn expect_array(value: TomlValue, line: u32, what: &str) -> Result<Vec<String>, ConfigError> {
    match value {
        TomlValue::StrArray(a) => Ok(a),
        other => Err(err(
            line,
            format!("`{what}` must be an array of strings, got {other:?}"),
        )),
    }
}

fn parse_sections(text: &str) -> Result<Sections, ConfigError> {
    let mut sections: Sections = BTreeMap::new();
    let mut current = String::new();
    let mut lines = text.lines().enumerate();

    while let Some((idx, raw)) = lines.next() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(err(lineno, "unterminated section header".to_string()));
            };
            current = name.trim().to_string();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = line[..eq].trim().to_string();
        let mut value_text = line[eq + 1..].trim().to_string();
        // A multi-line array: keep consuming lines until the bracket closes.
        while value_text.starts_with('[') && !balanced_array(&value_text) {
            let Some((_, next)) = lines.next() else {
                return Err(err(lineno, format!("unterminated array for `{key}`")));
            };
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
        }
        let value = parse_value(&value_text, lineno)?;
        if current.is_empty() {
            return Err(err(lineno, format!("key `{key}` outside any section")));
        }
        let section = sections.entry(current.clone()).or_default();
        if section.insert(key.clone(), (value, lineno)).is_some() {
            return Err(err(lineno, format!("duplicate key `{key}`")));
        }
    }
    Ok(sections)
}

/// Drops a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Whether every `[` in an array literal has closed (strings respected).
fn balanced_array(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth == 0
}

fn parse_value(text: &str, line: u32) -> Result<TomlValue, ConfigError> {
    if text == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if text == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if let Some(s) = parse_string(text) {
        return Ok(TomlValue::Str(s));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some(s) = parse_string(part) else {
                return Err(err(line, format!("array item `{part}` is not a string")));
            };
            items.push(s);
        }
        return Ok(TomlValue::StrArray(items));
    }
    Err(err(line, format!("cannot parse value `{text}`")))
}

/// Splits `"a", "b", "c"` on commas outside strings.
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    items.push(&inner[start..]);
    items
}

fn parse_string(text: &str) -> Option<String> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            }
        } else if c == '"' {
            return None; // an unescaped quote mid-string: not a string value
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[files]
include = ["src", "crates"]
exclude = [
    "vendor",          # offline stand-ins
    "target",
]

[rules.hot_alloc]
paths = ["crates/core/src/spider.rs"]
deny = ["Vec::new", ".to_vec("]

[rules.fs_open]
paths = ["crates/valueset"]
exclude = ["crates/valueset/src/fault.rs"]

[rules.no_unwrap]
exclude = ["crates/bench"]

[rules.safety_comment]

[rules.swallowed_result]
exclude = []
"#;

    #[test]
    fn parses_the_full_shape() {
        let c = Config::parse(SAMPLE).unwrap();
        assert_eq!(c.include, vec!["src", "crates"]);
        assert_eq!(c.exclude, vec!["vendor", "target"]);
        let hot = c.hot_alloc.unwrap();
        assert_eq!(hot.paths, vec!["crates/core/src/spider.rs"]);
        assert_eq!(hot.deny, vec!["Vec::new", ".to_vec("]);
        let fs_open = c.fs_open.unwrap();
        assert_eq!(fs_open.paths, vec!["crates/valueset"]);
        assert_eq!(fs_open.exclude, vec!["crates/valueset/src/fault.rs"]);
        assert_eq!(c.no_unwrap.unwrap().exclude, vec!["crates/bench"]);
        assert!(c.safety_comment.unwrap().exclude.is_empty());
        assert!(c.swallowed_result.is_some());
    }

    #[test]
    fn fs_open_scope_applies_inside_paths_minus_excludes() {
        let rule = FsOpenConfig {
            paths: vec!["crates/valueset".to_string()],
            exclude: vec!["crates/valueset/src/fault.rs".to_string()],
        };
        assert!(rule.applies("crates/valueset/src/block.rs"));
        assert!(!rule.applies("crates/valueset/src/fault.rs"));
        assert!(!rule.applies("crates/core/src/runner.rs"));
    }

    #[test]
    fn unknown_keys_and_sections_are_errors() {
        let e = Config::parse("[files]\nincldue = [\"src\"]\n").unwrap_err();
        assert!(e.message.contains("incldue"), "{e}");
        let e = Config::parse("[rules.hot_allok]\npaths = []\n").unwrap_err();
        assert!(e.message.contains("hot_allok"), "{e}");
    }

    #[test]
    fn multiline_arrays_and_comments() {
        let c = Config::parse("[files]\ninclude = [\n  \"a\", # one\n  \"b\",\n]\nexclude = []\n")
            .unwrap();
        assert_eq!(c.include, vec!["a", "b"]);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let c = Config::parse("[files]\ninclude = [\"a#b\"]\nexclude = []\n").unwrap();
        assert_eq!(c.include, vec!["a#b"]);
    }

    #[test]
    fn duplicate_keys_are_errors() {
        let e = Config::parse("[files]\ninclude = []\ninclude = []\n").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        assert!(path_has_prefix("crates/bench/src/lib.rs", "crates/bench"));
        assert!(path_has_prefix("crates/bench", "crates/bench"));
        assert!(!path_has_prefix(
            "crates/benchmark/src/lib.rs",
            "crates/bench"
        ));
    }
}
