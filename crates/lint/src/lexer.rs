//! A hand-rolled token-level Rust lexer.
//!
//! The build environment is offline, so there is no `syn`/`proc-macro2` to
//! lean on; this lexer implements exactly the subset of Rust's lexical
//! grammar the rule engine needs to never misfire inside literals or
//! comments:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), kept as tokens because the rule engine reads
//!   `// SAFETY:` and `// lint: allow(...)` annotations out of them;
//! - string literals with escapes (`"a \" b"`), byte strings (`b"…"`),
//!   and raw strings with arbitrary hash fences (`r"…"`, `r#"…"#`,
//!   `br##"…"##`) — a `".unwrap()"` inside any of them is data, not code;
//! - the `'a'` char-literal vs `'a` lifetime ambiguity (`'\n'`, `b'x'`,
//!   `'_'` the char vs `'_` the anonymous lifetime);
//! - raw identifiers (`r#fn`), numbers, identifiers, and single-character
//!   punctuation.
//!
//! Tokens carry byte offsets plus 1-based line/column so diagnostics can
//! point at sources rustc-style.

use std::fmt;

/// What a token is; only as fine-grained as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `let`, `r#fn`, `_`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'_`).
    Lifetime,
    /// Character or byte-character literal (`'x'`, `'\n'`, `b'\0'`).
    CharLit,
    /// String or byte-string literal with escape processing (`"…"`, `b"…"`).
    StrLit,
    /// Raw (byte) string literal (`r"…"`, `r#"…"#`, `br##"…"##`).
    RawStrLit,
    /// Numeric literal (integers, floats, any radix/suffix).
    NumLit,
    /// A single punctuation character (`.`, `!`, `:`, `{`, …).
    Punct,
    /// `// …` up to (not including) the newline.
    LineComment,
    /// `/* … */`, nesting handled.
    BlockComment,
}

/// One lexed token: kind plus its byte span and 1-based start position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column (in characters) of `start`.
    pub col: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// 1-based line of the token's **last** byte (differs from `line` for
    /// multi-line block comments and strings).
    pub fn end_line(&self, src: &str) -> u32 {
        self.line + src[self.start..self.end].matches('\n').count() as u32
    }
}

/// A lexical error with its position; the runner surfaces these as
/// diagnostics instead of silently skipping the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset where the current line starts, for column computation.
    line_start: usize,
}

/// Lexes a whole source file. Returns every token including comments;
/// whitespace is dropped. Errors on unterminated strings/comments/chars.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut out = Vec::new();
    while let Some(token) = lx.next_token()? {
        out.push(token);
    }
    Ok(out)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// The char starting at byte offset `pos + off` (must be a boundary).
    fn char_at(&self, off: usize) -> Option<char> {
        self.src[self.pos + off..].chars().next()
    }

    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes identifier-continue characters at the cursor.
    fn bump_ident_continue(&mut self) {
        while let Some(c) = self.char_at(0) {
            if is_ident_continue(c) {
                self.bump_n(c.len_utf8());
            } else {
                break;
            }
        }
    }

    fn col_at(&self, start: usize) -> u32 {
        self.src[self.line_start..start].chars().count() as u32 + 1
    }

    fn error(&self, start: usize, start_line: u32, message: &str) -> LexError {
        LexError {
            line: start_line,
            col: self.src[..start].rfind('\n').map_or_else(
                || self.src[..start].chars().count(),
                |nl| self.src[nl + 1..start].chars().count(),
            ) as u32
                + 1,
            message: message.to_string(),
        }
    }

    fn token(&self, kind: TokenKind, start: usize, line: u32, col: u32) -> Token {
        Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        // Skip whitespace.
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
        let Some(b) = self.peek() else {
            return Ok(None);
        };
        let start = self.pos;
        let line = self.line;
        let col = self.col_at(start);

        match b {
            b'/' if self.peek_at(1) == Some(b'/') => {
                while let Some(c) = self.peek() {
                    if c == b'\n' {
                        break;
                    }
                    self.bump();
                }
                Ok(Some(self.token(TokenKind::LineComment, start, line, col)))
            }
            b'/' if self.peek_at(1) == Some(b'*') => {
                self.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(), self.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            self.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            self.bump_n(2);
                        }
                        (Some(_), _) => self.bump(),
                        (None, _) => {
                            return Err(self.error(start, line, "unterminated block comment"))
                        }
                    }
                }
                Ok(Some(self.token(TokenKind::BlockComment, start, line, col)))
            }
            b'"' => {
                self.lex_string(start, line)?;
                Ok(Some(self.token(TokenKind::StrLit, start, line, col)))
            }
            b'\'' => self.lex_quote(start, line, col).map(Some),
            b'0'..=b'9' => {
                self.bump();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        self.bump();
                    } else if c == b'.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                        // `1.5`, but not the range `1..5` or method `1.pow`.
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Some(self.token(TokenKind::NumLit, start, line, col)))
            }
            _ => {
                let Some(c) = self.char_at(0) else {
                    return Ok(None); // unreachable: peek() saw a byte
                };
                if is_ident_start(c) {
                    self.lex_ident_or_prefixed(start, line, col)
                } else {
                    self.bump_n(c.len_utf8());
                    Ok(Some(self.token(TokenKind::Punct, start, line, col)))
                }
            }
        }
    }

    /// An identifier, or one of the literal prefixes `r`/`b`/`br` followed
    /// by a (raw) string or byte-char, or a raw identifier `r#ident`.
    fn lex_ident_or_prefixed(
        &mut self,
        start: usize,
        line: u32,
        col: u32,
    ) -> Result<Option<Token>, LexError> {
        // Consume the identifier characters first, then decide.
        let mut end = self.pos;
        for c in self.src[self.pos..].chars() {
            if is_ident_continue(c) {
                end += c.len_utf8();
            } else {
                break;
            }
        }
        let ident = &self.src[self.pos..end];
        let after = self.bytes.get(end).copied();

        match (ident, after) {
            ("r", Some(b'"')) | ("br", Some(b'"')) | ("r", Some(b'#')) | ("br", Some(b'#')) => {
                // Raw string — unless `r#` introduces a raw identifier.
                let prefix = ident.len();
                let mut hashes = 0usize;
                while self.peek_at(prefix + hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek_at(prefix + hashes) == Some(b'"') {
                    self.bump_n(prefix + hashes + 1);
                    self.lex_raw_string_body(start, line, hashes)?;
                    Ok(Some(self.token(TokenKind::RawStrLit, start, line, col)))
                } else if ident == "r" && hashes == 1 {
                    // Raw identifier `r#fn`.
                    self.bump_n(2);
                    self.bump_ident_continue();
                    Ok(Some(self.token(TokenKind::Ident, start, line, col)))
                } else {
                    Err(self.error(start, line, "malformed raw string prefix"))
                }
            }
            ("b", Some(b'"')) => {
                self.bump();
                self.lex_string(start, line)?;
                Ok(Some(self.token(TokenKind::StrLit, start, line, col)))
            }
            ("b", Some(b'\'')) => {
                self.bump();
                let t = self.lex_quote(start, line, col)?;
                if t.kind != TokenKind::CharLit {
                    return Err(self.error(start, line, "malformed byte literal"));
                }
                Ok(Some(Token { start, ..t }))
            }
            _ => {
                self.pos = end;
                Ok(Some(self.token(TokenKind::Ident, start, line, col)))
            }
        }
    }

    /// Body of a `"…"` string, starting at the opening quote.
    fn lex_string(&mut self, start: usize, line: u32) -> Result<(), LexError> {
        self.bump(); // opening quote
        loop {
            match self.peek() {
                Some(b'\\') => {
                    self.bump();
                    if self.peek().is_none() {
                        return Err(self.error(start, line, "unterminated string escape"));
                    }
                    self.bump();
                }
                Some(b'"') => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => self.bump(),
                None => return Err(self.error(start, line, "unterminated string literal")),
            }
        }
    }

    /// Body of a raw string after the opening `"`; ends at `"` + `hashes`
    /// hash characters.
    fn lex_raw_string_body(
        &mut self,
        start: usize,
        line: u32,
        hashes: usize,
    ) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b'"') => {
                    let mut n = 0usize;
                    while n < hashes && self.peek_at(1 + n) == Some(b'#') {
                        n += 1;
                    }
                    if n == hashes {
                        self.bump_n(1 + hashes);
                        return Ok(());
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
                None => return Err(self.error(start, line, "unterminated raw string literal")),
            }
        }
    }

    /// Disambiguates `'a'`/`'\n'`/`'('` char literals from `'a`/`'static`
    /// lifetimes, starting at the `'`.
    fn lex_quote(&mut self, start: usize, line: u32, col: u32) -> Result<Token, LexError> {
        self.bump(); // the quote
        match self.char_at(0) {
            Some('\\') => {
                // Escaped char literal: `'\n'`, `'\''`, `'\u{7FFF}'`. The
                // escaped character itself is consumed before scanning for
                // the terminator, so `'\''` closes on the *third* quote.
                self.bump();
                if let Some(c) = self.char_at(0) {
                    self.bump_n(c.len_utf8());
                }
                loop {
                    match self.peek() {
                        Some(b'\'') => {
                            self.bump();
                            return Ok(self.token(TokenKind::CharLit, start, line, col));
                        }
                        Some(_) => self.bump(),
                        None => {
                            return Err(self.error(start, line, "unterminated character literal"))
                        }
                    }
                }
            }
            Some(c) => {
                if self.char_at(c.len_utf8()) == Some('\'') {
                    // `'x'` — a char literal, even when `x` could start a
                    // lifetime (`'a'`, `'_'`).
                    self.bump_n(c.len_utf8() + 1);
                    Ok(self.token(TokenKind::CharLit, start, line, col))
                } else if is_ident_start(c) {
                    // A lifetime or loop label: consume the identifier.
                    self.bump_ident_continue();
                    Ok(self.token(TokenKind::Lifetime, start, line, col))
                } else {
                    // `'('` style char of a non-ident char not followed by
                    // a quote is malformed.
                    Err(self.error(start, line, "malformed character literal"))
                }
            }
            None => Err(self.error(start, line, "unterminated character literal")),
        }
    }
}
