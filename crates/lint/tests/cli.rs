//! End-to-end CLI tests: exit codes and output formats of the `ind-lint`
//! binary, run exactly as CI and the workspace meta-test run it.

use std::path::Path;
use std::process::{Command, Output};

fn ind_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ind-lint"))
        .args(args)
        .output()
        .expect("spawn ind-lint")
}

fn fixtures() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .display()
        .to_string()
}

fn workspace_root() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .display()
        .to_string()
}

#[test]
fn committed_tree_is_clean_exit_zero() {
    let out = ind_lint(&["check", "--root", &workspace_root()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the committed tree must lint clean:\n{stdout}"
    );
    assert!(stdout.contains("ind-lint: clean"), "{stdout}");
}

#[test]
fn seeded_fixtures_fail_with_exit_one() {
    let out = ind_lint(&["check", "--root", &fixtures()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // rustc-style rendering: error[<rule>] header plus file:line:col arrow.
    assert!(stdout.contains("error[hot_alloc]"), "{stdout}");
    assert!(stdout.contains("--> src/hot.rs:5:23"), "{stdout}");
    assert!(stdout.contains("12 findings"), "{stdout}");
}

#[test]
fn json_output_carries_every_finding() {
    let out = ind_lint(&["check", "--root", &fixtures(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("\"rule\":").count(), 12, "{stdout}");
    assert!(
        stdout.contains(r#""rule":"no_unwrap","file":"src/unwraps.rs","line":5"#),
        "{stdout}"
    );
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(
        ind_lint(&["check", "--root", "/nonexistent"]).status.code(),
        Some(2)
    );
    assert_eq!(ind_lint(&["bogus-command"]).status.code(), Some(2));
    assert_eq!(ind_lint(&[]).status.code(), Some(2));
}

#[test]
fn rules_subcommand_documents_the_escape_hatch() {
    let out = ind_lint(&["rules"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "hot_alloc",
        "no_unwrap",
        "safety_comment",
        "swallowed_result",
    ] {
        assert!(stdout.contains(rule), "{stdout}");
    }
    assert!(stdout.contains("lint: allow(<rule>)"), "{stdout}");
}
