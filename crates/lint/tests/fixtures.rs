//! Runs the checker against `fixtures/` — a tree that violates every rule
//! once per idiom — and asserts the exact finding set. Any drift here is a
//! behavior change in the linter itself.

use ind_lint::{check_workspace, Config};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture_findings() -> Vec<String> {
    let root = fixture_root();
    let text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let config = Config::parse(&text).unwrap();
    check_workspace(&root, &config)
        .unwrap()
        .iter()
        .map(|d| format!("{}:{}:{}:{}", d.rule, d.file, d.line, d.col))
        .collect()
}

#[test]
fn fixture_tree_produces_exactly_the_seeded_findings() {
    assert_eq!(
        fixture_findings(),
        vec![
            "hot_alloc:src/hot.rs:5:23",
            "hot_alloc:src/hot.rs:6:14",
            "hot_alloc:src/hot.rs:7:13",
            "hot_alloc:src/hot.rs:8:14",
            "swallowed_result:src/swallowed.rs:5:5",
            "swallowed_result:src/swallowed.rs:9:36",
            "safety_comment:src/unsafe_code.rs:5:5",
            "safety_comment:src/unsafe_code.rs:10:1",
            "safety_comment:src/unsafe_code.rs:35:20",
            "no_unwrap:src/unwraps.rs:5:6",
            "no_unwrap:src/unwraps.rs:9:6",
            "no_unwrap:src/unwraps.rs:13:5",
        ]
    );
}

#[test]
fn every_allow_annotation_suppresses_its_finding() {
    // Each fixture file carries one allow-annotation site; none of those
    // lines may appear in the findings, and none of the annotations may
    // be reported as unused.
    let findings = fixture_findings();
    assert!(
        !findings.iter().any(|f| f.starts_with("unused_allow")),
        "an allow annotation went unused: {findings:?}"
    );
    for suppressed in [
        "hot_alloc:src/hot.rs:14",
        "no_unwrap:src/unwraps.rs:18",
        "swallowed_result:src/swallowed.rs:14",
        "safety_comment:src/unsafe_code.rs:27",
    ] {
        assert!(
            !findings.iter().any(|f| f.starts_with(suppressed)),
            "{suppressed} should have been suppressed: {findings:?}"
        );
    }
}

#[test]
fn literals_comments_and_excluded_dirs_stay_silent() {
    // tricky.rs packs denied idioms into raw strings, escaped strings, and
    // nested block comments; ignored/ is excluded by the fixture config.
    let findings = fixture_findings();
    assert!(
        !findings.iter().any(|f| f.contains("tricky.rs")),
        "lexer misread a literal or comment as code: {findings:?}"
    );
    assert!(
        !findings.iter().any(|f| f.contains("ignored/")),
        "the exclude list was not honored: {findings:?}"
    );
}

#[test]
fn test_regions_relax_all_rules_except_safety_comment() {
    // hot.rs and unwraps.rs both end in #[cfg(test)] modules full of
    // violations (lines 28+ and 25+ respectively); those must stay silent,
    // while the bare unsafe in unsafe_code.rs's test module must not.
    let findings = fixture_findings();
    for f in &findings {
        let mut parts = f.split(':');
        let (rule, file, line) = (
            parts.next().unwrap(),
            parts.next().unwrap(),
            parts.next().unwrap().parse::<u32>().unwrap(),
        );
        let in_test_module = (file == "src/hot.rs" && line >= 28)
            || (file == "src/unwraps.rs" && line >= 25)
            || (file == "src/unsafe_code.rs" && line >= 30);
        assert!(
            !in_test_module || rule == "safety_comment",
            "only safety_comment applies inside test regions: {f}"
        );
    }
    assert!(
        findings.contains(&"safety_comment:src/unsafe_code.rs:35:20".to_string()),
        "safety_comment must fire even inside #[cfg(test)]: {findings:?}"
    );
}
