//! Edge-case coverage for the hand-rolled lexer: every construct the rule
//! engine must not misread — raw strings, nested block comments, the
//! char-vs-lifetime ambiguity, and escape sequences.

use ind_lint::lexer::{lex, TokenKind};

/// Lexes and returns `(kind, text)` pairs for compact assertions.
fn kinds(src: &str) -> Vec<(TokenKind, String)> {
    lex(src)
        .unwrap()
        .into_iter()
        .map(|t| (t.kind, t.text(src).to_string()))
        .collect()
}

#[test]
fn raw_strings_swallow_quotes_and_idioms() {
    use TokenKind::RawStrLit;
    assert_eq!(
        kinds(r###"r"a" r#".unwrap( "quoted" "# br##"b"# still"##"###),
        vec![
            (RawStrLit, r#"r"a""#.to_string()),
            (RawStrLit, r##"r#".unwrap( "quoted" "#"##.to_string()),
            (RawStrLit, r###"br##"b"# still"##"###.to_string()),
        ]
    );
}

#[test]
fn raw_string_fence_must_match_exactly() {
    // Two hashes open, so `"#` does not close — only `"##` does.
    let src = r####"r##"inner "# not done"## x"####;
    let toks = kinds(src);
    assert_eq!(toks[0].0, TokenKind::RawStrLit);
    assert_eq!(toks[0].1, r####"r##"inner "# not done"##"####);
    assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
}

#[test]
fn block_comments_nest() {
    let src = "/* outer /* inner .unwrap( */ still outer */ code";
    assert_eq!(
        kinds(src),
        vec![
            (
                TokenKind::BlockComment,
                "/* outer /* inner .unwrap( */ still outer */".to_string()
            ),
            (TokenKind::Ident, "code".to_string()),
        ]
    );
}

#[test]
fn unterminated_nested_comment_is_an_error() {
    let err = lex("/* outer /* inner */").unwrap_err();
    assert_eq!((err.line, err.col), (1, 1));
}

#[test]
fn char_literals_vs_lifetimes() {
    use TokenKind::{CharLit, Ident, Lifetime, Punct};
    assert_eq!(
        kinds("'a' 'a 'static '_' '_ b'x'"),
        vec![
            (CharLit, "'a'".to_string()),
            (Lifetime, "'a".to_string()),
            (Lifetime, "'static".to_string()),
            (CharLit, "'_'".to_string()),
            (Lifetime, "'_".to_string()),
            (CharLit, "b'x'".to_string()),
        ]
    );
    // A lifetime in a reference type followed by more tokens.
    assert_eq!(
        kinds("&'a str"),
        vec![
            (Punct, "&".to_string()),
            (Lifetime, "'a".to_string()),
            (Ident, "str".to_string()),
        ]
    );
}

#[test]
fn escaped_chars_terminate_correctly() {
    use TokenKind::CharLit;
    // The escaped quote/backslash must not be taken as the terminator.
    assert_eq!(
        kinds(r"'\'' '\\' '\n' b'\''"),
        vec![
            (CharLit, r"'\''".to_string()),
            (CharLit, r"'\\'".to_string()),
            (CharLit, r"'\n'".to_string()),
            (CharLit, r"b'\''".to_string()),
        ]
    );
}

#[test]
fn string_escapes_do_not_end_the_literal() {
    let src = r#""before \" .unwrap( after" tail"#;
    assert_eq!(
        kinds(src),
        vec![
            (
                TokenKind::StrLit,
                r#""before \" .unwrap( after""#.to_string()
            ),
            (TokenKind::Ident, "tail".to_string()),
        ]
    );
}

#[test]
fn line_comments_stop_at_newline() {
    use TokenKind::{Ident, LineComment};
    assert_eq!(
        kinds("// one .unwrap(\ncode // two\n"),
        vec![
            (LineComment, "// one .unwrap(".to_string()),
            (Ident, "code".to_string()),
            (LineComment, "// two".to_string()),
        ]
    );
}

#[test]
fn raw_identifiers_lex_as_idents() {
    assert_eq!(
        kinds("r#fn r#unsafe r"),
        vec![
            (TokenKind::Ident, "r#fn".to_string()),
            (TokenKind::Ident, "r#unsafe".to_string()),
            (TokenKind::Ident, "r".to_string()),
        ]
    );
}

#[test]
fn positions_are_one_based_lines_and_columns() {
    let src = "fn f() {\n    x.unwrap()\n}\n";
    let toks = lex(src).unwrap();
    let unwrap = toks
        .iter()
        .find(|t| t.text(src) == "unwrap")
        .expect("unwrap token");
    assert_eq!((unwrap.line, unwrap.col), (2, 7));
    // A multi-line token reports where it ends, for comment adjacency.
    let multi = "/* a\nb */ x";
    let toks = lex(multi).unwrap();
    assert_eq!(toks[0].end_line(multi), 2);
}

#[test]
fn unterminated_string_is_an_error() {
    assert!(lex("\"never closed").is_err());
    assert!(lex("'x").is_err() || matches!(lex("'x").unwrap()[0].kind, TokenKind::Lifetime));
    assert!(lex("r#\"never closed\"").is_err());
}
