//! Overlapped I/O: prefetch workers and the shared per-file read stream.
//!
//! Two producer/consumer pipelines built on the same bounded-channel
//! discipline (vendored crossbeam channels):
//!
//! * **Prefetch** ([`PrefetchReader`]) — when [`crate::IoOptions::prefetch`]
//!   is set, every [`crate::BlockReader`] opened by path hands its
//!   descriptor to a background worker that keeps the *next* block in
//!   flight while the engine consumes the current one. The handover is a
//!   whole-block buffer swap (the consumer's spent block travels back on a
//!   recycle channel), so the steady state allocates nothing and copies
//!   nothing. Fills served without waiting count as
//!   [`crate::ReadStats::prefetch_hits`]; fills that had to block for the
//!   worker count as [`crate::ReadStats::prefetch_stalls`]. Results are
//!   byte-identical to the synchronous path on every input — including
//!   truncated and corrupt files, whose errors surface on the consumer
//!   side with no hang and no partial record.
//!
//! * **Shared stream** ([`SharedStreamProvider`]) — partitioned SPIDER
//!   (`spiderpar`) used to open `k` independent descriptors per value
//!   file, one per partition, each reading the whole file and discarding
//!   everything outside its range. Because value files are sorted, the
//!   `k` partition ranges are *contiguous* in the file, so one physical
//!   reader per file can stream each partition its slice in order: a
//!   streamer thread parses records once and fans whole-record chunks out
//!   to per-partition bounded channels ([`PartitionCursor`]). Exactly one
//!   descriptor per file is opened regardless of `k` (observable via
//!   [`crate::ReadStats::file_opens`]).
//!
//! Deadlock freedom of the fan-out: a streamer produces partition ranges
//! in ascending order and only ever blocks sending to the *lowest*
//! unfinished partition, while partition 0's consumers never wait on any
//! other partition — so every wait chain strictly decreases in partition
//! index and terminates. Dropping a cursor early (SPIDER refutes most
//! streams quickly) disconnects its channel; the streamer skips that
//! partition's bytes and moves on, and exits entirely once every
//! partition is finished or abandoned.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use crossbeam::channel::{self, Receiver, Sender, TryRecvError};

use crate::block::{ReadStats, INITIAL_READAHEAD};
use crate::cursor::{ValueCursor, ValueSetProvider};
use crate::error::{Result, ValueSetError};
use crate::format::ValueFileReader;
use crate::frame::FrameStream;
use crate::manager::ExportedDatabase;
use crate::IoOptions;

/// Blocks in flight between a prefetch worker and its consumer: one in
/// the channel, one being consumed, one being filled — classic double
/// buffering with a single-slot mailbox.
const DATA_SLOTS: usize = 1;

/// Spent buffers queued back to the worker. At most two are ever in
/// flight (produced minus consumed), so four slots guarantee the consumer
/// never blocks recycling.
const RECYCLE_SLOTS: usize = 4;

/// Target chunk size of the shared stream's fan-out (capped at the file
/// size for small files). Chunks always end on record boundaries.
const STREAM_CHUNK_BYTES: usize = 64 * 1024;

/// Chunks buffered per partition channel of a shared stream.
const STREAM_SLOTS: usize = 2;

/// Record framing inside stream chunks: a little-endian `u32` length
/// prefix, mirroring the value-file layout.
const LEN_PREFIX: usize = 4;

// ---------------------------------------------------------------------
// Prefetch: one worker per reader, double-buffered block handover.
// ---------------------------------------------------------------------

enum WorkerMsg {
    /// A filled block (never empty).
    Chunk(Vec<u8>),
    /// Clean end of file; the worker has exited.
    Eof,
    /// Read failure; the worker has exited.
    Err(std::io::Error),
}

/// Consumer half of a prefetch pipeline: feeds a [`crate::BlockReader`]
/// from blocks a worker thread reads ahead of time.
///
/// The worker owns the file descriptor and is detached: it exits on EOF,
/// on a read error, or as soon as a send fails because this half was
/// dropped (the bounded channel wakes blocked senders on receiver drop),
/// so an early-closed cursor never wedges or leaks a busy thread.
pub(crate) struct PrefetchReader {
    data: Receiver<WorkerMsg>,
    recycle: Sender<Vec<u8>>,
    /// The block currently being consumed, and the copy-out cursor into it.
    pending: Vec<u8>,
    pos: usize,
    done: bool,
    stats: Option<ReadStats>,
}

impl std::fmt::Debug for PrefetchReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchReader")
            .field("pending", &self.pending.len())
            .field("pos", &self.pos)
            .field("done", &self.done)
            .finish()
    }
}

impl PrefetchReader {
    /// Moves `stream` (the checksum-verifying frame decoder over the
    /// descriptor) to a new worker thread that reads ahead in chunks of
    /// the worker's own adaptive readahead (starting at
    /// [`INITIAL_READAHEAD`], doubling per fill, capped at `cap` — the
    /// consumer's block capacity, so adopted blocks always fit). Frame
    /// verification therefore runs on the worker, overlapped with the
    /// consumer's compute; a checksum failure travels the same channel as
    /// any read error and surfaces on the consumer side. The worker bumps
    /// the shared fill counter for every read it issues.
    pub(crate) fn spawn(stream: FrameStream, cap: usize, stats: Option<ReadStats>) -> Self {
        let (data_tx, data_rx) = channel::bounded(DATA_SLOTS);
        let (recycle_tx, recycle_rx) = channel::bounded(RECYCLE_SLOTS);
        // lint: allow(hot_alloc) — once per open: the worker needs its own handle on the shared counters
        let worker_stats = stats.clone();
        std::thread::spawn(move || fill_loop(stream, cap, worker_stats, data_tx, recycle_rx));
        PrefetchReader {
            data: data_rx,
            recycle: recycle_tx,
            // lint: allow(hot_alloc) — once per open: an empty placeholder, replaced by the first block swap
            pending: Vec::new(),
            pos: 0,
            done: false,
            stats,
        }
    }

    /// Serves a [`crate::BlockReader`] fill: appends up to `want` bytes to
    /// `buf` — or, when `buf` is fully consumed, swaps the worker's whole
    /// block in for free. Returns the bytes delivered; `Ok(0)` only at
    /// end of file. Every block handover is counted as a prefetch hit
    /// (block was already waiting) or stall (had to block for the
    /// worker).
    pub(crate) fn fill(&mut self, buf: &mut Vec<u8>, want: usize) -> std::io::Result<usize> {
        if self.pos == self.pending.len() {
            if self.done {
                return Ok(0);
            }
            let msg = match self.data.try_recv() {
                Ok(msg) => {
                    if let Some(stats) = &self.stats {
                        stats.bump_prefetch_hit();
                    }
                    msg
                }
                Err(TryRecvError::Empty) => {
                    if let Some(stats) = &self.stats {
                        stats.bump_prefetch_stall();
                    }
                    // The consumer outran the disk: the blocking handover is
                    // the overlap budget being spent, so it gets its own span —
                    // but only under an open parent. Detached streamer threads
                    // stall here too, and recording from each would cost a whole
                    // event ring per file just to hold orphan roots; their
                    // stalls stay visible through `prefetch_stalls`.
                    let _span = (!ind_trace::current_parent().is_root())
                        .then(|| ind_trace::start(ind_trace::PREFETCH_WAIT));
                    match self.data.recv() {
                        Ok(msg) => msg,
                        Err(channel::RecvError) => return Err(worker_vanished()),
                    }
                }
                Err(TryRecvError::Disconnected) => return Err(worker_vanished()),
            };
            match msg {
                WorkerMsg::Chunk(chunk) => {
                    let spent = std::mem::replace(&mut self.pending, chunk);
                    self.pos = 0;
                    // lint: allow(swallowed_result) — worker already exited (EOF or error): the spent buffer just drops
                    let _ = self.recycle.send(spent);
                }
                WorkerMsg::Eof => {
                    self.done = true;
                    return Ok(0);
                }
                WorkerMsg::Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            }
        }
        if buf.is_empty() && self.pos == 0 {
            // Whole-block adoption: the consumer's spent buffer and the
            // worker's filled block trade places — no copy. The spent
            // buffer rides back to the worker on the next handover.
            std::mem::swap(buf, &mut self.pending);
            return Ok(buf.len());
        }
        let n = want.min(self.pending.len() - self.pos);
        buf.extend_from_slice(&self.pending[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn worker_vanished() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "prefetch worker terminated unexpectedly",
    )
}

/// The prefetch worker: reads ahead at its own adaptive pace, recycling
/// the consumer's spent buffers so the steady state is allocation-free.
fn fill_loop(
    mut file: FrameStream,
    cap: usize,
    stats: Option<ReadStats>,
    data: Sender<WorkerMsg>,
    recycle: Receiver<Vec<u8>>,
) {
    use std::io::Read;
    let cap = cap.max(1);
    let mut readahead = INITIAL_READAHEAD.clamp(1, cap);
    loop {
        let mut buf = recycle.try_recv().unwrap_or_default();
        buf.clear();
        let want = readahead as u64;
        readahead = (readahead * 2).min(cap);
        let outcome = (&mut file).take(want).read_to_end(&mut buf);
        if let Some(stats) = &stats {
            stats.bump();
        }
        match outcome {
            Err(e) => {
                // lint: allow(swallowed_result) — send fails only when the consumer is gone: no one left to tell
                let _ = data.send(WorkerMsg::Err(e));
                return;
            }
            Ok(0) => {
                // lint: allow(swallowed_result) — send fails only when the consumer is gone: no one left to tell
                let _ = data.send(WorkerMsg::Eof);
                return;
            }
            Ok(_) => {
                if data.send(WorkerMsg::Chunk(buf)).is_err() {
                    return; // consumer dropped the reader mid-stream
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shared stream: one physical reader per file, fanned out to partitions.
// ---------------------------------------------------------------------

enum StreamMsg {
    /// Whole records (length-prefixed), never splitting a record.
    Chunk(Vec<u8>),
    /// This partition's range is complete.
    Done,
    /// The stream failed; the detail is the stringified read error.
    Failed(String),
}

/// A cursor over one partition's contiguous slice of a shared file
/// stream. Implements [`ValueCursor`], so partitioned SPIDER consumes it
/// exactly like a private [`ValueFileReader`] — typically wrapped in a
/// [`crate::RangeCursor`] as a defensive range clamp.
///
/// [`ValueCursor::remaining`] is an upper bound (the file's total
/// cardinality minus values produced here): a partition does not know its
/// own share ahead of time. `advance` remains exact; the engines this
/// feeds only rely on `remaining` reaching zero no later than the stream.
pub struct PartitionCursor {
    rx: Receiver<StreamMsg>,
    /// The backing file's display path, for error context.
    context: String,
    chunk: Vec<u8>,
    pos: usize,
    cur_offset: usize,
    cur_len: usize,
    total: u64,
    produced: u64,
    done: bool,
}

impl PartitionCursor {
    fn stream_corrupt(&self, detail: String) -> ValueSetError {
        ValueSetError::Corrupt {
            // lint: allow(hot_alloc) — cold error path
            context: self.context.clone(),
            detail,
        }
    }
}

impl ValueCursor for PartitionCursor {
    fn advance(&mut self) -> Result<bool> {
        if self.done {
            return Ok(false);
        }
        if self.pos == self.chunk.len() {
            match self.rx.recv() {
                Ok(StreamMsg::Chunk(chunk)) => {
                    self.chunk = chunk;
                    self.pos = 0;
                }
                Ok(StreamMsg::Done) => {
                    self.done = true;
                    return Ok(false);
                }
                Ok(StreamMsg::Failed(detail)) => {
                    self.done = true;
                    return Err(self.stream_corrupt(detail));
                }
                Err(channel::RecvError) => {
                    self.done = true;
                    return Err(
                        self.stream_corrupt("shared stream worker terminated unexpectedly".into())
                    );
                }
            }
        }
        let rest = &self.chunk[self.pos..];
        if rest.len() < LEN_PREFIX {
            return Err(self.stream_corrupt("stream chunk split a length prefix".into()));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if rest.len() < LEN_PREFIX + len {
            return Err(self.stream_corrupt("stream chunk split a record".into()));
        }
        self.cur_offset = self.pos + LEN_PREFIX;
        self.cur_len = len;
        self.pos += LEN_PREFIX + len;
        self.produced += 1;
        Ok(true)
    }

    fn current(&self) -> &[u8] {
        &self.chunk[self.cur_offset..self.cur_offset + self.cur_len]
    }

    fn remaining(&self) -> u64 {
        if self.done {
            0
        } else {
            self.total.saturating_sub(self.produced)
        }
    }

    fn len(&self) -> u64 {
        self.total
    }
}

/// The per-file streamer's fan-out targets: senders become `None` once
/// their partition is finished (`Done` sent) or abandoned (receiver
/// dropped), and the streamer exits when none are left.
struct Fanout {
    senders: Vec<Option<Sender<StreamMsg>>>,
    alive: usize,
}

impl Fanout {
    fn new(senders: Vec<Option<Sender<StreamMsg>>>) -> Fanout {
        let alive = senders.len();
        Fanout { senders, alive }
    }

    fn is_open(&self, p: usize) -> bool {
        self.senders[p].is_some()
    }

    fn send_chunk(&mut self, p: usize, chunk: Vec<u8>) {
        if let Some(tx) = &self.senders[p] {
            if tx.send(StreamMsg::Chunk(chunk)).is_err() {
                // Receiver dropped: the partition closed its cursor early.
                self.senders[p] = None;
                self.alive -= 1;
            }
        }
    }

    fn close(&mut self, p: usize) {
        if let Some(tx) = self.senders[p].take() {
            self.alive -= 1;
            // lint: allow(swallowed_result) — a dropped receiver needs no Done marker
            let _ = tx.send(StreamMsg::Done);
        }
    }

    /// Fails every still-open partition from `p` on. Earlier partitions
    /// already received their complete range and a `Done`.
    fn fail_from(&mut self, p: usize, detail: &str) {
        for q in p..self.senders.len() {
            if let Some(tx) = self.senders[q].take() {
                self.alive -= 1;
                // lint: allow(swallowed_result) — a dropped receiver needs no failure marker
                let _ = tx.send(StreamMsg::Failed(detail.to_string())); // lint: allow(hot_alloc) — cold error path
            }
        }
    }
}

/// Everything a streamer thread owns, so it is `'static` and detached:
/// it exits on EOF, on error, or as soon as every partition is finished
/// or abandoned (all sends fail once the provider is dropped).
struct StreamerTask {
    path: PathBuf,
    io: IoOptions,
    stats: Option<ReadStats>,
    file_bytes: u64,
    boundaries: Arc<Vec<Vec<u8>>>,
    fanout: Fanout,
}

fn run_streamer(task: StreamerTask) {
    let StreamerTask {
        path,
        io,
        stats,
        file_bytes,
        boundaries,
        mut fanout,
    } = task;
    let reader = ValueFileReader::open_sized(&path, &io, None, stats, file_bytes);
    let mut reader = match reader {
        Ok(reader) => reader,
        Err(e) => {
            // lint: allow(hot_alloc) — cold error path
            fanout.fail_from(0, &e.to_string());
            return;
        }
    };
    let chunk_cap =
        STREAM_CHUNK_BYTES.min(usize::try_from(file_bytes).unwrap_or(usize::MAX).max(64));
    let mut staging: Vec<u8> = Vec::with_capacity(chunk_cap);
    let mut p = 0usize;
    loop {
        match reader.advance() {
            Err(e) => {
                // Staged-but-unflushed records are dropped on purpose: the
                // consumer must see the failure, never a partial stream
                // that looks complete.
                // lint: allow(hot_alloc) — cold error path
                fanout.fail_from(p, &e.to_string());
                return;
            }
            Ok(false) => {
                flush(&mut fanout, p, &mut staging, chunk_cap);
                for q in p..boundaries.len() + 1 {
                    fanout.close(q);
                }
                return;
            }
            Ok(true) => {
                let value = reader.current();
                while p < boundaries.len() && value >= boundaries[p].as_slice() {
                    flush(&mut fanout, p, &mut staging, chunk_cap);
                    fanout.close(p);
                    p += 1;
                }
                if fanout.is_open(p) {
                    let len = value.len() as u32;
                    staging.extend_from_slice(&len.to_le_bytes());
                    staging.extend_from_slice(value);
                    if staging.len() >= chunk_cap {
                        flush(&mut fanout, p, &mut staging, chunk_cap);
                    }
                } else {
                    staging.clear();
                }
                if fanout.alive == 0 {
                    return; // every partition finished or abandoned
                }
            }
        }
    }
}

fn flush(fanout: &mut Fanout, p: usize, staging: &mut Vec<u8>, chunk_cap: usize) {
    if staging.is_empty() || !fanout.is_open(p) {
        staging.clear();
        return;
    }
    let chunk = std::mem::replace(staging, Vec::with_capacity(chunk_cap));
    fanout.send_chunk(p, chunk);
}

/// One shared physical read stream per value file, fanned out to `k`
/// range partitions.
///
/// Built over an [`ExportedDatabase`] and the same partition boundaries
/// the partitioned SPIDER engine uses: partition `p` covers values in
/// `[boundaries[p-1], boundaries[p])` (unbounded at the ends). The first
/// [`SharedShard::open`] of an attribute lazily spawns that file's
/// streamer thread; each partition's cursor can be taken exactly once.
pub struct SharedStreamProvider<'e> {
    export: &'e ExportedDatabase,
    boundaries: Arc<Vec<Vec<u8>>>,
    partitions: usize,
    slots: Mutex<Vec<Vec<Option<PartitionCursor>>>>,
}

impl<'e> SharedStreamProvider<'e> {
    /// A provider over `export` with the given range boundaries
    /// (`boundaries.len() + 1` partitions).
    pub fn new(export: &'e ExportedDatabase, boundaries: Vec<Vec<u8>>) -> Self {
        let partitions = boundaries.len() + 1;
        let mut slots = Vec::with_capacity(export.attributes().len());
        for _ in 0..export.attributes().len() {
            // lint: allow(hot_alloc) — once per provider: empty lazy slot, filled on first open
            slots.push(Vec::new());
        }
        SharedStreamProvider {
            export,
            boundaries: Arc::new(boundaries),
            partitions,
            slots: Mutex::new(slots),
        }
    }

    /// Number of range partitions this provider fans out to.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The provider view of one partition.
    pub fn shard(&self, partition: usize) -> SharedShard<'_, 'e> {
        SharedShard {
            provider: self,
            partition,
        }
    }

    fn open_partition(&self, id: u32, partition: usize) -> Result<PartitionCursor> {
        let mut slots = lock(&self.slots);
        let attr_slots = slots
            .get_mut(id as usize)
            .ok_or(ValueSetError::UnknownAttribute(id))?;
        if attr_slots.is_empty() {
            *attr_slots = self.spawn_stream(id)?;
        }
        attr_slots[partition]
            .take()
            .ok_or_else(|| ValueSetError::Corrupt {
                // lint: allow(hot_alloc) — cold error path
                context: format!("shared stream for attribute {id}"),
                // lint: allow(hot_alloc) — cold error path
                detail: format!("partition {partition} cursor was already taken"),
            })
    }

    fn spawn_stream(&self, id: u32) -> Result<Vec<Option<PartitionCursor>>> {
        let attr = self
            .export
            .attribute(id)
            .ok_or(ValueSetError::UnknownAttribute(id))?;
        let mut senders = Vec::with_capacity(self.partitions);
        let mut cursors = Vec::with_capacity(self.partitions);
        for _ in 0..self.partitions {
            let (tx, rx) = channel::bounded(STREAM_SLOTS);
            senders.push(Some(tx));
            cursors.push(Some(PartitionCursor {
                rx,
                // lint: allow(hot_alloc) — once per stream: error context for the cursor's lifetime
                context: attr.path.display().to_string(),
                // lint: allow(hot_alloc) — once per stream: replaced by the first streamed chunk
                chunk: Vec::new(),
                pos: 0,
                cur_offset: 0,
                cur_len: 0,
                total: attr.distinct,
                produced: 0,
                done: false,
            }));
        }
        let task = StreamerTask {
            // lint: allow(hot_alloc) — once per stream: the detached streamer must own its inputs
            path: attr.path.clone(),
            // lint: allow(hot_alloc) — once per stream: the detached streamer must own its inputs
            io: self.export.io_options().clone(),
            stats: Some(self.export.read_stats()),
            file_bytes: attr.file_bytes,
            boundaries: Arc::clone(&self.boundaries),
            fanout: Fanout::new(senders),
        };
        std::thread::spawn(move || run_streamer(task));
        Ok(cursors)
    }
}

/// One partition's [`ValueSetProvider`] view of a [`SharedStreamProvider`].
pub struct SharedShard<'p, 'e> {
    provider: &'p SharedStreamProvider<'e>,
    partition: usize,
}

impl ValueSetProvider for SharedShard<'_, '_> {
    type Cursor = PartitionCursor;

    fn open(&self, id: u32) -> Result<PartitionCursor> {
        self.provider.open_partition(id, self.partition)
    }

    fn attribute_count(&self) -> usize {
        self.provider.export.attributes().len()
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned slot table only means another partition's open panicked;
    // the cursors themselves stay coherent (each is taken at most once).
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_cursor;
    use crate::format::write_value_file;
    use crate::manager::{ExportOptions, ExportedDatabase};
    use ind_storage::{ColumnSchema, DataType, Database, Table, TableSchema};
    use ind_testkit::TempDir;

    fn sample_export(dir: &std::path::Path, io: IoOptions) -> ExportedDatabase {
        let mut db = Database::new("prefetch-test");
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnSchema::new("id", DataType::Integer)
                        .not_null()
                        .unique(),
                    ColumnSchema::new("label", DataType::Text),
                ],
            )
            .unwrap(),
        );
        for i in 0..200i64 {
            t.insert(vec![i.into(), format!("label-{:03}", i % 37).into()])
                .unwrap();
        }
        db.add_table(t).unwrap();
        let mut options = ExportOptions::default();
        options.sort.io = io;
        ExportedDatabase::export(&db, dir, &options).unwrap()
    }

    fn read_all(path: &std::path::Path, options: &IoOptions) -> Vec<Vec<u8>> {
        collect_cursor(ValueFileReader::open_with_options(path, options).unwrap()).unwrap()
    }

    #[test]
    fn prefetched_reads_are_byte_identical() {
        let dir = TempDir::new("prefetch-identity");
        let path = dir.join("vals.ind");
        let values: Vec<Vec<u8>> = (0..500u32)
            .map(|i| format!("value-{i:05}").into_bytes())
            .collect();
        write_value_file(&path, &values).unwrap();
        for block_size in [1usize, 17, 64, 4096] {
            let plain = read_all(&path, &IoOptions::with_block_size(block_size));
            let fetched = read_all(
                &path,
                &IoOptions::with_block_size(block_size).prefetched(true),
            );
            assert_eq!(plain, fetched, "block_size={block_size}");
            assert_eq!(plain, values);
        }
    }

    #[test]
    fn prefetch_counts_hits_and_stalls() {
        let dir = TempDir::new("prefetch-stats");
        let path = dir.join("vals.ind");
        let values: Vec<Vec<u8>> = (0..300u32)
            .map(|i| format!("v{i:04}").into_bytes())
            .collect();
        write_value_file(&path, &values).unwrap();
        let stats = ReadStats::new();
        let reader = ValueFileReader::open_with(
            &path,
            &IoOptions::with_block_size(64).prefetched(true),
            None,
            Some(stats.clone()),
        )
        .unwrap();
        assert_eq!(collect_cursor(reader).unwrap(), values);
        let fills = stats.prefetch_hits() + stats.prefetch_stalls();
        assert!(fills > 0, "prefetched fills must be counted");
        assert!(
            stats.read_calls() > 0,
            "the worker's physical reads land in the shared counter"
        );
        assert_eq!(stats.file_opens(), 1);
    }

    #[test]
    fn prefetch_surfaces_truncation_and_never_hangs() {
        let dir = TempDir::new("prefetch-truncated");
        let path = dir.join("vals.ind");
        let values: Vec<Vec<u8>> = (0..20u32)
            .map(|i| format!("tv{i:02}").into_bytes())
            .collect();
        write_value_file(&path, &values).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Every cut past the header must fail on the consumer side.
        for cut in 16..full.len() {
            let trunc = dir.join("trunc.ind");
            std::fs::write(&trunc, &full[..cut]).unwrap();
            let options = IoOptions::with_block_size(32).prefetched(true);
            let outcome =
                ValueFileReader::open_with_options(&trunc, &options).and_then(collect_cursor);
            assert!(outcome.is_err(), "cut at {cut} must surface an error");
        }
    }

    #[test]
    fn early_drop_terminates_the_worker_cleanly() {
        let dir = TempDir::new("prefetch-early-drop");
        let path = dir.join("vals.ind");
        let values: Vec<Vec<u8>> = (0..5000u32)
            .map(|i| format!("padded-value-{i:08}").into_bytes())
            .collect();
        write_value_file(&path, &values).unwrap();
        let options = IoOptions::with_block_size(256).prefetched(true);
        let mut reader = ValueFileReader::open_with_options(&path, &options).unwrap();
        assert!(reader.advance().unwrap());
        drop(reader); // must not hang on the worker's in-flight block
    }

    fn boundaries_for(export: &ExportedDatabase, id: u32, k: usize) -> Vec<Vec<u8>> {
        // Evenly split the attribute's sorted values into k ranges.
        let values = collect_cursor(export.open(id).unwrap()).unwrap();
        (1..k)
            .map(|i| values[i * values.len() / k].clone())
            .collect()
    }

    #[test]
    fn shared_stream_partitions_concatenate_to_the_file() {
        let dir = TempDir::new("shared-stream");
        let export = sample_export(dir.path(), IoOptions::with_block_size(512));
        for id in 0..export.attributes().len() as u32 {
            let expected = collect_cursor(export.open(id).unwrap()).unwrap();
            let boundaries = boundaries_for(&export, id, 3);
            let provider = SharedStreamProvider::new(&export, boundaries.clone());
            let mut streamed = Vec::new();
            for p in 0..provider.partitions() {
                let part = collect_cursor(provider.shard(p).open(id).unwrap()).unwrap();
                // Every value lands in its own partition's range.
                for v in &part {
                    if p > 0 {
                        assert!(v.as_slice() >= boundaries[p - 1].as_slice());
                    }
                    if p < boundaries.len() {
                        assert!(v.as_slice() < boundaries[p].as_slice());
                    }
                }
                streamed.extend(part);
            }
            assert_eq!(streamed, expected, "attribute {id}");
        }
    }

    #[test]
    fn shared_stream_opens_one_descriptor_per_file() {
        let dir = TempDir::new("shared-stream-opens");
        let export = sample_export(dir.path(), IoOptions::with_block_size(512));
        let boundaries = boundaries_for(&export, 0, 4);
        export.reset_read_calls();
        let provider = SharedStreamProvider::new(&export, boundaries);
        let mut all = Vec::new();
        for p in 0..provider.partitions() {
            all.extend(collect_cursor(provider.shard(p).open(0).unwrap()).unwrap());
        }
        assert!(!all.is_empty());
        assert_eq!(
            export.file_opens(),
            1,
            "four partitions share one physical descriptor"
        );
    }

    #[test]
    fn shared_stream_survives_abandoned_partitions() {
        let dir = TempDir::new("shared-stream-abandon");
        let export = sample_export(dir.path(), IoOptions::with_block_size(128));
        let boundaries = boundaries_for(&export, 0, 3);
        let provider = SharedStreamProvider::new(&export, boundaries);
        // Partition 1 is opened and immediately dropped; 0 and 2 must
        // still stream their complete ranges.
        let c0 = provider.shard(0).open(0).unwrap();
        drop(provider.shard(1).open(0).unwrap());
        let c2 = provider.shard(2).open(0).unwrap();
        let full = collect_cursor(export.open(0).unwrap()).unwrap();
        let head = collect_cursor(c0).unwrap();
        let tail = collect_cursor(c2).unwrap();
        assert!(!head.is_empty() && !tail.is_empty());
        assert_eq!(head.as_slice(), &full[..head.len()]);
        assert_eq!(tail.as_slice(), &full[full.len() - tail.len()..]);
    }

    #[test]
    fn shared_stream_rejects_double_take_and_unknown_attribute() {
        let dir = TempDir::new("shared-stream-errors");
        let export = sample_export(dir.path(), IoOptions::default());
        let provider = SharedStreamProvider::new(&export, Vec::new());
        assert!(matches!(
            provider.shard(0).open(999),
            Err(ValueSetError::UnknownAttribute(999))
        ));
        let _kept = provider.shard(0).open(0).unwrap();
        assert!(provider.shard(0).open(0).is_err(), "cursor taken twice");
    }

    #[test]
    fn shared_stream_fans_a_corrupt_file_out_as_errors() {
        let dir = TempDir::new("shared-stream-corrupt");
        let export = sample_export(dir.path(), IoOptions::with_block_size(64));
        // Truncate attribute 0's backing file mid-record.
        let attr = export.attribute(0).unwrap().clone();
        let full = std::fs::read(&attr.path).unwrap();
        std::fs::write(&attr.path, &full[..full.len() - 3]).unwrap();
        let boundaries = boundaries_for(&export, 1, 2); // boundaries from attr 1
        let provider = SharedStreamProvider::new(&export, boundaries);
        let mut failures = 0;
        for p in 0..provider.partitions() {
            if collect_cursor(provider.shard(p).open(0).unwrap()).is_err() {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "truncation must surface on at least one partition"
        );
    }
}
