//! The value-file format v2 frame layer: CRC-verified 4 KiB frames.
//!
//! Format v1 is a raw stream — any flipped bit or torn write that keeps
//! the length prefixes self-consistent is served as *data*. Version 2
//! wraps the identical logical stream in checksummed frames so corruption
//! is detected before a single byte reaches a consumer:
//!
//! ```text
//! header  "INDV" | version=2 u32 LE | count u64 LE | header CRC32C u32 LE   20 B
//! frame*  payload_len u16 LE (1..=4096) | payload | CRC32C(payload) u32 LE
//! footer  0xFFFF u16 | count u64 LE | payload bytes u64 LE
//!         | CRC32C(frame-CRC words) u32 LE | "INDF"                        26 B
//! ```
//!
//! Every frame except the last carries exactly [`FRAME_PAYLOAD`] payload
//! bytes, so the logical stream (and therefore the bytes a
//! [`crate::ValueFileReader`] sees) is independent of the I/O block size —
//! v1's byte-identity guarantees survive. The footer's sentinel length
//! `0xFFFF` is unreachable by a real frame, so truncation at a frame
//! boundary is "file ends before the footer", not silence; its whole-file
//! checksum is a CRC *of the frame CRCs*, giving end-to-end coverage for
//! one extra pass over 4 bytes per frame.
//!
//! [`FrameStream`] is the decoder: a [`Read`] adapter between the
//! fault-injectable [`FaultFile`] and [`crate::BlockReader`] that sniffs
//! the header (v1 and foreign files pass through untouched), buffers one
//! frame at a time, verifies its CRC, and only then serves the payload.
//! Verification therefore happens *below* the block buffer: the prefetch
//! worker reads through a `FrameStream`, so checksum work overlaps with
//! consumer-side compute for free, and a corrupt frame surfaces on the
//! consumer side as an error — never as wrong bytes, never as a hang.

use std::io::{self, Read};

use crate::block::ReadStats;
use crate::crc32c::{crc32c, Crc32c};
use crate::fault::FaultFile;

/// Format v2 header length: v1's 16-byte header plus a header CRC.
pub(crate) const V2_HEADER_LEN: usize = 20;

/// The version number that selects the frame layer.
pub(crate) const V2_VERSION: u32 = 2;

/// Payload bytes per full frame. Fixed (not tied to the I/O block size)
/// so the logical stream is block-size-independent.
pub(crate) const FRAME_PAYLOAD: usize = 4096;

/// Frame length-prefix bytes.
pub(crate) const FRAME_LEN_PREFIX: usize = 2;

/// Frame trailer: the payload's CRC32C.
pub(crate) const FRAME_CRC_LEN: usize = 4;

/// Length-prefix value marking the footer. A real frame's length is at
/// most [`FRAME_PAYLOAD`], so the sentinel is unreachable by data.
pub(crate) const FOOTER_SENTINEL: u16 = 0xFFFF;

/// Footer bytes after the sentinel: count, payload bytes, whole-file
/// CRC, closing magic.
pub(crate) const FOOTER_BODY_LEN: usize = 8 + 8 + 4 + 4;

/// Closing magic sealing a complete v2 file.
pub(crate) const FOOTER_MAGIC: &[u8; 4] = b"INDF";

/// Physical bytes a v2 file spends on framing beyond the v1 layout
/// (16-byte header + payload): the physical size of a v2 file holding
/// `payload` logical bytes is `HEADER_LEN + payload + v2_overhead(payload)`.
pub(crate) fn v2_overhead(payload: u64) -> u64 {
    let frames = payload.div_ceil(FRAME_PAYLOAD as u64);
    let per_frame = (FRAME_LEN_PREFIX + FRAME_CRC_LEN) as u64;
    (V2_HEADER_LEN - crate::format::HEADER_LEN) as u64
        + frames * per_frame
        + (FRAME_LEN_PREFIX + FOOTER_BODY_LEN) as u64
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Header not yet inspected.
    Sniff,
    /// Not a v2 file: bytes flow through untouched (v1, foreign data).
    Passthrough,
    /// Decoding v2 frames.
    Frames,
    /// Footer consumed and verified: the logical stream has ended.
    Finished,
}

/// A [`Read`] adapter that strips and verifies v2 framing (and passes
/// anything else through). The logical stream it serves for a v2 file is
/// the 20-byte header followed by the pure payload — exactly what the
/// format layer parses — and no payload byte is served before its frame's
/// checksum has been verified.
#[derive(Debug)]
pub(crate) struct FrameStream {
    file: FaultFile,
    mode: Mode,
    /// Sniffed header bytes, served before anything else.
    head: [u8; V2_HEADER_LEN],
    head_len: usize,
    head_pos: usize,
    /// One decoded frame's payload (v2 mode only; allocated lazily once).
    stage: Vec<u8>,
    stage_len: usize,
    stage_pos: usize,
    verify: bool,
    frames_seen: u64,
    payload_seen: u64,
    /// Absolute file offset of the next frame's length prefix.
    raw_pos: u64,
    /// Record count from the header, cross-checked against the footer.
    header_count: u64,
    /// Running CRC over the frames' stored CRC words.
    crc_chain: Crc32c,
    stats: Option<ReadStats>,
}

impl FrameStream {
    pub(crate) fn new(file: FaultFile, verify: bool, stats: Option<ReadStats>) -> FrameStream {
        FrameStream {
            file,
            mode: Mode::Sniff,
            head: [0; V2_HEADER_LEN],
            head_len: 0,
            head_pos: 0,
            // lint: allow(hot_alloc) — empty placeholder; sized lazily on the first v2 frame
            stage: Vec::new(),
            stage_len: 0,
            stage_pos: 0,
            verify,
            frames_seen: 0,
            payload_seen: 0,
            raw_pos: V2_HEADER_LEN as u64,
            header_count: 0,
            crc_chain: Crc32c::new(),
            stats,
        }
    }

    fn corrupt(&self, detail: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            // lint: allow(hot_alloc) — cold error path
            format!(
                "value file {}: frame {} (file offset {}): {detail}",
                self.file.path().display(),
                self.frames_seen,
                self.raw_pos,
            ),
        )
    }

    /// Reads the first (up to) 20 bytes and decides the mode.
    fn sniff(&mut self) -> io::Result<()> {
        debug_assert_eq!(self.mode, Mode::Sniff);
        self.head_len = read_full(&mut self.file, &mut self.head)?;
        let v2 = self.head_len == V2_HEADER_LEN
            && &self.head[..4] == crate::format::MAGIC
            && u32::from_le_bytes([self.head[4], self.head[5], self.head[6], self.head[7]])
                == V2_VERSION;
        if v2 {
            self.header_count = u64::from_le_bytes(
                self.head[8..16].try_into().expect("8-byte slice"), // lint: allow(no_unwrap) — fixed-size slice of a fixed-size array
            );
            self.mode = Mode::Frames;
        } else {
            // Header integrity for v2 is the reader's job (it has the
            // error context); everything non-v2 is served verbatim.
            self.mode = Mode::Passthrough;
        }
        Ok(())
    }

    /// Decodes the next frame into the stage (or consumes the footer).
    /// Returns the staged payload length; 0 means the stream has ended.
    fn load_frame(&mut self) -> io::Result<usize> {
        self.stage_pos = 0;
        self.stage_len = 0;
        if self.stage.len() < FRAME_PAYLOAD + FRAME_CRC_LEN {
            // One-time stage allocation per v2 reader, zero-filled once.
            self.stage.resize(FRAME_PAYLOAD + FRAME_CRC_LEN, 0);
        }
        let mut len_buf = [0u8; FRAME_LEN_PREFIX];
        match read_full(&mut self.file, &mut len_buf)? {
            0 => return Err(self.corrupt("file ends before the footer (truncated)")),
            FRAME_LEN_PREFIX => {}
            _ => return Err(self.corrupt("file ends inside a frame length prefix")),
        }
        let len = u16::from_le_bytes(len_buf);
        if len == FOOTER_SENTINEL {
            self.read_footer()?;
            self.mode = Mode::Finished;
            return Ok(0);
        }
        let len = len as usize;
        if len == 0 || len > FRAME_PAYLOAD {
            return Err(self.corrupt("invalid frame payload length"));
        }
        let body = &mut self.stage[..len + FRAME_CRC_LEN];
        let got = read_full(&mut self.file, body)?;
        if got < body.len() {
            return Err(self.corrupt("file ends inside a frame"));
        }
        let stored = &body[len..];
        if self.verify {
            let computed = crc32c(&body[..len]);
            let stored_word = u32::from_le_bytes(stored.try_into().expect("4-byte slice")); // lint: allow(no_unwrap) — slice is exactly FRAME_CRC_LEN bytes
            if computed != stored_word {
                if let Some(stats) = &self.stats {
                    stats.bump_checksum_failure();
                }
                return Err(self.corrupt("frame checksum mismatch"));
            }
        }
        self.crc_chain.update(stored);
        self.frames_seen += 1;
        self.payload_seen += len as u64;
        self.raw_pos += (FRAME_LEN_PREFIX + len + FRAME_CRC_LEN) as u64;
        self.stage_len = len;
        Ok(len)
    }

    /// Reads and (when verifying) checks the 24 footer bytes after the
    /// sentinel.
    fn read_footer(&mut self) -> io::Result<()> {
        let mut footer = [0u8; FOOTER_BODY_LEN];
        if read_full(&mut self.file, &mut footer)? < FOOTER_BODY_LEN {
            return Err(self.corrupt("file ends inside the footer"));
        }
        if !self.verify {
            return Ok(());
        }
        let count = u64::from_le_bytes(footer[0..8].try_into().expect("8-byte slice")); // lint: allow(no_unwrap) — fixed-size slice
        let payload = u64::from_le_bytes(footer[8..16].try_into().expect("8-byte slice")); // lint: allow(no_unwrap) — fixed-size slice
        let whole = u32::from_le_bytes(footer[16..20].try_into().expect("4-byte slice")); // lint: allow(no_unwrap) — fixed-size slice
        if &footer[20..24] != FOOTER_MAGIC {
            return Err(self.corrupt("bad footer magic"));
        }
        if count != self.header_count {
            return Err(self.corrupt("footer record count disagrees with the header"));
        }
        if payload != self.payload_seen {
            return Err(self.corrupt("footer byte count disagrees with the frames"));
        }
        if whole != self.crc_chain.finish() {
            if let Some(stats) = &self.stats {
                stats.bump_checksum_failure();
            }
            return Err(self.corrupt("whole-file checksum mismatch"));
        }
        Ok(())
    }
}

impl Read for FrameStream {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        loop {
            if self.head_pos < self.head_len {
                let n = out.len().min(self.head_len - self.head_pos);
                out[..n].copy_from_slice(&self.head[self.head_pos..self.head_pos + n]);
                self.head_pos += n;
                return Ok(n);
            }
            match self.mode {
                Mode::Sniff => self.sniff()?,
                Mode::Passthrough => return self.file.read(out),
                Mode::Frames => {
                    if self.stage_pos < self.stage_len {
                        let n = out.len().min(self.stage_len - self.stage_pos);
                        out[..n].copy_from_slice(&self.stage[self.stage_pos..self.stage_pos + n]);
                        self.stage_pos += n;
                        return Ok(n);
                    }
                    if self.load_frame()? == 0 {
                        return Ok(0);
                    }
                }
                Mode::Finished => return Ok(0),
            }
        }
    }
}

/// Reads until `buf` is full or the stream ends; returns bytes read.
fn read_full(file: &mut FaultFile, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        let n = file.read(&mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::PhysicalFile;
    use ind_testkit::TempDir;

    /// Hand-assembles a v2 file around `payload` (decoder-independent of
    /// the writer, so each side checks the other).
    fn v2_file(count: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(crate::format::MAGIC);
        out.extend_from_slice(&V2_VERSION.to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        let head_crc = crc32c(&out);
        out.extend_from_slice(&head_crc.to_le_bytes());
        let mut chain = Crc32c::new();
        for chunk in payload.chunks(FRAME_PAYLOAD) {
            out.extend_from_slice(&(chunk.len() as u16).to_le_bytes());
            out.extend_from_slice(chunk);
            let crc = crc32c(chunk);
            out.extend_from_slice(&crc.to_le_bytes());
            chain.update(&crc.to_le_bytes());
        }
        out.extend_from_slice(&FOOTER_SENTINEL.to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&chain.finish().to_le_bytes());
        out.extend_from_slice(FOOTER_MAGIC);
        out
    }

    fn stream(bytes: &[u8], verify: bool, stats: Option<ReadStats>) -> FrameStream {
        let dir = TempDir::new("frame-stream");
        let path = dir.join("data.indv");
        std::fs::write(&path, bytes).unwrap();
        let file = FaultFile::new(
            PhysicalFile::Buffered(std::fs::File::open(&path).unwrap()),
            &path,
            None,
            stats.clone(),
        );
        FrameStream::new(file, verify, stats)
    }

    fn drain(mut s: FrameStream) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        s.read_to_end(&mut out)?;
        Ok(out)
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn v2_framing_is_stripped_and_the_header_served_verbatim() {
        for n in [
            0,
            1,
            100,
            FRAME_PAYLOAD - 1,
            FRAME_PAYLOAD,
            3 * FRAME_PAYLOAD + 7,
        ] {
            let data = payload(n);
            let raw = v2_file(42, &data);
            let logical = drain(stream(&raw, true, None)).unwrap();
            assert_eq!(&logical[..V2_HEADER_LEN], &raw[..V2_HEADER_LEN]);
            assert_eq!(&logical[V2_HEADER_LEN..], &data[..], "payload of {n} bytes");
            assert_eq!(
                raw.len() as u64,
                (crate::format::HEADER_LEN + n) as u64 + v2_overhead(n as u64),
                "v2_overhead predicts the physical size over the v1 layout"
            );
        }
    }

    #[test]
    fn non_v2_bytes_pass_through_untouched() {
        for raw in [
            &b""[..],
            b"short",
            b"NOPE_with_20_or_more_bytes_of_junk",
            // A v1-looking header: magic + version 1 + count.
            &[
                b'I', b'N', b'D', b'V', 1, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 9, 9, 9, 9, 1, 2,
            ][..],
        ] {
            assert_eq!(drain(stream(raw, true, None)).unwrap(), raw);
        }
    }

    #[test]
    fn every_bit_flip_after_the_header_is_detected() {
        let data = payload(300);
        let raw = v2_file(7, &data);
        let stats = ReadStats::new();
        for byte in V2_HEADER_LEN..raw.len() {
            let mut bad = raw.clone();
            bad[byte] ^= 1 << (byte % 8);
            let err = drain(stream(&bad, true, Some(stats.clone())))
                .expect_err(&format!("flip at byte {byte} must be detected"));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            let msg = err.to_string();
            assert!(msg.contains("data.indv"), "error names the file: {msg}");
        }
        assert!(
            stats.checksum_failures() > 0,
            "checksum mismatches are counted"
        );
    }

    #[test]
    fn truncation_at_every_cut_is_detected() {
        let data = payload(2 * FRAME_PAYLOAD + 13);
        let raw = v2_file(3, &data);
        for cut in V2_HEADER_LEN..raw.len() {
            let err = drain(stream(&raw[..cut], true, None))
                .expect_err(&format!("cut at byte {cut} must be detected"));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
        drain(stream(&raw, true, None)).unwrap();
    }

    #[test]
    fn verify_off_still_strips_and_still_catches_structural_damage() {
        let data = payload(5000);
        let raw = v2_file(11, &data);
        let logical = drain(stream(&raw, false, None)).unwrap();
        assert_eq!(&logical[V2_HEADER_LEN..], &data[..]);

        // A flipped payload bit sails through unverified...
        let mut flipped = raw.clone();
        flipped[V2_HEADER_LEN + FRAME_LEN_PREFIX + 10] ^= 0x40;
        let dirty = drain(stream(&flipped, false, None)).unwrap();
        assert_ne!(&dirty[V2_HEADER_LEN..], &data[..]);

        // ...but a mid-frame truncation is still structural corruption.
        assert!(drain(stream(&raw[..raw.len() / 2], false, None)).is_err());
    }

    #[test]
    fn footer_field_mismatches_are_reported_precisely() {
        let data = payload(64);
        let raw = v2_file(9, &data);
        let footer_at = raw.len() - FOOTER_BODY_LEN;

        let mut bad_count = raw.clone();
        bad_count[footer_at] ^= 1;
        let e = drain(stream(&bad_count, true, None)).unwrap_err();
        assert!(e.to_string().contains("record count"), "{e}");

        let mut bad_bytes = raw.clone();
        bad_bytes[footer_at + 8] ^= 1;
        let e = drain(stream(&bad_bytes, true, None)).unwrap_err();
        assert!(e.to_string().contains("byte count"), "{e}");

        let stats = ReadStats::new();
        let mut bad_crc = raw.clone();
        bad_crc[footer_at + 16] ^= 1;
        let e = drain(stream(&bad_crc, true, Some(stats.clone()))).unwrap_err();
        assert!(e.to_string().contains("whole-file checksum"), "{e}");
        assert_eq!(stats.checksum_failures(), 1);

        let mut bad_magic = raw.clone();
        bad_magic[footer_at + 20] = b'X';
        let e = drain(stream(&bad_magic, true, None)).unwrap_err();
        assert!(e.to_string().contains("footer magic"), "{e}");
    }

    #[test]
    fn logical_stream_is_identical_at_any_read_granularity() {
        let data = payload(FRAME_PAYLOAD + 777);
        let raw = v2_file(5, &data);
        let whole = drain(stream(&raw, true, None)).unwrap();
        for step in [1usize, 3, 19, 4096, 10_000] {
            let mut s = stream(&raw, true, None);
            let mut out = Vec::new();
            let mut chunk = vec![0u8; step];
            loop {
                let n = s.read(&mut chunk).unwrap();
                if n == 0 {
                    break;
                }
                out.extend_from_slice(&chunk[..n]);
            }
            assert_eq!(out, whole, "read granularity {step}");
        }
    }
}
