//! CRC-32C (Castagnoli), the checksum of value-file format v2.
//!
//! Hand-rolled so the workspace stays dependency-free: the reflected
//! polynomial `0x82F63B78`, computed by the `crc32` instruction on x86-64
//! parts that have SSE 4.2 (runtime-detected) and by an 8-table
//! slice-by-8 kernel everywhere else. This is the same function iSCSI,
//! ext4 and Btrfs use for on-disk integrity — chosen over CRC-32 (IEEE)
//! for its better error-detection properties on short messages, which is
//! exactly the 4 KiB-frame regime of [`crate::ValueFileWriter`] — and the
//! reason verification can default on: hashing rides far below the merge
//! engine's comparison cost per byte.

/// Reflected CRC-32C polynomial (Castagnoli).
const POLY: u32 = 0x82F6_3B78;

/// Slice-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` advances byte `b` through `k` further zero bytes,
/// letting the kernel fold 8 input bytes per iteration with 8 independent
/// loads instead of an 8-deep dependency chain.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Portable slice-by-8 kernel: 8 bytes per iteration, one table load per
/// byte, byte-at-a-time for the unaligned tail.
fn update_soft(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Hardware kernel: the SSE 4.2 `crc32` instruction, 8 bytes per issue.
/// Only compiled on x86-64 and only dispatched to after a runtime feature
/// check, so the binary stays runnable on any x86-64 part.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw(mut crc: u32, bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut chunks = bytes.chunks_exact(8);
    let mut wide = crc as u64;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
        wide = _mm_crc32_u64(wide, word);
    }
    crc = wide as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn update_dispatch(crc: u32, bytes: &[u8]) -> u32 {
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: the `sse4.2` feature was just runtime-verified on this
        // CPU, which is the only precondition `update_hw` carries.
        unsafe { update_hw(crc, bytes) }
    } else {
        update_soft(crc, bytes)
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn update_dispatch(crc: u32, bytes: &[u8]) -> u32 {
    update_soft(crc, bytes)
}

/// Streaming CRC-32C state. `Default` starts a fresh checksum; feed bytes
/// with [`Crc32c::update`] and read the final value with
/// [`Crc32c::finish`] (the state stays usable — `finish` is a pure view).
#[derive(Debug, Clone, Copy)]
pub struct Crc32c(u32);

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c(0xFFFF_FFFF)
    }
}

impl Crc32c {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Crc32c::default()
    }

    /// Folds `bytes` into the running checksum.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        self.0 = update_dispatch(self.0, bytes);
    }

    /// The checksum of everything fed so far.
    #[inline]
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32C of `bytes`.
#[inline]
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut state = Crc32c::new();
    state.update(bytes);
    state.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 (iSCSI) appendix test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32u8).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 7, 500, 999, 1000] {
            let mut s = Crc32c::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finish(), crc32c(&data), "split at {split}");
        }
    }

    #[test]
    fn soft_kernel_matches_dispatch_at_every_length() {
        // Pins the slice-by-8 tables and tail handling against whichever
        // kernel the host dispatches to (the hardware instruction on
        // x86-64), across every alignment class and the 8-byte boundary.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(31) % 256) as u8)
            .collect();
        for len in 0..data.len() {
            let soft = update_soft(0xFFFF_FFFF, &data[..len]) ^ 0xFFFF_FFFF;
            assert_eq!(soft, crc32c(&data[..len]), "length {len}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip at {byte}.{bit}");
            }
        }
    }
}
