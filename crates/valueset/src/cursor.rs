//! The cursor abstraction all discovery algorithms consume.

use crate::error::Result;

/// A forward-only cursor over a sorted, duplicate-free set of byte-string
/// values.
///
/// Protocol: after construction the cursor is positioned *before* the first
/// value. [`ValueCursor::advance`] moves to the next value and returns
/// `false` once the set is exhausted. [`ValueCursor::current`] is valid only
/// after an `advance` that returned `true`.
///
/// [`ValueCursor::remaining`] answers the paper's `wantNextValue` question
/// (Algorithm 2) without lookahead buffering: value files record their
/// cardinality in the header, so "is there a next value" is a counter
/// comparison.
pub trait ValueCursor {
    /// Moves to the next value; `false` when exhausted.
    fn advance(&mut self) -> Result<bool>;

    /// The value most recently produced by a successful [`advance`].
    ///
    /// [`advance`]: ValueCursor::advance
    fn current(&self) -> &[u8];

    /// Advances until the current value is `>= lower`: a conditional
    /// [`advance`] that skips the prefix of the set below `lower`.
    ///
    /// Returns `true` when positioned on the first value `>= lower`
    /// (readable via [`current`]) and `false` when the set holds no such
    /// value (the cursor is then exhausted). Values already produced are
    /// never revisited, so `seek` is only a *forward* jump.
    ///
    /// The default implementation scans linearly, materialising every
    /// skipped value through [`advance`]. Cursors with cheaper options
    /// should override it: [`crate::MemoryCursor`] binary-searches its
    /// sorted slice, and [`crate::ValueFileReader`] reads each length
    /// prefix and seeks past the value body, so skipped values are never
    /// copied into its buffer. Range-partitioned readers
    /// ([`crate::RangeCursor`]) rely on this to start mid-stream.
    ///
    /// [`advance`]: ValueCursor::advance
    /// [`current`]: ValueCursor::current
    fn seek(&mut self, lower: &[u8]) -> Result<bool> {
        while self.advance()? {
            if self.current() >= lower {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Number of values `advance` has not yet produced.
    fn remaining(&self) -> u64;

    /// Total number of values in the set.
    fn len(&self) -> u64;

    /// True if the set holds no values at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if at least one more `advance` will succeed.
    fn has_next(&self) -> bool {
        self.remaining() > 0
    }
}

/// Blanket impl so `Box<dyn ValueCursor>` works where generics are awkward.
impl<C: ValueCursor + ?Sized> ValueCursor for Box<C> {
    fn advance(&mut self) -> Result<bool> {
        (**self).advance()
    }
    fn seek(&mut self, lower: &[u8]) -> Result<bool> {
        (**self).seek(lower)
    }
    fn current(&self) -> &[u8] {
        (**self).current()
    }
    fn remaining(&self) -> u64 {
        (**self).remaining()
    }
    fn len(&self) -> u64 {
        (**self).len()
    }
}

/// Drains a cursor into a vector (test and tooling convenience).
pub fn collect_cursor<C: ValueCursor>(mut cursor: C) -> Result<Vec<Vec<u8>>> {
    let mut out = Vec::with_capacity(cursor.len() as usize);
    while cursor.advance()? {
        out.push(cursor.current().to_vec());
    }
    Ok(out)
}

/// A provider hands out cursors over per-attribute value sets by attribute
/// id. Implemented by the on-disk [`crate::ExportedDatabase`] and the
/// in-memory [`crate::MemoryProvider`].
pub trait ValueSetProvider {
    /// Cursor type produced by this provider.
    type Cursor: ValueCursor;

    /// Opens a fresh cursor over attribute `id`'s value set.
    fn open(&self, id: u32) -> Result<Self::Cursor>;

    /// Number of attributes available.
    fn attribute_count(&self) -> usize;
}
