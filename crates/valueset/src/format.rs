//! On-disk format for sorted distinct value sets.
//!
//! One file per attribute:
//!
//! ```text
//! magic   4 bytes  b"INDV"
//! version u32 LE   currently 1
//! count   u64 LE   number of values (patched at finish time)
//! entry*  u32 LE length + raw bytes, in strictly increasing byte order
//! ```
//!
//! The count header lets readers answer "does a next value exist" without
//! lookahead — exactly what Algorithm 2's `wantNextValue` needs. Writers
//! enforce the strictly-increasing invariant so every downstream merge can
//! rely on it. All I/O is buffered per the performance guide, and readers
//! reuse a workhorse buffer so steady-state reads do not allocate.

use crate::budget::{FileBudget, OpenFileGuard};
use crate::cursor::ValueCursor;
use crate::error::{Result, ValueSetError};
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"INDV";
const VERSION: u32 = 1;

/// Streaming writer for a value file. Values must arrive sorted and
/// duplicate-free; [`ValueFileWriter::finish`] patches the count header.
pub struct ValueFileWriter {
    out: BufWriter<std::fs::File>,
    path: PathBuf,
    count: u64,
    last: Option<Vec<u8>>,
}

impl ValueFileWriter {
    /// Creates (truncates) `path` and writes a header with a zero count.
    pub fn create(path: &Path) -> Result<Self> {
        let file = std::fs::File::create(path)?;
        let mut out = BufWriter::new(file);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?;
        Ok(ValueFileWriter {
            out,
            path: path.to_path_buf(),
            count: 0,
            last: None,
        })
    }

    /// Appends one value; rejects values that are not strictly greater than
    /// the previous one.
    pub fn append(&mut self, value: &[u8]) -> Result<()> {
        if let Some(last) = &self.last {
            if value <= last.as_slice() {
                return Err(ValueSetError::Unsorted {
                    context: self.path.display().to_string(),
                });
            }
        }
        let len = u32::try_from(value.len()).map_err(|_| ValueSetError::Corrupt {
            context: self.path.display().to_string(),
            detail: "value longer than u32::MAX bytes".into(),
        })?;
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(value)?;
        self.count += 1;
        match &mut self.last {
            Some(buf) => {
                buf.clear();
                buf.extend_from_slice(value);
            }
            none => *none = Some(value.to_vec()),
        }
        Ok(())
    }

    /// Number of values appended so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flushes, patches the count header, and returns the final count.
    pub fn finish(self) -> Result<u64> {
        let mut file = self.out.into_inner().map_err(|e| {
            ValueSetError::Io(std::io::Error::other(format!(
                "flush failed for {}: {e}",
                self.path.display()
            )))
        })?;
        file.seek(SeekFrom::Start(8))?;
        file.write_all(&self.count.to_le_bytes())?;
        file.sync_data().ok(); // best-effort durability; not load-bearing
        Ok(self.count)
    }
}

/// Buffered reader over a value file; implements [`ValueCursor`].
pub struct ValueFileReader {
    input: BufReader<std::fs::File>,
    path: PathBuf,
    total: u64,
    produced: u64,
    current: Vec<u8>,
    _guard: Option<OpenFileGuard>,
}

impl ValueFileReader {
    /// Opens `path` without budget accounting.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_inner(path, None)
    }

    /// Opens `path`, charging one slot against `budget` for the lifetime of
    /// the reader.
    pub fn open_with_budget(path: &Path, budget: &FileBudget) -> Result<Self> {
        let guard = budget.acquire()?;
        Self::open_inner(path, Some(guard))
    }

    fn open_inner(path: &Path, guard: Option<OpenFileGuard>) -> Result<Self> {
        let context = || path.display().to_string();
        let file = std::fs::File::open(path)?;
        let mut input = BufReader::new(file);
        let mut magic = [0u8; 4];
        input
            .read_exact(&mut magic)
            .map_err(|e| corrupt(context(), format!("short header: {e}")))?;
        if &magic != MAGIC {
            return Err(corrupt(context(), "bad magic".into()));
        }
        let mut v = [0u8; 4];
        input
            .read_exact(&mut v)
            .map_err(|e| corrupt(context(), format!("short header: {e}")))?;
        let version = u32::from_le_bytes(v);
        if version != VERSION {
            return Err(corrupt(context(), format!("unsupported version {version}")));
        }
        let mut c = [0u8; 8];
        input
            .read_exact(&mut c)
            .map_err(|e| corrupt(context(), format!("short header: {e}")))?;
        let total = u64::from_le_bytes(c);
        Ok(ValueFileReader {
            input,
            path: path.to_path_buf(),
            total,
            produced: 0,
            current: Vec::new(),
            _guard: guard,
        })
    }

    /// File this reader is positioned over.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn corrupt(context: String, detail: String) -> ValueSetError {
    ValueSetError::Corrupt { context, detail }
}

/// Outcome of comparing a value against `lower` from a buffered prefix
/// alone, without materialising the value.
enum PrefixOrder {
    /// The value is provably `< lower` — safe to skip without reading it.
    Below,
    /// The value is provably `>= lower` — it is the seek target.
    AtOrAbove,
    /// The buffered window was too short to decide.
    Undecided,
}

/// Decides how a `len`-byte value whose first `probe.len()` bytes are
/// `probe` compares to `lower`. Conclusive whenever a byte differs inside
/// the window or either string ends there; undecided only when the shared
/// prefix runs past the window (i.e. past the reader's buffer).
fn prefix_order(probe: &[u8], len: usize, lower: &[u8]) -> PrefixOrder {
    let p = probe.len().min(lower.len());
    match probe[..p].cmp(&lower[..p]) {
        std::cmp::Ordering::Less => PrefixOrder::Below,
        std::cmp::Ordering::Greater => PrefixOrder::AtOrAbove,
        std::cmp::Ordering::Equal => {
            if p == lower.len() {
                // The value starts with all of `lower`: >= unless it is a
                // *shorter* string, which cannot happen once len >= p.
                debug_assert!(len >= p);
                PrefixOrder::AtOrAbove
            } else if probe.len() == len {
                // Entire value seen and it is a proper prefix of `lower`.
                PrefixOrder::Below
            } else {
                PrefixOrder::Undecided
            }
        }
    }
}

impl ValueCursor for ValueFileReader {
    fn advance(&mut self) -> Result<bool> {
        if self.produced >= self.total {
            return Ok(false);
        }
        let ctx = || self.path.display().to_string();
        let mut len_buf = [0u8; 4];
        self.input
            .read_exact(&mut len_buf)
            .map_err(|e| corrupt(ctx(), format!("truncated record length: {e}")))?;
        let len = u32::from_le_bytes(len_buf) as usize;
        self.current.resize(len, 0);
        self.input
            .read_exact(&mut self.current)
            .map_err(|e| corrupt(ctx(), format!("truncated record body: {e}")))?;
        self.produced += 1;
        Ok(true)
    }

    /// Forward seek that skips value bodies without copying them: each
    /// record's length prefix is read, the buffered bytes are compared
    /// against `lower` in place, and provably-smaller values whose bodies
    /// sit entirely inside the read buffer are jumped over with
    /// [`BufReader::seek_relative`] — a pure pointer bump that cannot cross
    /// EOF, so truncation stays detectable exactly as in [`advance`]. Only
    /// the first value `>= lower`, bodies spanning the buffer boundary, and
    /// the rare value whose shared prefix with `lower` outruns the buffer
    /// are materialised into the workhorse buffer.
    ///
    /// [`advance`]: ValueCursor::advance
    fn seek(&mut self, lower: &[u8]) -> Result<bool> {
        while self.produced < self.total {
            let ctx = || self.path.display().to_string();
            let mut len_buf = [0u8; 4];
            self.input
                .read_exact(&mut len_buf)
                .map_err(|e| corrupt(ctx(), format!("truncated record length: {e}")))?;
            let len = u32::from_le_bytes(len_buf) as usize;
            let (order, fully_buffered) = {
                let buffered = self
                    .input
                    .fill_buf()
                    .map_err(|e| corrupt(ctx(), format!("truncated record body: {e}")))?;
                (
                    prefix_order(&buffered[..buffered.len().min(len)], len, lower),
                    buffered.len() >= len,
                )
            };
            match order {
                PrefixOrder::Below if fully_buffered => {
                    self.input
                        .seek_relative(len as i64)
                        .map_err(|e| corrupt(ctx(), format!("truncated record body: {e}")))?;
                    self.produced += 1;
                }
                PrefixOrder::Below => {
                    // Skippable, but the body extends past the buffer: read
                    // it through the workhorse buffer so a truncated file
                    // errors here instead of being silently seeked past.
                    self.current.resize(len, 0);
                    self.input
                        .read_exact(&mut self.current)
                        .map_err(|e| corrupt(ctx(), format!("truncated record body: {e}")))?;
                    self.produced += 1;
                }
                PrefixOrder::AtOrAbove => {
                    self.current.resize(len, 0);
                    self.input
                        .read_exact(&mut self.current)
                        .map_err(|e| corrupt(ctx(), format!("truncated record body: {e}")))?;
                    self.produced += 1;
                    return Ok(true);
                }
                PrefixOrder::Undecided => {
                    self.current.resize(len, 0);
                    self.input
                        .read_exact(&mut self.current)
                        .map_err(|e| corrupt(ctx(), format!("truncated record body: {e}")))?;
                    self.produced += 1;
                    if self.current.as_slice() >= lower {
                        return Ok(true);
                    }
                }
            }
        }
        Ok(false)
    }

    fn current(&self) -> &[u8] {
        debug_assert!(self.produced > 0, "current() before first advance()");
        &self.current
    }

    fn remaining(&self) -> u64 {
        self.total - self.produced
    }

    fn len(&self) -> u64 {
        self.total
    }
}

/// Writes `values` (already sorted, distinct) to `path` in one call.
pub fn write_value_file(path: &Path, values: &[Vec<u8>]) -> Result<u64> {
    let mut w = ValueFileWriter::create(path)?;
    for v in values {
        w.append(v)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_cursor;
    use ind_testkit::TempDir;

    fn bytes(items: &[&str]) -> Vec<Vec<u8>> {
        items.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn write_read_round_trip() {
        let dir = TempDir::new("vf-roundtrip");
        let path = dir.join("a.indv");
        let values = bytes(&["alpha", "beta", "gamma"]);
        assert_eq!(write_value_file(&path, &values).unwrap(), 3);

        let reader = ValueFileReader::open(&path).unwrap();
        assert_eq!(reader.len(), 3);
        assert_eq!(collect_cursor(reader).unwrap(), values);
    }

    #[test]
    fn empty_file_round_trip() {
        let dir = TempDir::new("vf-empty");
        let path = dir.join("empty.indv");
        write_value_file(&path, &[]).unwrap();
        let mut reader = ValueFileReader::open(&path).unwrap();
        assert!(reader.is_empty());
        assert!(!reader.advance().unwrap());
    }

    #[test]
    fn remaining_counts_down() {
        let dir = TempDir::new("vf-remaining");
        let path = dir.join("a.indv");
        write_value_file(&path, &bytes(&["a", "b"])).unwrap();
        let mut r = ValueFileReader::open(&path).unwrap();
        assert_eq!(r.remaining(), 2);
        assert!(r.has_next());
        r.advance().unwrap();
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.current(), b"a");
        r.advance().unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(!r.has_next());
        assert!(!r.advance().unwrap());
    }

    #[test]
    fn unsorted_and_duplicate_appends_rejected() {
        let dir = TempDir::new("vf-unsorted");
        let mut w = ValueFileWriter::create(&dir.join("u.indv")).unwrap();
        w.append(b"m").unwrap();
        assert!(matches!(
            w.append(b"a"),
            Err(ValueSetError::Unsorted { .. })
        ));
        assert!(matches!(
            w.append(b"m"),
            Err(ValueSetError::Unsorted { .. })
        ));
        w.append(b"z").unwrap();
    }

    #[test]
    fn bad_magic_detected() {
        let dir = TempDir::new("vf-magic");
        let path = dir.join("bad.indv");
        std::fs::write(
            &path,
            b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",
        )
        .unwrap();
        assert!(matches!(
            ValueFileReader::open(&path),
            Err(ValueSetError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_body_detected() {
        let dir = TempDir::new("vf-trunc");
        let path = dir.join("t.indv");
        write_value_file(&path, &bytes(&["hello", "world"])).unwrap();
        // Chop off the final bytes of the last record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let mut r = ValueFileReader::open(&path).unwrap();
        assert!(r.advance().unwrap());
        assert!(matches!(r.advance(), Err(ValueSetError::Corrupt { .. })));
    }

    #[test]
    fn header_count_is_patched() {
        let dir = TempDir::new("vf-count");
        let path = dir.join("c.indv");
        let mut w = ValueFileWriter::create(&path).unwrap();
        for v in ["a", "b", "c", "d"] {
            w.append(v.as_bytes()).unwrap();
        }
        assert_eq!(w.count(), 4);
        assert_eq!(w.finish().unwrap(), 4);
        assert_eq!(ValueFileReader::open(&path).unwrap().len(), 4);
    }

    #[test]
    fn budgeted_open_charges_and_releases() {
        let dir = TempDir::new("vf-budget");
        let path = dir.join("b.indv");
        write_value_file(&path, &bytes(&["x"])).unwrap();
        let budget = FileBudget::new(1);
        let r1 = ValueFileReader::open_with_budget(&path, &budget).unwrap();
        assert!(matches!(
            ValueFileReader::open_with_budget(&path, &budget),
            Err(ValueSetError::FileBudgetExceeded { .. })
        ));
        drop(r1);
        assert!(ValueFileReader::open_with_budget(&path, &budget).is_ok());
    }

    #[test]
    fn seek_agrees_with_memory_cursor_on_the_same_data() {
        use crate::memory::MemoryValueSet;
        // Value shapes chosen to hit every branch of the prefix comparison:
        // the empty value, shared prefixes, a prefix-of-`lower` value, and
        // values longer than the probe targets.
        let values: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"alpha".to_vec(),
            b"alphabet".to_vec(),
            b"beta".to_vec(),
            b"betamax".to_vec(),
            vec![b'p'; 1024],
            [vec![b'p'; 1024], b"q".to_vec()].concat(),
            b"zz".to_vec(),
        ];
        let dir = TempDir::new("vf-seek");
        let path = dir.join("s.indv");
        write_value_file(&path, &values).unwrap();
        let mem = MemoryValueSet::from_sorted_distinct(values.clone()).unwrap();

        let probes: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"alpha".to_vec(),
            b"alphab".to_vec(),
            b"az".to_vec(),
            b"betam".to_vec(),
            vec![b'p'; 1024],
            vec![b'p'; 1023],
            [vec![b'p'; 1024], b"a".to_vec()].concat(),
            b"zz".to_vec(),
            b"zzz".to_vec(),
        ];
        for lower in &probes {
            let mut file = ValueFileReader::open(&path).unwrap();
            let mut mem_cursor = mem.cursor();
            let found_file = file.seek(lower).unwrap();
            let found_mem = mem_cursor.seek(lower).unwrap();
            assert_eq!(found_file, found_mem, "lower={lower:?}");
            if found_file {
                assert_eq!(file.current(), mem_cursor.current(), "lower={lower:?}");
            }
            // The suffix after the seek must agree too (seek is forward-only
            // positioning, not a point query).
            loop {
                let (a, b) = (file.advance().unwrap(), mem_cursor.advance().unwrap());
                assert_eq!(a, b, "lower={lower:?}");
                if !a {
                    break;
                }
                assert_eq!(file.current(), mem_cursor.current(), "lower={lower:?}");
            }
        }
    }

    #[test]
    fn seek_is_forward_only_after_partial_advance() {
        let dir = TempDir::new("vf-seek-fwd");
        let path = dir.join("f.indv");
        write_value_file(&path, &bytes(&["a", "b", "c", "d"])).unwrap();
        let mut r = ValueFileReader::open(&path).unwrap();
        assert!(r.advance().unwrap());
        assert!(r.advance().unwrap());
        assert_eq!(r.current(), b"b");
        // Seeking below the current position may not rewind: the next value
        // produced is the first not-yet-produced one >= lower.
        assert!(r.seek(b"a").unwrap());
        assert_eq!(r.current(), b"c");
        assert!(r.seek(b"d").unwrap());
        assert_eq!(r.current(), b"d");
        assert!(!r.seek(b"e").unwrap());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn seek_reports_truncated_bodies_like_advance() {
        // A record body chopped mid-value must surface as Corrupt from
        // `seek` too — the skip fast path may never seek past missing
        // bytes. A 16 KiB value guarantees the body is not fully buffered,
        // so the copying fallback (and its read_exact error) is exercised.
        let dir = TempDir::new("vf-seek-trunc");
        let path = dir.join("t.indv");
        let values = vec![b"aaa".to_vec(), vec![b'b'; 16 * 1024]];
        write_value_file(&path, &values).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 100]).unwrap();
        let mut r = ValueFileReader::open(&path).unwrap();
        assert!(matches!(r.seek(b"zzz"), Err(ValueSetError::Corrupt { .. })));
    }

    #[test]
    fn seek_decides_shared_prefixes_longer_than_the_read_buffer() {
        // BufReader's default buffer is 8 KiB; a 12 KiB shared prefix forces
        // the undecided fallback path (copy + compare) and must still agree
        // with the in-memory answer.
        use crate::memory::MemoryValueSet;
        let prefix = vec![b'x'; 12 * 1024];
        let values: Vec<Vec<u8>> = vec![
            [prefix.clone(), b"a".to_vec()].concat(),
            [prefix.clone(), b"m".to_vec()].concat(),
            [prefix.clone(), b"z".to_vec()].concat(),
        ];
        let dir = TempDir::new("vf-seek-bigprefix");
        let path = dir.join("big.indv");
        write_value_file(&path, &values).unwrap();
        let mem = MemoryValueSet::from_sorted_distinct(values.clone()).unwrap();
        for lower in [
            [prefix.clone(), b"b".to_vec()].concat(),
            [prefix.clone(), b"z".to_vec()].concat(),
            [prefix.clone(), b"zz".to_vec()].concat(),
        ] {
            let mut file = ValueFileReader::open(&path).unwrap();
            let mut mem_cursor = mem.cursor();
            let found = file.seek(&lower).unwrap();
            assert_eq!(found, mem_cursor.seek(&lower).unwrap());
            if found {
                assert_eq!(file.current(), mem_cursor.current());
            }
        }
    }

    #[test]
    fn binary_values_round_trip() {
        let dir = TempDir::new("vf-binary");
        let path = dir.join("bin.indv");
        let values = vec![vec![0u8], vec![0u8, 1u8], vec![255u8; 1000]];
        write_value_file(&path, &values).unwrap();
        assert_eq!(
            collect_cursor(ValueFileReader::open(&path).unwrap()).unwrap(),
            values
        );
    }
}
