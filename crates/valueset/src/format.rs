//! On-disk format for sorted distinct value sets.
//!
//! One file per attribute. The *logical* stream is unchanged since v1:
//!
//! ```text
//! magic   4 bytes  b"INDV"
//! version u32 LE   2 (v1 files still open)
//! count   u64 LE   number of values (patched at finish time)
//! entry*  u32 LE length + raw bytes, in strictly increasing byte order
//! ```
//!
//! Version 2 makes the file **self-verifying**: the header gains a CRC32C
//! over its first 16 bytes, the entry stream is carried inside
//! checksummed 4 KiB frames, and a footer seals the file with the record
//! count, payload byte count, and a whole-file checksum (see
//! [`crate::frame`] for the exact physical layout). The frame layer is
//! transparent to this module's reader: a decoding [`std::io::Read`]
//! adapter beneath the block layer verifies and strips the framing, so a
//! flipped bit or torn write surfaces as [`ValueSetError::Corrupt`] with
//! frame-precise context *before* the damaged byte can reach a cursor —
//! never as a silently wrong answer.
//!
//! The count header lets readers answer "does a next value exist" without
//! lookahead — exactly what Algorithm 2's `wantNextValue` needs. Writers
//! enforce the strictly-increasing invariant so every downstream merge can
//! rely on it.
//!
//! All I/O goes through the block layer ([`crate::block`]): the writer
//! stages records into frames and flushes block-sized `write_all`s; the
//! reader fills a block at a time and parses records **in place**, so
//! [`ValueFileReader::current`] is always a zero-copy slice into the block
//! (a value larger than the block grows it once rather than being copied
//! out). Steady-state reads perform no heap allocation and one bulk read
//! per block, not per record.

use crate::block::{BlockReader, IoOptions, ReadStats};
use crate::budget::{FileBudget, OpenFileGuard};
use crate::crc32c::{crc32c, Crc32c};
use crate::cursor::ValueCursor;
use crate::error::{Result, ValueSetError};
use crate::frame::{
    v2_overhead, FOOTER_BODY_LEN, FOOTER_MAGIC, FOOTER_SENTINEL, FRAME_LEN_PREFIX, FRAME_PAYLOAD,
    V2_HEADER_LEN, V2_VERSION,
};
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub(crate) const MAGIC: &[u8; 4] = b"INDV";
/// The legacy, un-checksummed format version; still readable.
const VERSION_V1: u32 = 1;
/// v1 header bytes: magic + version + count (the logical header of v2,
/// whose physical header appends a CRC — [`V2_HEADER_LEN`]).
pub(crate) const HEADER_LEN: usize = 16;
/// Length-prefix bytes per record.
const LEN_PREFIX: usize = 4;

/// Streaming writer for a value file (format v2). Values must arrive
/// sorted and duplicate-free; [`ValueFileWriter::finish`] appends the
/// checksummed footer and patches the count header.
///
/// Records are staged into 4 KiB frames; each completed frame is sealed
/// with its CRC32C and appended to an in-memory block that is flushed
/// with one `write_all` per [`IoOptions::block_size`] bytes. Each record
/// still costs two `memcpy`s into the staging buffers (length prefix +
/// body), the checksum is one table-driven pass per byte, and the syscall
/// count stays proportional to file size / block size. All writes go
/// through the fault-injectable retrying wrapper ([`crate::fault`]), so
/// an `ENOSPC` or interrupted write is exercised — and, for transients,
/// healed — at exactly one place.
pub struct ValueFileWriter {
    file: std::fs::File,
    /// Physical staging: header, then sealed frames, flushed per block.
    block: Vec<u8>,
    /// Logical staging: the current (unsealed) frame's payload.
    frame: Vec<u8>,
    block_size: usize,
    path: PathBuf,
    count: u64,
    /// Logical payload bytes staged so far (length prefixes + bodies).
    payload: u64,
    last: Option<Vec<u8>>,
    write_calls: u64,
    /// Running CRC over the sealed frames' CRC words (the footer's
    /// whole-file checksum).
    crc_chain: Crc32c,
    fault: Option<Arc<crate::fault::FaultPlan>>,
    stats: Option<ReadStats>,
    cancel: Option<crate::cancel::CancelToken>,
    /// Atomic publication: when set, `path` is the `.tmp` staging file
    /// and `finish` fsyncs it, renames it to this final name, and fsyncs
    /// the parent directory.
    publish_to: Option<PathBuf>,
}

/// The staging name of an atomically-published value file: `<path>.tmp`.
/// A file under its final name is always complete; anything ending in
/// `.tmp` is a torn leftover the resume sweep may delete.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

impl ValueFileWriter {
    /// Creates (truncates) `path` with the default block size.
    pub fn create(path: &Path) -> Result<Self> {
        Self::create_with_options(path, &IoOptions::default())
    }

    /// Creates (truncates) `path`, staging writes into blocks of
    /// `options.block_size`; the zero-count v2 header is staged first.
    pub fn create_with_options(path: &Path, options: &IoOptions) -> Result<Self> {
        Self::create_inner(path, options, None)
    }

    /// Creates an **atomically published** value file: all writes go to
    /// `<path>.tmp`, and [`ValueFileWriter::finish`] fsyncs the staging
    /// file, renames it to `path`, and fsyncs the parent directory — so a
    /// file under its final name is always complete and checksum-valid.
    /// An interrupted export leaves only a `.tmp` orphan for the resume
    /// sweep to delete. The byte stream is identical to a plain create:
    /// the rename changes the name, never the bytes.
    pub fn create_atomic_with_options(path: &Path, options: &IoOptions) -> Result<Self> {
        Self::create_inner(&tmp_path(path), options, Some(path.to_path_buf()))
    }

    fn create_inner(path: &Path, options: &IoOptions, publish_to: Option<PathBuf>) -> Result<Self> {
        crate::fault::check_open(path, options.fault.as_ref())?;
        let file = crate::fault::create_file(path)?;
        let block_size = options.effective_block_size();
        let mut block = Vec::with_capacity(block_size.max(V2_HEADER_LEN));
        block.extend_from_slice(MAGIC);
        block.extend_from_slice(&V2_VERSION.to_le_bytes());
        block.extend_from_slice(&0u64.to_le_bytes());
        let header_crc = crc32c(&block);
        block.extend_from_slice(&header_crc.to_le_bytes());
        Ok(ValueFileWriter {
            file,
            block,
            frame: Vec::with_capacity(FRAME_PAYLOAD),
            block_size,
            path: path.to_path_buf(),
            count: 0,
            payload: 0,
            last: None,
            write_calls: 0,
            crc_chain: Crc32c::new(),
            fault: options.fault.clone(),
            stats: options.stats.clone(),
            cancel: options.cancel.clone(),
            publish_to,
        })
    }

    /// Appends one value; rejects values that are not strictly greater than
    /// the previous one.
    pub fn append(&mut self, value: &[u8]) -> Result<()> {
        if let Some(last) = &self.last {
            if value <= last.as_slice() {
                return Err(ValueSetError::Unsorted {
                    context: self.path.display().to_string(),
                });
            }
        }
        let len = u32::try_from(value.len()).map_err(|_| ValueSetError::Corrupt {
            context: self.path.display().to_string(),
            detail: "value longer than u32::MAX bytes".into(),
        })?;
        ind_trace::RECORD_LEN_BYTES.record(value.len() as u64);
        self.stage_logical(&len.to_le_bytes())?;
        self.stage_logical(value)?;
        self.count += 1;
        self.payload += (LEN_PREFIX + value.len()) as u64;
        match &mut self.last {
            Some(buf) => {
                buf.clear();
                buf.extend_from_slice(value);
            }
            none => *none = Some(value.to_vec()),
        }
        Ok(())
    }

    /// Stages logical bytes into the current frame, sealing (and possibly
    /// flushing) each frame as it fills. Records span frames freely — the
    /// frame grid is fixed at [`FRAME_PAYLOAD`] so the logical stream is
    /// independent of both the block size and the record boundaries.
    fn stage_logical(&mut self, mut bytes: &[u8]) -> Result<()> {
        while !bytes.is_empty() {
            let room = FRAME_PAYLOAD - self.frame.len();
            let take = room.min(bytes.len());
            self.frame.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.frame.len() == FRAME_PAYLOAD {
                self.seal_frame()?;
            }
        }
        Ok(())
    }

    /// Seals the staged frame: length prefix, payload, CRC32C — appended
    /// to the physical block, which flushes once it reaches the block
    /// size.
    fn seal_frame(&mut self) -> Result<()> {
        if self.frame.is_empty() {
            return Ok(());
        }
        debug_assert!(self.frame.len() <= FRAME_PAYLOAD);
        let crc = crc32c(&self.frame).to_le_bytes();
        self.block
            .extend_from_slice(&(self.frame.len() as u16).to_le_bytes());
        self.block.extend_from_slice(&self.frame);
        self.block.extend_from_slice(&crc);
        self.crc_chain.update(&crc);
        self.frame.clear();
        if self.block.len() >= self.block_size {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        if let Some(cancel) = &self.cancel {
            cancel.check("export")?;
        }
        if !self.block.is_empty() {
            crate::fault::write_all(
                &mut self.file,
                &self.block,
                &self.path,
                self.fault.as_ref(),
                self.stats.as_ref(),
            )?;
            self.write_calls += 1;
            self.block.clear();
        }
        Ok(())
    }

    /// Number of values appended so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total file size in bytes once finished: header, framed records
    /// staged so far (flushed or not), and footer. Recorded by the export
    /// manager so readers can size their block buffers without an `fstat`.
    pub fn bytes_written(&self) -> u64 {
        HEADER_LEN as u64 + self.payload + v2_overhead(self.payload)
    }

    /// `write_all` calls issued so far (block flushes).
    pub fn write_calls(&self) -> u64 {
        self.write_calls
    }

    /// Seals the final frame, writes the footer, patches the header's
    /// count and CRC, and returns the final count.
    pub fn finish(mut self) -> Result<u64> {
        self.seal_frame()?;
        self.block.extend_from_slice(&FOOTER_SENTINEL.to_le_bytes());
        self.block.extend_from_slice(&self.count.to_le_bytes());
        self.block.extend_from_slice(&self.payload.to_le_bytes());
        self.block
            .extend_from_slice(&self.crc_chain.finish().to_le_bytes());
        self.block.extend_from_slice(FOOTER_MAGIC);
        self.flush_block()?;
        // Patch count + header CRC in one 12-byte write at offset 8.
        let mut head = [0u8; HEADER_LEN];
        head[..4].copy_from_slice(MAGIC);
        head[4..8].copy_from_slice(&V2_VERSION.to_le_bytes());
        head[8..].copy_from_slice(&self.count.to_le_bytes());
        let mut patch = [0u8; 12];
        patch[..8].copy_from_slice(&self.count.to_le_bytes());
        patch[8..].copy_from_slice(&crc32c(&head).to_le_bytes());
        self.file
            .seek(SeekFrom::Start(8))
            .map_err(|e| ValueSetError::Io(crate::fault::annotate(&self.path, e)))?;
        crate::fault::write_all(
            &mut self.file,
            &patch,
            &self.path,
            self.fault.as_ref(),
            self.stats.as_ref(),
        )?;
        match &self.publish_to {
            Some(final_path) => {
                // Atomic publication: the fsync is load-bearing (the
                // rename must never expose a file whose bytes could still
                // be lost), and both it and the directory fsync go through
                // the fault layer so crash/fsync faults exercise them.
                crate::fault::sync_all(&self.file, &self.path, self.fault.as_ref())?;
                std::fs::rename(&self.path, final_path)
                    .map_err(|e| ValueSetError::Io(crate::fault::annotate(&self.path, e)))?;
                if let Some(parent) = final_path.parent() {
                    crate::fault::sync_dir(parent, self.fault.as_ref())?;
                }
            }
            None => {
                // lint: allow(swallowed_result) — durability hint only; the counted write above already returned any real error
                self.file.sync_data().ok(); // best-effort durability; not load-bearing
            }
        }
        Ok(self.count)
    }
}

/// Cheap structural validation of a finished v2 value file — the resume
/// sweep's per-file check. Two small reads (header and footer), no frame
/// walk: verifies magic, version, header CRC, the footer seal, that the
/// header, footer, and caller all agree on the record count, and that the
/// physical size is exactly what the footer's payload predicts
/// ([`v2_overhead`]) *and* what the caller recorded. A torn or truncated
/// file cannot pass (the footer is the last thing written before the
/// atomic rename); a bit flip inside a frame can — catching those takes
/// the full frame-CRC walk (`--resume verify`, which drains a verifying
/// reader).
pub(crate) fn verify_file_quick(
    path: &Path,
    expected_file_bytes: u64,
    expected_records: u64,
    fault: Option<&Arc<crate::fault::FaultPlan>>,
) -> Result<()> {
    use std::io::Read;
    const FOOTER_LEN: usize = FRAME_LEN_PREFIX + FOOTER_BODY_LEN;
    let fail = |detail: String| corrupt(path.display().to_string(), detail);
    crate::fault::check_open(path, fault)?;
    let mut file = crate::fault::open_file(path)?;
    let len = file
        .metadata()
        .map_err(|e| ValueSetError::Io(crate::fault::annotate(path, e)))?
        .len();
    if len != expected_file_bytes {
        return Err(fail(format!(
            "file is {len} bytes, manifest recorded {expected_file_bytes}"
        )));
    }
    if len < (V2_HEADER_LEN + FOOTER_LEN) as u64 {
        return Err(fail(format!("{len} bytes is too short for a v2 file")));
    }
    let mut head = [0u8; V2_HEADER_LEN];
    file.read_exact(&mut head)
        .map_err(|e| ValueSetError::Io(crate::fault::annotate(path, e)))?;
    if &head[..4] != MAGIC {
        return Err(fail("bad magic".into()));
    }
    // lint: allow(no_unwrap) — fixed-width slice of a fixed-size array
    let version = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if version != V2_VERSION {
        return Err(fail(format!("format version {version} is not resumable")));
    }
    // lint: allow(no_unwrap) — fixed-width slice of a fixed-size array
    let header_count = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
    // lint: allow(no_unwrap) — fixed-width slice of a fixed-size array
    let header_crc = u32::from_le_bytes(head[16..20].try_into().expect("4 bytes"));
    if crc32c(&head[..HEADER_LEN]) != header_crc {
        return Err(fail("header checksum mismatch".into()));
    }
    if header_count != expected_records {
        return Err(fail(format!(
            "header count {header_count}, manifest recorded {expected_records}"
        )));
    }
    file.seek(SeekFrom::Start(len - FOOTER_LEN as u64))
        .map_err(|e| ValueSetError::Io(crate::fault::annotate(path, e)))?;
    let mut foot = [0u8; FOOTER_LEN];
    file.read_exact(&mut foot)
        .map_err(|e| ValueSetError::Io(crate::fault::annotate(path, e)))?;
    // lint: allow(no_unwrap) — fixed-width slice of a fixed-size array
    let sentinel = u16::from_le_bytes(foot[0..2].try_into().expect("2 bytes"));
    if sentinel != FOOTER_SENTINEL || &foot[22..26] != FOOTER_MAGIC {
        return Err(fail("missing footer seal".into()));
    }
    // lint: allow(no_unwrap) — fixed-width slice of a fixed-size array
    let footer_count = u64::from_le_bytes(foot[2..10].try_into().expect("8 bytes"));
    // lint: allow(no_unwrap) — fixed-width slice of a fixed-size array
    let payload = u64::from_le_bytes(foot[10..18].try_into().expect("8 bytes"));
    if footer_count != expected_records {
        return Err(fail(format!(
            "footer count {footer_count}, manifest recorded {expected_records}"
        )));
    }
    if HEADER_LEN as u64 + payload + v2_overhead(payload) != len {
        return Err(fail(format!(
            "footer payload {payload} bytes does not account for the {len}-byte file"
        )));
    }
    Ok(())
}

/// Block-buffered reader over a value file; implements [`ValueCursor`].
///
/// `current()` is **always** a zero-copy slice into the block: records that
/// fit the block are parsed in place, and the rare record larger than the
/// block grows the block once to hold it
/// ([`BlockReader::fill_exact_growing`]) instead of being copied into a
/// side buffer — so the hot `current()` call is a single slice, no
/// branching on where the value lives. `seek` skips provably-smaller
/// records by bumping the block's consume cursor — no syscall, no copy.
pub struct ValueFileReader {
    input: BlockReader,
    path: PathBuf,
    total: u64,
    produced: u64,
    /// Current value: `cur_offset..cur_offset + cur_len` inside the block.
    /// Valid until the next fill (which only happens inside
    /// `advance`/`seek`); `(0, 0)` before the first advance.
    cur_offset: usize,
    cur_len: usize,
    /// Whether the end-of-stream check (footer verification, trailing-data
    /// detection) has run. Set on the first `advance`/`seek` that reports
    /// exhaustion, so the check costs one extra fill exactly once.
    end_checked: bool,
    cancel: Option<crate::cancel::CancelToken>,
    _guard: Option<OpenFileGuard>,
}

impl ValueFileReader {
    /// Opens `path` with default I/O options and no budget accounting.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with(path, &IoOptions::default(), None, None)
    }

    /// Opens `path` with the given block size.
    pub fn open_with_options(path: &Path, options: &IoOptions) -> Result<Self> {
        Self::open_with(path, options, None, None)
    }

    /// Opens `path`, charging one slot against `budget` for the lifetime of
    /// the reader.
    pub fn open_with_budget(path: &Path, budget: &FileBudget) -> Result<Self> {
        Self::open_with(path, &IoOptions::default(), Some(budget), None)
    }

    /// Full constructor: block size from `options`, optional open-file
    /// budget, optional shared read-call counter. The block buffer is
    /// sized with one `fstat`; use [`ValueFileReader::open_sized`] when the
    /// file size is already known.
    pub fn open_with(
        path: &Path,
        options: &IoOptions,
        budget: Option<&FileBudget>,
        stats: Option<ReadStats>,
    ) -> Result<Self> {
        let guard = budget.map(FileBudget::acquire).transpose()?;
        let stats = stats.or_else(|| options.stats.clone());
        let input = BlockReader::open_path(path, options, stats.clone(), None)?;
        Self::from_block_reader(
            input,
            path,
            guard,
            options.verify_checksums,
            stats.as_ref(),
            options.cancel.clone(),
        )
    }

    /// [`ValueFileReader::open_with`] with the file's byte size supplied by
    /// the caller (e.g. recorded at export time), so opening costs no
    /// `fstat`. An inaccurate size only affects I/O granularity, never
    /// correctness.
    pub fn open_sized(
        path: &Path,
        options: &IoOptions,
        budget: Option<&FileBudget>,
        stats: Option<ReadStats>,
        file_bytes: u64,
    ) -> Result<Self> {
        let guard = budget.map(FileBudget::acquire).transpose()?;
        let stats = stats.or_else(|| options.stats.clone());
        let input = BlockReader::open_path(path, options, stats.clone(), Some(file_bytes))?;
        Self::from_block_reader(
            input,
            path,
            guard,
            options.verify_checksums,
            stats.as_ref(),
            options.cancel.clone(),
        )
    }

    fn from_block_reader(
        mut input: BlockReader,
        path: &Path,
        guard: Option<OpenFileGuard>,
        verify: bool,
        stats: Option<&ReadStats>,
        cancel: Option<crate::cancel::CancelToken>,
    ) -> Result<Self> {
        let context = || path.display().to_string();
        let avail = input
            .fill_to(HEADER_LEN)
            .map_err(|e| corrupt(context(), e.to_string()))?;
        if avail < HEADER_LEN {
            return Err(corrupt(
                context(),
                format!("short header: {avail} of {HEADER_LEN} bytes"),
            ));
        }
        let header = input.buffered();
        if &header[..4] != MAGIC {
            return Err(corrupt(context(), "bad magic".into()));
        }
        // lint: allow(no_unwrap) — fixed-width slice of a length-checked header; try_into cannot fail
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let header_len = match version {
            // v1: un-checksummed legacy files still open; verification is
            // *counted as absent*, never assumed — there simply is no CRC.
            VERSION_V1 => HEADER_LEN,
            V2_VERSION => {
                let avail = input
                    .fill_to(V2_HEADER_LEN)
                    .map_err(|e| corrupt(context(), e.to_string()))?;
                if avail < V2_HEADER_LEN {
                    return Err(corrupt(
                        context(),
                        format!("short header: {avail} of {V2_HEADER_LEN} bytes"),
                    ));
                }
                if verify {
                    let header = input.buffered();
                    let stored = u32::from_le_bytes([
                        header[HEADER_LEN],
                        header[HEADER_LEN + 1],
                        header[HEADER_LEN + 2],
                        header[HEADER_LEN + 3],
                    ]);
                    if crc32c(&header[..HEADER_LEN]) != stored {
                        if let Some(stats) = stats {
                            stats.bump_checksum_failure();
                        }
                        return Err(corrupt(context(), "header checksum mismatch".into()));
                    }
                }
                V2_HEADER_LEN
            }
            other => {
                return Err(corrupt(context(), format!("unsupported version {other}")));
            }
        };
        let header = input.buffered();
        // lint: allow(no_unwrap) — fixed-width slice of a length-checked header; try_into cannot fail
        let total = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        input.consume(header_len);
        Ok(ValueFileReader {
            input,
            path: path.to_path_buf(),
            total,
            produced: 0,
            cur_offset: 0,
            cur_len: 0,
            end_checked: false,
            cancel,
            _guard: guard,
        })
    }

    /// File this reader is positioned over.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `read(2)` calls issued against the file so far (block fills).
    pub fn read_calls(&self) -> u64 {
        self.input.read_calls()
    }

    /// One-shot end-of-stream check, run when the cursor first reports
    /// exhaustion: one more fill drives the frame decoder through the
    /// footer (verifying the whole-file checksum and the footer's counts
    /// for v2 files) and flags any logical bytes past the final record.
    /// Clean files cost one extra read call, exactly once.
    fn verify_stream_end(&mut self) -> Result<()> {
        if self.end_checked {
            return Ok(());
        }
        self.end_checked = true;
        let ctx = || self.path.display().to_string();
        let avail = self
            .input
            .fill_to(1)
            .map_err(|e| corrupt(ctx(), format!("corrupt file tail: {e}")))?;
        if avail > 0 {
            return Err(corrupt(
                ctx(),
                "trailing data after the final record".into(),
            ));
        }
        Ok(())
    }

    /// Reads the next record's length prefix; `Ok(None)` means the stream
    /// is exhausted (per the header count).
    fn next_len(&mut self) -> Result<Option<usize>> {
        if let Some(cancel) = &self.cancel {
            cancel.check("read")?;
        }
        if self.produced >= self.total {
            self.verify_stream_end()?;
            return Ok(None);
        }
        let ctx = || self.path.display().to_string();
        let avail = self
            .input
            .fill_to(LEN_PREFIX)
            .map_err(|e| corrupt(ctx(), format!("truncated record length: {e}")))?;
        if avail < LEN_PREFIX {
            return Err(corrupt(
                ctx(),
                format!("truncated record length: {avail} of {LEN_PREFIX} bytes"),
            ));
        }
        let bytes = self.input.buffered()[..LEN_PREFIX]
            .try_into()
            // lint: allow(no_unwrap) — LEN_PREFIX-wide slice, availability checked just above
            .expect("4 bytes");
        Ok(Some(u32::from_le_bytes(bytes) as usize))
    }

    /// Buffers the whole `len`-byte record (prefix included); only callable
    /// when it fits in one block. Errors on truncation.
    fn buffer_record(&mut self, len: usize) -> Result<()> {
        debug_assert!(LEN_PREFIX + len <= self.input.capacity());
        let ctx = || self.path.display().to_string();
        let avail = self
            .input
            .fill_to(LEN_PREFIX + len)
            .map_err(|e| corrupt(ctx(), format!("truncated record body: {e}")))?;
        if avail < LEN_PREFIX + len {
            return Err(corrupt(
                ctx(),
                format!(
                    "truncated record body: {avail} of {} bytes",
                    LEN_PREFIX + len
                ),
            ));
        }
        Ok(())
    }

    /// Buffers the whole `len`-byte record even when it exceeds the block
    /// (the block grows once to hold it). Errors on truncation.
    fn buffer_record_growing(&mut self, len: usize) -> Result<()> {
        let ctx = || self.path.display().to_string();
        let avail = self
            .input
            .fill_exact_growing(LEN_PREFIX + len)
            .map_err(|e| corrupt(ctx(), format!("truncated record body: {e}")))?;
        if avail < LEN_PREFIX + len {
            return Err(corrupt(
                ctx(),
                format!(
                    "truncated record body: {avail} of {} bytes",
                    LEN_PREFIX + len
                ),
            ));
        }
        Ok(())
    }

    /// Consumes the fully-buffered record as the current value (zero-copy).
    #[inline]
    fn take_buffered(&mut self, len: usize) {
        self.input.consume(LEN_PREFIX);
        self.cur_offset = self.input.pos();
        self.cur_len = len;
        self.input.consume(len);
        self.produced += 1;
    }

    /// [`ValueCursor::advance`] continuation once the fast path missed:
    /// refill the block, or grow it for a record larger than one block.
    #[cold]
    fn advance_slow(&mut self) -> Result<bool> {
        let Some(len) = self.next_len()? else {
            return Ok(false); // unreachable: advance checked produced < total
        };
        if LEN_PREFIX + len <= self.input.capacity() {
            self.buffer_record(len)?;
        } else {
            self.buffer_record_growing(len)?;
        }
        self.take_buffered(len);
        Ok(true)
    }
}

fn corrupt(context: String, detail: String) -> ValueSetError {
    ValueSetError::Corrupt { context, detail }
}

/// Outcome of comparing a value against `lower` from a buffered prefix
/// alone, without materialising the value.
enum PrefixOrder {
    /// The value is provably `< lower` — safe to skip without reading it.
    Below,
    /// The value is provably `>= lower` — it is the seek target.
    AtOrAbove,
    /// The buffered window was too short to decide.
    Undecided,
}

/// Decides how a `len`-byte value whose first `probe.len()` bytes are
/// `probe` compares to `lower`. Conclusive whenever a byte differs inside
/// the window or either string ends there; undecided only when the shared
/// prefix runs past the window (i.e. past a whole block).
fn prefix_order(probe: &[u8], len: usize, lower: &[u8]) -> PrefixOrder {
    let p = probe.len().min(lower.len());
    match probe[..p].cmp(&lower[..p]) {
        std::cmp::Ordering::Less => PrefixOrder::Below,
        std::cmp::Ordering::Greater => PrefixOrder::AtOrAbove,
        std::cmp::Ordering::Equal => {
            if p == lower.len() {
                // The value starts with all of `lower`: >= unless it is a
                // *shorter* string, which cannot happen once len >= p.
                debug_assert!(len >= p);
                PrefixOrder::AtOrAbove
            } else if probe.len() == len {
                // Entire value seen and it is a proper prefix of `lower`.
                PrefixOrder::Below
            } else {
                PrefixOrder::Undecided
            }
        }
    }
}

impl ValueCursor for ValueFileReader {
    #[inline]
    fn advance(&mut self) -> Result<bool> {
        if self.produced >= self.total {
            self.verify_stream_end()?;
            return Ok(false);
        }
        // Fast path — the whole record (prefix + body) is already in the
        // block: parse in place, bump the consume cursor, no calls into
        // the fill machinery at all. This is the steady state; everything
        // else (block exhausted, record straddles the block, truncation)
        // takes the slow path.
        let buffered = self.input.buffered();
        if let Some(body) = buffered.get(LEN_PREFIX..) {
            let len =
                // lint: allow(no_unwrap) — the get(LEN_PREFIX..) guard above proves the prefix is buffered
                u32::from_le_bytes(buffered[..LEN_PREFIX].try_into().expect("4 bytes")) as usize;
            if body.len() >= len {
                self.take_buffered(len);
                return Ok(true);
            }
        }
        self.advance_slow()
    }

    /// Forward seek that skips value bodies without copying them: each
    /// record is compared against `lower` **inside the block**, and
    /// provably-smaller records are jumped over by bumping the consume
    /// cursor — no syscall, no copy, and truncation stays detectable
    /// because skips never move past the fill end. Only the first value
    /// `>= lower`, records larger than one block, and the rare value whose
    /// shared prefix with `lower` outruns the block are materialised.
    fn seek(&mut self, lower: &[u8]) -> Result<bool> {
        while let Some(len) = self.next_len()? {
            if LEN_PREFIX + len <= self.input.capacity() {
                // Fully buffered: the comparison sees the whole value, so
                // it is always decisive.
                self.buffer_record(len)?;
                let below = &self.input.buffered()[LEN_PREFIX..LEN_PREFIX + len] < lower;
                if below {
                    self.input.consume(LEN_PREFIX + len);
                    self.produced += 1;
                } else {
                    self.take_buffered(len);
                    return Ok(true);
                }
            } else {
                // The record straddles even a full block: decide what we
                // can from a full-block window, then materialise the body
                // by growing the block (even when skippable — a truncated
                // file must error here instead of being silently passed).
                let ctx = || self.path.display().to_string();
                let capacity = self.input.capacity();
                let avail = self
                    .input
                    .fill_to(capacity)
                    .map_err(|e| corrupt(ctx(), format!("truncated record body: {e}")))?;
                let window = avail.min(LEN_PREFIX + len);
                let order = {
                    let probe = &self.input.buffered()[LEN_PREFIX..window];
                    prefix_order(probe, len, lower)
                };
                self.buffer_record_growing(len)?;
                self.take_buffered(len);
                match order {
                    PrefixOrder::Below => {} // skipped (read only to verify it exists)
                    PrefixOrder::AtOrAbove => return Ok(true),
                    PrefixOrder::Undecided => {
                        if self.current() >= lower {
                            return Ok(true);
                        }
                    }
                }
            }
        }
        Ok(false)
    }

    #[inline]
    fn current(&self) -> &[u8] {
        debug_assert!(self.produced > 0, "current() before first advance()");
        self.input.slice(self.cur_offset, self.cur_len)
    }

    #[inline]
    fn remaining(&self) -> u64 {
        self.total - self.produced
    }

    #[inline]
    fn len(&self) -> u64 {
        self.total
    }
}

/// Writes `values` (already sorted, distinct) to `path` in one call.
pub fn write_value_file(path: &Path, values: &[Vec<u8>]) -> Result<u64> {
    let mut w = ValueFileWriter::create(path)?;
    for v in values {
        w.append(v)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_cursor;
    use crate::fault::FaultPlan;
    use ind_testkit::TempDir;

    fn bytes(items: &[&str]) -> Vec<Vec<u8>> {
        items.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn write_read_round_trip() {
        let dir = TempDir::new("vf-roundtrip");
        let path = dir.join("a.indv");
        let values = bytes(&["alpha", "beta", "gamma"]);
        assert_eq!(write_value_file(&path, &values).unwrap(), 3);

        let reader = ValueFileReader::open(&path).unwrap();
        assert_eq!(reader.len(), 3);
        assert_eq!(collect_cursor(reader).unwrap(), values);
    }

    #[test]
    fn empty_file_round_trip() {
        let dir = TempDir::new("vf-empty");
        let path = dir.join("empty.indv");
        write_value_file(&path, &[]).unwrap();
        let mut reader = ValueFileReader::open(&path).unwrap();
        assert!(reader.is_empty());
        assert!(!reader.advance().unwrap());
    }

    #[test]
    fn remaining_counts_down() {
        let dir = TempDir::new("vf-remaining");
        let path = dir.join("a.indv");
        write_value_file(&path, &bytes(&["a", "b"])).unwrap();
        let mut r = ValueFileReader::open(&path).unwrap();
        assert_eq!(r.remaining(), 2);
        assert!(r.has_next());
        r.advance().unwrap();
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.current(), b"a");
        r.advance().unwrap();
        assert_eq!(r.remaining(), 0);
        assert!(!r.has_next());
        assert!(!r.advance().unwrap());
    }

    #[test]
    fn unsorted_and_duplicate_appends_rejected() {
        let dir = TempDir::new("vf-unsorted");
        let mut w = ValueFileWriter::create(&dir.join("u.indv")).unwrap();
        w.append(b"m").unwrap();
        assert!(matches!(
            w.append(b"a"),
            Err(ValueSetError::Unsorted { .. })
        ));
        assert!(matches!(
            w.append(b"m"),
            Err(ValueSetError::Unsorted { .. })
        ));
        w.append(b"z").unwrap();
    }

    #[test]
    fn bad_magic_detected() {
        let dir = TempDir::new("vf-magic");
        let path = dir.join("bad.indv");
        std::fs::write(
            &path,
            b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",
        )
        .unwrap();
        assert!(matches!(
            ValueFileReader::open(&path),
            Err(ValueSetError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_body_detected() {
        let dir = TempDir::new("vf-trunc");
        let path = dir.join("t.indv");
        write_value_file(&path, &bytes(&["hello", "world"])).unwrap();
        // Chop off the final bytes of the file. With a block larger than
        // the file the damage is discovered during the open's first fill;
        // with a small block it surfaces mid-drain — either way it must
        // be Corrupt, never a short-but-successful stream.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        assert!(matches!(
            ValueFileReader::open(&path).and_then(collect_cursor),
            Err(ValueSetError::Corrupt { .. })
        ));
        let mut r =
            ValueFileReader::open_with_options(&path, &IoOptions::with_block_size(32)).unwrap();
        assert!(r.advance().unwrap());
        assert!(matches!(r.advance(), Err(ValueSetError::Corrupt { .. })));
    }

    #[test]
    fn truncation_detected_at_every_boundary_position() {
        // Chop the file at every possible byte position past the header;
        // draining the reader must error (never silently succeed), whether
        // the cut lands inside a length prefix, inside a body, or exactly
        // on a record boundary — and at any block size, including blocks
        // smaller than a record and blocks larger than the file.
        let dir = TempDir::new("vf-trunc-all");
        let full = dir.join("full.indv");
        let values = bytes(&["aa", "bbbb", "cccccccc", "dddddddddddddddd"]);
        write_value_file(&full, &values).unwrap();
        let data = std::fs::read(&full).unwrap();
        for block_size in [1usize, 5, 16, 64, 8192] {
            for prefetch in [false, true] {
                let options = IoOptions::with_block_size(block_size).prefetched(prefetch);
                for cut in HEADER_LEN..data.len() {
                    let path = dir.join("cut.indv");
                    std::fs::write(&path, &data[..cut]).unwrap();
                    let drained = ValueFileReader::open_with_options(&path, &options)
                        .and_then(collect_cursor);
                    assert!(
                        matches!(drained, Err(ValueSetError::Corrupt { .. })),
                        "cut at {cut} (block {block_size}, prefetch {prefetch}) \
                         must be Corrupt, got {drained:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn header_count_is_patched() {
        let dir = TempDir::new("vf-count");
        let path = dir.join("c.indv");
        let mut w = ValueFileWriter::create(&path).unwrap();
        for v in ["a", "b", "c", "d"] {
            w.append(v.as_bytes()).unwrap();
        }
        assert_eq!(w.count(), 4);
        assert_eq!(w.finish().unwrap(), 4);
        assert_eq!(ValueFileReader::open(&path).unwrap().len(), 4);
    }

    #[test]
    fn budgeted_open_charges_and_releases() {
        let dir = TempDir::new("vf-budget");
        let path = dir.join("b.indv");
        write_value_file(&path, &bytes(&["x"])).unwrap();
        let budget = FileBudget::new(1);
        let r1 = ValueFileReader::open_with_budget(&path, &budget).unwrap();
        assert!(matches!(
            ValueFileReader::open_with_budget(&path, &budget),
            Err(ValueSetError::FileBudgetExceeded { .. })
        ));
        drop(r1);
        assert!(ValueFileReader::open_with_budget(&path, &budget).is_ok());
    }

    /// The value shapes used by the seek-agreement cases: chosen to hit
    /// every branch of the prefix comparison — the empty value, shared
    /// prefixes, a prefix-of-`lower` value, and values longer than probes.
    fn seek_fixture() -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let values: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"alpha".to_vec(),
            b"alphabet".to_vec(),
            b"beta".to_vec(),
            b"betamax".to_vec(),
            vec![b'p'; 1024],
            [vec![b'p'; 1024], b"q".to_vec()].concat(),
            b"zz".to_vec(),
        ];
        let probes: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"alpha".to_vec(),
            b"alphab".to_vec(),
            b"az".to_vec(),
            b"betam".to_vec(),
            vec![b'p'; 1024],
            vec![b'p'; 1023],
            [vec![b'p'; 1024], b"a".to_vec()].concat(),
            b"zz".to_vec(),
            b"zzz".to_vec(),
        ];
        (values, probes)
    }

    /// Seek + full drain must agree with the in-memory cursor.
    fn assert_seek_agreement(path: &Path, options: &IoOptions, values: &[Vec<u8>], lower: &[u8]) {
        use crate::memory::MemoryValueSet;
        let mem = MemoryValueSet::from_sorted_distinct(values.to_vec()).unwrap();
        let mut file = ValueFileReader::open_with_options(path, options).unwrap();
        let mut mem_cursor = mem.cursor();
        let found_file = file.seek(lower).unwrap();
        let found_mem = mem_cursor.seek(lower).unwrap();
        assert_eq!(found_file, found_mem, "lower={lower:?} options={options:?}");
        if found_file {
            assert_eq!(file.current(), mem_cursor.current(), "lower={lower:?}");
        }
        // The suffix after the seek must agree too (seek is forward-only
        // positioning, not a point query).
        loop {
            let (a, b) = (file.advance().unwrap(), mem_cursor.advance().unwrap());
            assert_eq!(a, b, "lower={lower:?}");
            if !a {
                break;
            }
            assert_eq!(file.current(), mem_cursor.current(), "lower={lower:?}");
        }
    }

    #[test]
    fn seek_agrees_with_memory_cursor_on_the_same_data() {
        let (values, probes) = seek_fixture();
        let dir = TempDir::new("vf-seek");
        let path = dir.join("s.indv");
        write_value_file(&path, &values).unwrap();
        for lower in &probes {
            assert_seek_agreement(&path, &IoOptions::default(), &values, lower);
        }
    }

    #[test]
    fn seek_agrees_at_tiny_block_sizes() {
        // Blocks far smaller than the records force every record through
        // the straddling (spill) paths; blocks of a few bytes are clamped
        // to the minimum and still straddle everything over 12 bytes.
        let (values, probes) = seek_fixture();
        let dir = TempDir::new("vf-seek-tiny");
        let path = dir.join("s.indv");
        write_value_file(&path, &values).unwrap();
        for block_size in [1usize, 3, 16, 17, 64, 1025] {
            let options = IoOptions::with_block_size(block_size);
            for lower in &probes {
                assert_seek_agreement(&path, &options, &values, lower);
            }
        }
    }

    #[test]
    fn round_trip_at_block_sizes_straddling_every_record() {
        // Record bodies larger than, equal to, and one byte either side of
        // the block size; writer and reader block sizes vary independently.
        let dir = TempDir::new("vf-straddle");
        let mut values: Vec<Vec<u8>> = (0..40u8)
            .map(|i| {
                let len = usize::from(i) * 3 % 61;
                let mut v = vec![b'a' + (i % 26); len];
                v.push(i); // force distinctness
                v
            })
            .collect();
        values.push(vec![b'z'; 5000]); // larger than every tested block
        values.sort_unstable();
        values.dedup();
        for write_block in [1usize, 17, 4096] {
            let path = dir.join(&format!("w{write_block}.indv"));
            let mut w = ValueFileWriter::create_with_options(
                &path,
                &IoOptions::with_block_size(write_block),
            )
            .unwrap();
            for v in &values {
                w.append(v).unwrap();
            }
            assert_eq!(w.finish().unwrap() as usize, values.len());
            for read_block in [1usize, 16, 31, 61, 62, 63, 4096, 16384] {
                let r = ValueFileReader::open_with_options(
                    &path,
                    &IoOptions::with_block_size(read_block),
                )
                .unwrap();
                assert_eq!(
                    collect_cursor(r).unwrap(),
                    values,
                    "write_block={write_block} read_block={read_block}"
                );
            }
        }
    }

    #[test]
    fn writer_coalesces_records_into_frame_sized_writes() {
        // 200 records through a default-sized block all stay staged until
        // `finish` (zero flushes on the way), and `bytes_written` predicts
        // the exact physical size: logical bytes plus the v2 framing.
        let dir = TempDir::new("vf-writer-coalesce");
        let values: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("{i:06}").into_bytes())
            .collect();

        let big_path = dir.join("big.indv");
        let mut big = ValueFileWriter::create(&big_path).unwrap();
        for v in &values {
            big.append(v).unwrap();
        }
        assert_eq!(big.write_calls(), 0, "default block holds everything");
        let payload = 200 * 10u64;
        assert_eq!(
            big.bytes_written(),
            HEADER_LEN as u64 + payload + v2_overhead(payload)
        );
        let predicted = big.bytes_written();
        big.finish().unwrap();
        assert_eq!(
            std::fs::metadata(&big_path).unwrap().len(),
            predicted,
            "bytes_written predicts the finished file size exactly"
        );

        // With a tiny block, physical writes happen once per sealed 4 KiB
        // frame — never once per record (30 000 payload bytes = 7 full
        // frames during the appends, nowhere near 3000 writes).
        let many: Vec<Vec<u8>> = (0..3000u32)
            .map(|i| format!("{i:06}").into_bytes())
            .collect();
        let mut small = ValueFileWriter::create_with_options(
            &dir.join("small.indv"),
            &IoOptions::with_block_size(32),
        )
        .unwrap();
        for v in &many {
            small.append(v).unwrap();
        }
        let flushes = small.write_calls();
        small.finish().unwrap();
        assert!(
            (2..=20).contains(&flushes),
            "one write per sealed frame, not per record: {flushes}"
        );
    }

    #[test]
    fn writer_output_is_identical_at_any_block_size() {
        // The block size is an I/O knob, never a format knob.
        let dir = TempDir::new("vf-writer-id");
        let values = bytes(&["a", "bb", "ccc", "dddd"]);
        let reference = dir.join("ref.indv");
        write_value_file(&reference, &values).unwrap();
        let expected = std::fs::read(&reference).unwrap();
        for block_size in [1usize, 7, 16, 1024] {
            let path = dir.join(&format!("b{block_size}.indv"));
            let mut w = ValueFileWriter::create_with_options(
                &path,
                &IoOptions::with_block_size(block_size),
            )
            .unwrap();
            for v in &values {
                w.append(v).unwrap();
            }
            w.finish().unwrap();
            assert_eq!(
                std::fs::read(&path).unwrap(),
                expected,
                "block_size={block_size}"
            );
        }
    }

    #[test]
    fn reader_counts_block_fills_not_records() {
        let dir = TempDir::new("vf-readcalls");
        let path = dir.join("r.indv");
        let values: Vec<Vec<u8>> = (0..1000u32)
            .map(|i| format!("value-{i:08}").into_bytes())
            .collect();
        write_value_file(&path, &values).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len();

        // Big block: the whole file arrives in ~one fill.
        let r = ValueFileReader::open_with_options(&path, &IoOptions::default()).unwrap();
        let big_block = {
            let mut r = r;
            let mut n = 0u64;
            while r.advance().unwrap() {
                n += 1;
            }
            assert_eq!(n, 1000);
            r.read_calls()
        };
        assert!(
            big_block <= 3,
            "a {file_len}-byte file must fill in a couple of reads, got {big_block}"
        );

        // Small block: fills scale with file size / block size, but stay
        // far below one per record.
        let mut r =
            ValueFileReader::open_with_options(&path, &IoOptions::with_block_size(256)).unwrap();
        while r.advance().unwrap() {}
        let small_block = r.read_calls();
        assert!(
            small_block >= 10 * big_block,
            "256-byte blocks over {file_len} bytes: {small_block} vs {big_block}"
        );
        assert!(
            small_block < 1000,
            "even tiny blocks must not read once per record: {small_block}"
        );
    }

    #[test]
    fn current_is_zero_copy_for_buffered_records() {
        // Consecutive records served from one block must be *adjacent in
        // memory* (previous value + its 4-byte length prefix) — the proof
        // that `current()` points into the block instead of copying into a
        // per-record buffer.
        let dir = TempDir::new("vf-zerocopy");
        let path = dir.join("z.indv");
        let values = bytes(&["aaa", "bbbb", "ccccc"]);
        write_value_file(&path, &values).unwrap();
        let mut r = ValueFileReader::open(&path).unwrap();
        assert!(r.advance().unwrap());
        let first = r.current().as_ptr() as usize;
        let first_len = r.current().len();
        assert!(r.advance().unwrap());
        let second = r.current().as_ptr() as usize;
        assert_eq!(
            second,
            first + first_len + 4,
            "second record must sit right after the first inside the block"
        );

        // A value larger than the block is still served in place: the
        // block grows to hold it instead of copying it out.
        let mixed = dir.join("mix.indv");
        let big = vec![b'x'; 100];
        write_value_file(&mixed, &[b"aa".to_vec(), big.clone()]).unwrap();
        let mut r =
            ValueFileReader::open_with_options(&mixed, &IoOptions::with_block_size(32)).unwrap();
        assert!(r.advance().unwrap());
        assert_eq!(r.current(), b"aa");
        assert!(r.advance().unwrap());
        assert_eq!(r.current(), big.as_slice());
    }

    #[test]
    fn seek_skips_without_read_calls_inside_a_block() {
        // Once the block is filled, skipping provably-smaller records is a
        // pure consume-cursor bump: seeking across hundreds of records must
        // not add a single read call beyond the fills already needed.
        let dir = TempDir::new("vf-seek-nocalls");
        let path = dir.join("s.indv");
        let values: Vec<Vec<u8>> = (0..500u32)
            .map(|i| format!("{i:06}").into_bytes())
            .collect();
        write_value_file(&path, &values).unwrap();
        let mut r = ValueFileReader::open(&path).unwrap();
        assert!(r.seek(b"000499").unwrap());
        assert_eq!(r.current(), b"000499");
        assert!(
            r.read_calls() <= 2,
            "in-block seek must not issue per-record reads, got {}",
            r.read_calls()
        );
    }

    #[test]
    fn seek_is_forward_only_after_partial_advance() {
        let dir = TempDir::new("vf-seek-fwd");
        let path = dir.join("f.indv");
        write_value_file(&path, &bytes(&["a", "b", "c", "d"])).unwrap();
        let mut r = ValueFileReader::open(&path).unwrap();
        assert!(r.advance().unwrap());
        assert!(r.advance().unwrap());
        assert_eq!(r.current(), b"b");
        // Seeking below the current position may not rewind: the next value
        // produced is the first not-yet-produced one >= lower.
        assert!(r.seek(b"a").unwrap());
        assert_eq!(r.current(), b"c");
        assert!(r.seek(b"d").unwrap());
        assert_eq!(r.current(), b"d");
        assert!(!r.seek(b"e").unwrap());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn seek_reports_truncated_bodies_like_advance() {
        // A record body chopped mid-value must surface as Corrupt from
        // `seek` too — the skip fast path may never seek past missing
        // bytes. Exercised both with the record straddling the block (the
        // spill fallback errors) and fully-fitting (the fill comes up
        // short).
        let dir = TempDir::new("vf-seek-trunc");
        let path = dir.join("t.indv");
        let values = vec![b"aaa".to_vec(), vec![b'b'; 16 * 1024]];
        write_value_file(&path, &values).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 100]).unwrap();
        for block_size in [64usize, 4096, 64 * 1024] {
            let mut r =
                ValueFileReader::open_with_options(&path, &IoOptions::with_block_size(block_size))
                    .unwrap();
            assert!(
                matches!(r.seek(b"zzz"), Err(ValueSetError::Corrupt { .. })),
                "block_size={block_size}"
            );
        }
    }

    #[test]
    fn seek_decides_shared_prefixes_longer_than_the_block() {
        // A shared prefix longer than the whole block forces the undecided
        // fallback path (spill + compare) and must still agree with the
        // in-memory answer.
        use crate::memory::MemoryValueSet;
        let prefix = vec![b'x'; 12 * 1024];
        let values: Vec<Vec<u8>> = vec![
            [prefix.clone(), b"a".to_vec()].concat(),
            [prefix.clone(), b"m".to_vec()].concat(),
            [prefix.clone(), b"z".to_vec()].concat(),
        ];
        let dir = TempDir::new("vf-seek-bigprefix");
        let path = dir.join("big.indv");
        write_value_file(&path, &values).unwrap();
        let mem = MemoryValueSet::from_sorted_distinct(values.clone()).unwrap();
        let options = IoOptions::with_block_size(4096); // prefix outruns the block
        for lower in [
            [prefix.clone(), b"b".to_vec()].concat(),
            [prefix.clone(), b"z".to_vec()].concat(),
            [prefix.clone(), b"zz".to_vec()].concat(),
        ] {
            let mut file = ValueFileReader::open_with_options(&path, &options).unwrap();
            let mut mem_cursor = mem.cursor();
            let found = file.seek(&lower).unwrap();
            assert_eq!(found, mem_cursor.seek(&lower).unwrap());
            if found {
                assert_eq!(file.current(), mem_cursor.current());
            }
        }
    }

    /// Hand-writes a legacy v1 file (un-checksummed raw stream).
    fn write_v1_file(path: &Path, values: &[Vec<u8>]) {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION_V1.to_le_bytes());
        out.extend_from_slice(&(values.len() as u64).to_le_bytes());
        for v in values {
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        std::fs::write(path, out).unwrap();
    }

    #[test]
    fn v1_files_still_open_without_checksums() {
        let dir = TempDir::new("vf-v1-compat");
        let path = dir.join("legacy.indv");
        let values = bytes(&["alpha", "beta", "gamma", "delta"]);
        write_v1_file(&path, &values);
        for block_size in [1usize, 64, 8192] {
            for prefetch in [false, true] {
                let stats = ReadStats::new();
                let options = IoOptions::with_block_size(block_size).prefetched(prefetch);
                let r =
                    ValueFileReader::open_with(&path, &options, None, Some(stats.clone())).unwrap();
                assert_eq!(collect_cursor(r).unwrap(), values);
                assert_eq!(
                    stats.checksum_failures(),
                    0,
                    "v1 files carry no checksums: verification is absent, not failed"
                );
            }
        }
    }

    #[test]
    fn every_bit_flip_in_the_file_is_detected() {
        // Flip one bit in *every* byte of a finished multi-frame v2 file;
        // opening + fully draining must always surface Corrupt — header
        // flips via the header CRC (or magic/version checks), payload and
        // frame-geometry flips via the frame CRCs, footer flips via the
        // end-of-stream check. Never a silent wrong answer, never a hang.
        let dir = TempDir::new("vf-flip-sweep");
        let full = dir.join("full.indv");
        let values: Vec<Vec<u8>> = (0..300u32)
            .map(|i| format!("value-{i:08}").into_bytes())
            .collect();
        write_value_file(&full, &values).unwrap();
        let data = std::fs::read(&full).unwrap();
        assert!(data.len() > V2_HEADER_LEN + FRAME_PAYLOAD, "multi-frame");
        let stats = ReadStats::new();
        let options = IoOptions::with_block_size(256);
        let path = dir.join("flipped.indv");
        for byte in 0..data.len() {
            let mut bad = data.clone();
            bad[byte] ^= 1 << (byte % 8);
            std::fs::write(&path, &bad).unwrap();
            let drained = ValueFileReader::open_with(&path, &options, None, Some(stats.clone()))
                .and_then(collect_cursor);
            match drained {
                Err(ValueSetError::Corrupt { context, .. }) => {
                    assert!(context.contains("flipped.indv"), "context names the file");
                }
                other => panic!("flip at byte {byte}: expected Corrupt, got {other:?}"),
            }
        }
        assert!(
            stats.checksum_failures() as usize >= data.len() / 2,
            "most flips are caught by a checksum comparison: {}",
            stats.checksum_failures()
        );
    }

    #[test]
    fn verify_off_skips_checksums_but_not_structure() {
        let dir = TempDir::new("vf-verify-off");
        let path = dir.join("v.indv");
        let values = bytes(&["aaaa", "bbbb", "cccc"]);
        write_value_file(&path, &values).unwrap();
        let data = std::fs::read(&path).unwrap();

        // Flip a bit inside the first record's body (header 20 + frame
        // prefix 2 + record length prefix 4 = offset 26): verify-off
        // serves the flipped byte, verify-on refuses it.
        let mut flipped = data.clone();
        flipped[26] ^= 0x04;
        std::fs::write(&path, &flipped).unwrap();
        let relaxed =
            ValueFileReader::open_with_options(&path, &IoOptions::default().verify(false))
                .and_then(collect_cursor)
                .unwrap();
        assert_ne!(relaxed, values, "verify-off trades detection for speed");
        assert!(matches!(
            ValueFileReader::open(&path).and_then(collect_cursor),
            Err(ValueSetError::Corrupt { .. })
        ));

        // Structural damage (mid-frame truncation) errs either way.
        std::fs::write(&path, &data[..data.len() - 10]).unwrap();
        assert!(matches!(
            ValueFileReader::open_with_options(&path, &IoOptions::default().verify(false))
                .and_then(collect_cursor),
            Err(ValueSetError::Corrupt { .. })
        ));
    }

    #[test]
    fn io_errors_name_the_file() {
        let dir = TempDir::new("vf-io-path");
        let missing = dir.join("no-such-file.indv");
        let err = match ValueFileReader::open(&missing) {
            Err(e) => e,
            Ok(_) => panic!("opening a missing file must fail"),
        };
        assert!(matches!(err, ValueSetError::Io(_)));
        assert!(
            err.to_string().contains("no-such-file.indv"),
            "reader open error must name the file: {err}"
        );

        let unwritable = dir.join("no-such-dir").join("out.indv");
        let err = match ValueFileWriter::create(&unwritable) {
            Err(e) => e,
            Ok(_) => panic!("creating in a missing directory must fail"),
        };
        assert!(matches!(err, ValueSetError::Io(_)));
        assert!(
            err.to_string().contains("out.indv"),
            "writer create error must name the file: {err}"
        );

        let plan = Arc::new(FaultPlan::parse("write:flaky:enospc").unwrap());
        let flaky = dir.join("flaky.indv");
        let mut w = ValueFileWriter::create_with_options(
            &flaky,
            &IoOptions::with_block_size(32).with_fault(plan),
        )
        .unwrap();
        let mut err = None;
        for i in 0..2000u32 {
            // Enough appends to force a flush into the injected ENOSPC.
            if let Err(e) = w.append(format!("{i:08}").as_bytes()) {
                err = Some(e);
                break;
            }
        }
        let err = err.expect("the injected ENOSPC must surface");
        assert!(matches!(err, ValueSetError::Io(_)));
        assert!(
            err.to_string().contains("flaky.indv"),
            "write error must name the file: {err}"
        );
    }

    #[test]
    fn injected_read_faults_are_healed_or_reported() {
        let dir = TempDir::new("vf-read-faults");
        let path = dir.join("r.indv");
        let values: Vec<Vec<u8>> = (0..500u32)
            .map(|i| format!("{i:06}").into_bytes())
            .collect();
        write_value_file(&path, &values).unwrap();

        // EINTR + short reads: healed at the wrapper, counted, invisible.
        for prefetch in [false, true] {
            let stats = ReadStats::new();
            let plan =
                Arc::new(FaultPlan::parse("read:r.indv:eintr@7, read:r.indv:short@5").unwrap());
            let options = IoOptions::with_block_size(128)
                .prefetched(prefetch)
                .with_fault(plan.clone());
            let r = ValueFileReader::open_with(&path, &options, None, Some(stats.clone())).unwrap();
            assert_eq!(collect_cursor(r).unwrap(), values, "prefetch={prefetch}");
            assert!(
                stats.io_retries() >= 7,
                "transient faults are counted: {} (prefetch={prefetch})",
                stats.io_retries()
            );
            assert!(plan.fired_count() >= 7);
        }

        // Truncation mid-file: Corrupt, with the path in the context.
        let plan = Arc::new(FaultPlan::parse("read:r.indv:truncate=1000").unwrap());
        let r = ValueFileReader::open_with_options(
            &path,
            &IoOptions::with_block_size(128).with_fault(plan),
        )
        .and_then(collect_cursor);
        match r {
            Err(ValueSetError::Corrupt { context, .. }) => assert!(context.contains("r.indv")),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Bit flip mid-file: the frame checksum catches it.
        let stats = ReadStats::new();
        let plan = Arc::new(FaultPlan::parse("read:r.indv:flip=2000").unwrap());
        let r = ValueFileReader::open_with(
            &path,
            &IoOptions::with_block_size(128).with_fault(plan),
            None,
            Some(stats.clone()),
        )
        .and_then(collect_cursor);
        assert!(matches!(r, Err(ValueSetError::Corrupt { .. })), "{r:?}");
        assert_eq!(stats.checksum_failures(), 1);

        // Failed open: Io, with the path.
        let plan = Arc::new(FaultPlan::parse("open:r.indv:fail").unwrap());
        let r = ValueFileReader::open_with_options(&path, &IoOptions::default().with_fault(plan));
        match r {
            Err(ValueSetError::Io(e)) => assert!(e.to_string().contains("r.indv")),
            Err(other) => panic!("expected Io, got {other:?}"),
            Ok(_) => panic!("expected Io, got a reader"),
        }
    }

    #[test]
    fn binary_values_round_trip() {
        let dir = TempDir::new("vf-binary");
        let path = dir.join("bin.indv");
        let values = vec![vec![0u8], vec![0u8, 1u8], vec![255u8; 1000]];
        write_value_file(&path, &values).unwrap();
        assert_eq!(
            collect_cursor(ValueFileReader::open(&path).unwrap()).unwrap(),
            values
        );
    }
}
