//! # ind-valueset
//!
//! The sorted-value-set substrate beneath the paper's database-external
//! algorithms (Sec. 3): canonical byte-string value sets extracted per
//! attribute, persisted to counted, strictly-sorted value files; a
//! block-oriented zero-copy I/O layer ([`BlockReader`], [`IoOptions`])
//! serving forward cursors straight out of large read blocks; an external
//! merge sort standing in for the RDBMS's sort machinery; and an open-file
//! budget that makes the operating-system limit of Sec. 4.2 an explicit,
//! testable resource.

#![warn(missing_docs)]

mod block;
mod budget;
pub mod cancel;
mod crc32c;
mod cursor;
mod error;
mod external_sort;
mod extract;
pub mod fault;
mod format;
mod frame;
mod heap;
mod manager;
mod manifest;
mod memory;
mod prefetch;
mod range;
mod tuple;

pub use block::{BlockReader, IoOptions, ReadStats, DEFAULT_BLOCK_SIZE, MIN_BLOCK_SIZE};
pub use budget::{FileBudget, OpenFileGuard};
pub use cancel::CancelToken;
pub use crc32c::{crc32c, Crc32c};
pub use cursor::{collect_cursor, ValueCursor, ValueSetProvider};
pub use error::{Result, ValueSetError};
pub use external_sort::{ExternalSorter, SortOptions, SortStats};
pub use extract::{
    extract_composite_memory_set, extract_composite_to_file, extract_composite_with_sorter,
    extract_memory_set, extract_memory_sets_parallel, extract_sorted_distinct, extract_to_file,
    extract_with_sorter, MAX_COMPOSITE_ARITY,
};
pub use fault::FaultPlan;
pub use format::{write_value_file, ValueFileReader, ValueFileWriter};
pub use heap::{key_prefix64, LazyMinHeap};
pub use manager::{
    CompositeExport, ExportOptions, ExportedAttribute, ExportedComposite, ExportedDatabase,
    FailedAttribute, ResumeMode,
};
pub use manifest::{Manifest, ManifestEntry, MANIFEST_NAME};
pub use memory::{MemoryCursor, MemoryProvider, MemoryValueSet};
pub use prefetch::{PartitionCursor, SharedShard, SharedStreamProvider};
pub use range::{RangeCursor, RangeProvider};
pub use tuple::{decode_tuple, encode_tuple, encode_tuple_into, tuple_arity};
