//! Range-bounded cursors: the substrate of value-domain-partitioned
//! discovery (`ind-core`'s parallel SPIDER).
//!
//! A [`RangeCursor`] restricts an inner [`ValueCursor`] to the half-open
//! byte-string interval `[lower, upper)`. The lower bound is applied with
//! [`ValueCursor::seek`] on the first advance (binary search for in-memory
//! sets, forward scan for value files); the upper bound clamps the stream:
//! the first value `>= upper` ends it. `None` on either side leaves that
//! side unbounded, so `RangeCursor::new(inner, None, None)` behaves exactly
//! like the inner cursor.
//!
//! Because the inner sets are sorted and duplicate-free, the streams of the
//! cursors for one attribute over the members of a partition of the value
//! domain concatenate back to exactly the attribute's full stream — the
//! property that makes per-partition discovery results intersectable.

use crate::cursor::ValueCursor;
use crate::error::Result;

/// A [`ValueCursor`] clamped to the half-open interval `[lower, upper)`.
#[derive(Debug, Clone)]
pub struct RangeCursor<C> {
    inner: C,
    lower: Option<Vec<u8>>,
    upper: Option<Vec<u8>>,
    started: bool,
    done: bool,
}

impl<C: ValueCursor> RangeCursor<C> {
    /// Clamps `inner` to `[lower, upper)`; `None` means unbounded on that
    /// side. The inner cursor must not have produced any value yet.
    pub fn new(inner: C, lower: Option<&[u8]>, upper: Option<&[u8]>) -> Self {
        RangeCursor {
            inner,
            lower: lower.map(<[u8]>::to_vec),
            upper: upper.map(<[u8]>::to_vec),
            started: false,
            done: false,
        }
    }

    /// The wrapped cursor.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: ValueCursor> ValueCursor for RangeCursor<C> {
    fn advance(&mut self) -> Result<bool> {
        if self.done {
            return Ok(false);
        }
        let produced = if self.started {
            self.inner.advance()?
        } else {
            self.started = true;
            match &self.lower {
                Some(lower) => self.inner.seek(lower)?,
                None => self.inner.advance()?,
            }
        };
        if !produced {
            self.done = true;
            return Ok(false);
        }
        if let Some(upper) = &self.upper {
            if self.inner.current() >= upper.as_slice() {
                self.done = true;
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn current(&self) -> &[u8] {
        self.inner.current()
    }

    /// Upper bound only: values at or beyond `upper` cannot be subtracted
    /// without lookahead. `0` is still exact once the clamp has fired.
    fn remaining(&self) -> u64 {
        if self.done {
            0
        } else {
            self.inner.remaining()
        }
    }

    /// Length of the *inner* set (the clamped count is unknowable without a
    /// scan).
    fn len(&self) -> u64 {
        self.inner.len()
    }
}

/// A range-restricted view of a [`ValueSetProvider`]: every cursor it opens
/// is clamped to `[lower, upper)`. Lets any discovery algorithm run over
/// one slice of the value domain unchanged.
#[derive(Debug, Clone)]
pub struct RangeProvider<'p, P> {
    inner: &'p P,
    lower: Option<Vec<u8>>,
    upper: Option<Vec<u8>>,
}

impl<'p, P: crate::cursor::ValueSetProvider> RangeProvider<'p, P> {
    /// Restricts `inner` to `[lower, upper)`; `None` means unbounded.
    pub fn new(inner: &'p P, lower: Option<&[u8]>, upper: Option<&[u8]>) -> Self {
        RangeProvider {
            inner,
            lower: lower.map(<[u8]>::to_vec),
            upper: upper.map(<[u8]>::to_vec),
        }
    }
}

impl<P: crate::cursor::ValueSetProvider> crate::cursor::ValueSetProvider for RangeProvider<'_, P> {
    type Cursor = RangeCursor<P::Cursor>;

    fn open(&self, id: u32) -> Result<Self::Cursor> {
        Ok(RangeCursor::new(
            self.inner.open(id)?,
            self.lower.as_deref(),
            self.upper.as_deref(),
        ))
    }

    fn attribute_count(&self) -> usize {
        self.inner.attribute_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_cursor;
    use crate::memory::MemoryValueSet;

    fn set(values: &[&str]) -> MemoryValueSet {
        MemoryValueSet::from_unsorted(values.iter().map(|s| s.as_bytes().to_vec()))
    }

    fn collected(values: &[&str], lower: Option<&str>, upper: Option<&str>) -> Vec<Vec<u8>> {
        let cursor = RangeCursor::new(
            set(values).cursor(),
            lower.map(str::as_bytes),
            upper.map(str::as_bytes),
        );
        collect_cursor(cursor).unwrap()
    }

    fn bytes(values: &[&str]) -> Vec<Vec<u8>> {
        values.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn unbounded_matches_inner() {
        let values = ["a", "c", "e", "g"];
        assert_eq!(collected(&values, None, None), bytes(&values));
    }

    #[test]
    fn lower_bound_is_inclusive_and_seeks() {
        let values = ["a", "c", "e", "g"];
        assert_eq!(collected(&values, Some("c"), None), bytes(&["c", "e", "g"]));
        assert_eq!(collected(&values, Some("d"), None), bytes(&["e", "g"]));
        assert_eq!(collected(&values, Some("z"), None), bytes(&[]));
    }

    #[test]
    fn upper_bound_is_exclusive() {
        let values = ["a", "c", "e", "g"];
        assert_eq!(collected(&values, None, Some("e")), bytes(&["a", "c"]));
        assert_eq!(collected(&values, None, Some("f")), bytes(&["a", "c", "e"]));
        assert_eq!(collected(&values, None, Some("a")), bytes(&[]));
    }

    #[test]
    fn partition_streams_concatenate_to_the_full_stream() {
        let values = ["apple", "banana", "cherry", "date", "elder", "fig"];
        let cuts: [Option<&str>; 4] = [None, Some("banana"), Some("dachs"), None];
        let mut rebuilt = Vec::new();
        for window in cuts.windows(2) {
            rebuilt.extend(collected(&values, window[0], window[1]));
        }
        assert_eq!(rebuilt, bytes(&values));
    }

    #[test]
    fn advance_after_exhaustion_stays_false() {
        let mut cursor = RangeCursor::new(set(&["a", "b"]).cursor(), None, Some(b"b"));
        assert!(cursor.advance().unwrap());
        assert!(!cursor.advance().unwrap());
        assert!(!cursor.advance().unwrap(), "done flag must latch");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn range_provider_clamps_every_cursor() {
        use crate::cursor::ValueSetProvider;
        use crate::memory::MemoryProvider;
        let inner = MemoryProvider::new(vec![set(&["a", "c", "e"]), set(&["b", "d", "f"])]);
        let view = RangeProvider::new(&inner, Some(b"b"), Some(b"e"));
        assert_eq!(view.attribute_count(), 2);
        assert_eq!(
            collect_cursor(view.open(0).unwrap()).unwrap(),
            bytes(&["c"])
        );
        assert_eq!(
            collect_cursor(view.open(1).unwrap()).unwrap(),
            bytes(&["b", "d"])
        );
    }

    #[test]
    fn value_file_cursors_clamp_identically() {
        use crate::format::{write_value_file, ValueFileReader};
        use ind_testkit::TempDir;
        let dir = TempDir::new("range-file");
        let path = dir.join("v.indv");
        let values = bytes(&["alpha", "beta", "gamma", "delta", "omega"]);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        write_value_file(&path, &sorted).unwrap();
        let clamped = RangeCursor::new(
            ValueFileReader::open(&path).unwrap(),
            Some(b"beta"),
            Some(b"omega"),
        );
        assert_eq!(
            collect_cursor(clamped).unwrap(),
            bytes(&["beta", "delta", "gamma"])
        );
    }

    #[test]
    fn partitioned_file_streams_concatenate_at_any_block_size() {
        // The parallel-SPIDER substrate: range-clamped block readers whose
        // lower bound lands mid-block (seek fast path), on a boundary, or
        // inside a record that straddles the block — the concatenation of
        // the partition streams must rebuild the full stream exactly.
        use crate::block::IoOptions;
        use crate::format::{write_value_file, ValueFileReader};
        use ind_testkit::TempDir;
        let mut values: Vec<Vec<u8>> = (0..60u32)
            .map(|i| format!("k{i:04}").into_bytes())
            .collect();
        values.push(vec![b'z'; 300]); // straddles the small test blocks
        values.sort_unstable();
        let dir = TempDir::new("range-file-blocks");
        let path = dir.join("v.indv");
        write_value_file(&path, &values).unwrap();
        let cuts: [Option<&[u8]>; 5] = [
            None,
            Some(b"k0010"),
            Some(b"k0033x"), // between two values
            Some(b"z"),
            None,
        ];
        for block_size in [1usize, 16, 24, 299, 8192] {
            let options = IoOptions::with_block_size(block_size);
            let mut rebuilt = Vec::new();
            for window in cuts.windows(2) {
                let inner = ValueFileReader::open_with_options(&path, &options).unwrap();
                rebuilt
                    .extend(collect_cursor(RangeCursor::new(inner, window[0], window[1])).unwrap());
            }
            assert_eq!(rebuilt, values, "block_size={block_size}");
        }
    }
}
