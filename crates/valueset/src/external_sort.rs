//! External merge sort with duplicate elimination.
//!
//! This is the stand-in for the RDBMS's sort machinery: the paper lets the
//! database produce sorted, distinct value sets ("using the RDBMS only for
//! tasks it is good at", Sec. 3) and ships them to files. Our sorter accepts
//! unsorted values, keeps a bounded in-memory buffer, spills sorted runs to
//! disk when the buffer fills, and k-way merges the runs (plus the final
//! buffer) into a strictly increasing output stream.

use crate::block::IoOptions;
use crate::cursor::ValueCursor;
use crate::error::Result;
use crate::format::{ValueFileReader, ValueFileWriter};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::{Path, PathBuf};

/// Tuning for the external sorter.
#[derive(Debug, Clone)]
pub struct SortOptions {
    /// Approximate in-memory buffer limit in bytes before a spill; the
    /// buffer always admits at least one value.
    pub memory_budget_bytes: usize,
    /// Block size for spill-run writers and the merge-phase readers.
    pub io: IoOptions,
}

impl Default for SortOptions {
    fn default() -> Self {
        SortOptions {
            memory_budget_bytes: Self::DEFAULT_MEMORY_BUDGET,
            io: IoOptions::default(),
        }
    }
}

impl SortOptions {
    /// Default memory budget: large enough that test- and bench-scale
    /// attributes sort fully in memory; small enough to spill on the
    /// biggest PDB-like runs.
    pub const DEFAULT_MEMORY_BUDGET: usize = 64 << 20;

    /// Budget override with default I/O options.
    pub fn with_memory_budget(memory_budget_bytes: usize) -> Self {
        SortOptions {
            memory_budget_bytes,
            ..Default::default()
        }
    }
}

/// Summary of one sorted attribute extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortStats {
    /// Values pushed in (non-null occurrences, with duplicates).
    pub pushed: u64,
    /// Distinct values written out.
    pub distinct: u64,
    /// Spill runs created (0 = fully in-memory).
    pub runs: usize,
    /// Final byte size of the output value file (header + records) —
    /// recorded so readers can size their block buffers without `fstat`.
    pub file_bytes: u64,
    /// Smallest output value, if any.
    pub min: Option<Vec<u8>>,
    /// Largest output value, if any.
    pub max: Option<Vec<u8>>,
}

/// External sorter; push values, then [`ExternalSorter::finish_into`] a
/// value-file writer.
pub struct ExternalSorter {
    buffer: Vec<Vec<u8>>,
    buffer_bytes: usize,
    options: SortOptions,
    spill_dir: PathBuf,
    runs: Vec<PathBuf>,
    pushed: u64,
}

impl ExternalSorter {
    /// Creates a sorter spilling into `spill_dir` (created if missing).
    pub fn new(spill_dir: &Path, options: SortOptions) -> Result<Self> {
        std::fs::create_dir_all(spill_dir)?;
        Ok(ExternalSorter {
            buffer: Vec::new(),
            buffer_bytes: 0,
            options,
            spill_dir: spill_dir.to_path_buf(),
            runs: Vec::new(),
            pushed: 0,
        })
    }

    /// Adds one value (unsorted, duplicates welcome).
    pub fn push(&mut self, value: &[u8]) -> Result<()> {
        self.pushed += 1;
        self.buffer_bytes += value.len() + std::mem::size_of::<Vec<u8>>();
        self.buffer.push(value.to_vec());
        if self.buffer_bytes >= self.options.memory_budget_bytes && self.buffer.len() > 1 {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<()> {
        self.buffer.sort_unstable();
        self.buffer.dedup();
        let path = self
            .spill_dir
            .join(format!("run-{:04}.indv", self.runs.len()));
        let mut w = ValueFileWriter::create_with_options(&path, &self.options.io)?;
        for v in &self.buffer {
            w.append(v)?;
        }
        w.finish()?;
        self.runs.push(path);
        self.buffer.clear();
        self.buffer_bytes = 0;
        Ok(())
    }

    /// Merges everything into `writer` (strictly increasing, deduplicated)
    /// and removes the spill runs. The caller finishes the writer.
    pub fn finish_into(mut self, writer: &mut ValueFileWriter) -> Result<SortStats> {
        self.buffer.sort_unstable();
        self.buffer.dedup();

        let mut min = None;
        let mut max: Option<Vec<u8>> = None;
        let mut distinct = 0u64;
        let mut emit = |value: &[u8], writer: &mut ValueFileWriter| -> Result<()> {
            if min.is_none() {
                min = Some(value.to_vec());
            }
            match &mut max {
                Some(m) => {
                    m.clear();
                    m.extend_from_slice(value);
                }
                none => *none = Some(value.to_vec()),
            }
            distinct += 1;
            writer.append(value)
        };

        if self.runs.is_empty() {
            for v in &self.buffer {
                emit(v, writer)?;
            }
        } else {
            // K-way merge: spill runs + the final in-memory buffer.
            let mut readers: Vec<ValueFileReader> = Vec::with_capacity(self.runs.len());
            for path in &self.runs {
                readers.push(ValueFileReader::open_with_options(path, &self.options.io)?);
            }
            let mem_idx = readers.len();
            let mut mem_iter = self.buffer.iter();

            // Heap entries: Reverse((value, source)) -> min-heap by value.
            let mut heap: BinaryHeap<Reverse<(Vec<u8>, usize)>> = BinaryHeap::new();
            for (i, r) in readers.iter_mut().enumerate() {
                if r.advance()? {
                    heap.push(Reverse((r.current().to_vec(), i)));
                }
            }
            if let Some(v) = mem_iter.next() {
                heap.push(Reverse((v.clone(), mem_idx)));
            }

            let mut last: Option<Vec<u8>> = None;
            while let Some(Reverse((value, src))) = heap.pop() {
                if last.as_deref() != Some(value.as_slice()) {
                    emit(&value, writer)?;
                    last = Some(value.clone());
                }
                if src == mem_idx {
                    if let Some(v) = mem_iter.next() {
                        heap.push(Reverse((v.clone(), mem_idx)));
                    }
                } else if readers[src].advance()? {
                    heap.push(Reverse((readers[src].current().to_vec(), src)));
                }
            }
            drop(readers);
            for path in &self.runs {
                let _ = std::fs::remove_file(path);
            }
        }

        Ok(SortStats {
            pushed: self.pushed,
            distinct,
            runs: self.runs.len(),
            file_bytes: writer.bytes_written(),
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_cursor;
    use crate::format::ValueFileReader;
    use ind_testkit::TempDir;

    fn sort_values(values: &[&[u8]], budget: usize) -> (Vec<Vec<u8>>, SortStats) {
        let dir = TempDir::new("extsort");
        let mut sorter =
            ExternalSorter::new(&dir.join("spill"), SortOptions::with_memory_budget(budget))
                .unwrap();
        for v in values {
            sorter.push(v).unwrap();
        }
        let out_path = dir.join("out.indv");
        let mut writer = ValueFileWriter::create(&out_path).unwrap();
        let stats = sorter.finish_into(&mut writer).unwrap();
        writer.finish().unwrap();
        let out = collect_cursor(ValueFileReader::open(&out_path).unwrap()).unwrap();
        (out, stats)
    }

    fn expected(values: &[&[u8]]) -> Vec<Vec<u8>> {
        let mut v: Vec<Vec<u8>> = values.iter().map(|s| s.to_vec()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn in_memory_path() {
        let values: Vec<&[u8]> = vec![b"pear", b"apple", b"pear", b"fig"];
        let (out, stats) = sort_values(&values, 1 << 20);
        assert_eq!(out, expected(&values));
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.pushed, 4);
        assert_eq!(stats.distinct, 3);
        assert_eq!(stats.min.as_deref(), Some(b"apple".as_slice()));
        assert_eq!(stats.max.as_deref(), Some(b"pear".as_slice()));
    }

    #[test]
    fn spilling_path_matches_in_memory() {
        let raw: Vec<String> = (0..500).map(|i| format!("v{:03}", i % 137)).collect();
        let values: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();
        let (with_spill, stats) = sort_values(&values, 64); // force many spills
        assert!(stats.runs > 1, "expected spills, got {}", stats.runs);
        let (no_spill, _) = sort_values(&values, 1 << 20);
        assert_eq!(with_spill, no_spill);
        assert_eq!(with_spill, expected(&values));
    }

    #[test]
    fn spilling_with_tiny_io_blocks_matches() {
        // The I/O block size is pure tuning: spill runs written and merged
        // through 16-byte blocks must produce byte-identical output.
        let raw: Vec<String> = (0..300).map(|i| format!("val-{:03}", i % 97)).collect();
        let values: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();
        let dir = TempDir::new("extsort-tinyblock");
        let mut sorter = ExternalSorter::new(
            &dir.join("spill"),
            SortOptions {
                memory_budget_bytes: 64,
                io: crate::block::IoOptions::with_block_size(16),
            },
        )
        .unwrap();
        for v in &values {
            sorter.push(v).unwrap();
        }
        let out_path = dir.join("out.indv");
        let mut writer = ValueFileWriter::create(&out_path).unwrap();
        let stats = sorter.finish_into(&mut writer).unwrap();
        writer.finish().unwrap();
        assert!(stats.runs > 1, "budget of 64 bytes must spill");
        let out = collect_cursor(ValueFileReader::open(&out_path).unwrap()).unwrap();
        assert_eq!(out, expected(&values));
    }

    #[test]
    fn duplicates_across_runs_are_merged() {
        // Same value in every run must appear once.
        let raw: Vec<String> = (0..50).map(|i| format!("dup-or-{}", i % 2)).collect();
        let values: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();
        let (out, stats) = sort_values(&values, 16);
        assert!(stats.runs >= 2);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.distinct, 2);
    }

    #[test]
    fn empty_input() {
        let (out, stats) = sort_values(&[], 1024);
        assert!(out.is_empty());
        assert_eq!(stats.distinct, 0);
        assert_eq!(stats.min, None);
        assert_eq!(stats.max, None);
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let dir = TempDir::new("extsort-clean");
        let spill = dir.join("spill");
        let mut sorter = ExternalSorter::new(&spill, SortOptions::with_memory_budget(8)).unwrap();
        for i in 0..100 {
            sorter.push(format!("{i:04}").as_bytes()).unwrap();
        }
        let mut w = ValueFileWriter::create(&dir.join("out.indv")).unwrap();
        sorter.finish_into(&mut w).unwrap();
        w.finish().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&spill).unwrap().collect();
        assert!(leftovers.is_empty(), "spill runs must be removed");
    }
}
