//! External merge sort with duplicate elimination.
//!
//! This is the stand-in for the RDBMS's sort machinery: the paper lets the
//! database produce sorted, distinct value sets ("using the RDBMS only for
//! tasks it is good at", Sec. 3) and ships them to files. Our sorter accepts
//! unsorted values, keeps a bounded in-memory buffer, spills sorted runs to
//! disk when the buffer fills, and k-way merges the runs (plus the final
//! buffer) into a strictly increasing output stream.
//!
//! # Arena-backed, allocation-free in the steady state
//!
//! Pushed bytes land in one growable bump **arena** (`Vec<u8>`) addressed by
//! a flat `(offset, len)` index — not one heap `Vec<u8>` per value. Sorting
//! is `sort_unstable_by` over the index comparing arena slices in place;
//! duplicate elimination rewrites the index without touching the bytes. The
//! memory budget charges what the allocator actually handed out (arena
//! capacity plus index capacity), and both vectors grow through
//! budget-clamped `reserve_exact` steps so the footprint is honoured within
//! one growth granule; the rare unclamped growth (a single value larger
//! than the budget, or a rendering that outgrows its size hint) is
//! transient — capacity shrinks back inside the clamp at the next spill or
//! reset. [`ExternalSorter::push_with`] lets callers render canonical
//! bytes *directly into the arena* — no intermediate scratch vector, no
//! copy.
//!
//! The spill-phase k-way merge mirrors the zero-allocation SPIDER engine:
//! a hand-rolled index min-heap whose entries are run indices compared by
//! their cursors' zero-copy `current()` slices, with duplicate elimination
//! against the last *written* record through a single reusable buffer — no
//! per-record `to_vec`, no per-distinct `clone`.
//!
//! [`ExternalSorter::finish_into`] resets the sorter (keeping its arena),
//! so one sorter can serve a whole export: after the first attribute the
//! steady-state cost of sorting another column is zero heap allocations.

use crate::block::IoOptions;
use crate::cursor::ValueCursor;
use crate::error::{Result, ValueSetError};
use crate::format::{ValueFileReader, ValueFileWriter};
use std::path::{Path, PathBuf};

/// Tuning for the external sorter.
#[derive(Debug, Clone)]
pub struct SortOptions {
    /// Approximate in-memory buffer limit in bytes before a spill (arena
    /// bytes plus index bytes, charged by actual capacity); the buffer
    /// always admits at least one value.
    pub memory_budget_bytes: usize,
    /// Block size for spill-run writers and the merge-phase readers.
    pub io: IoOptions,
}

impl Default for SortOptions {
    fn default() -> Self {
        SortOptions {
            memory_budget_bytes: Self::DEFAULT_MEMORY_BUDGET,
            io: IoOptions::default(),
        }
    }
}

impl SortOptions {
    /// Default memory budget: large enough that test- and bench-scale
    /// attributes sort fully in memory; small enough to spill on the
    /// biggest PDB-like runs.
    pub const DEFAULT_MEMORY_BUDGET: usize = 64 << 20;

    /// Budget override with default I/O options.
    pub fn with_memory_budget(memory_budget_bytes: usize) -> Self {
        SortOptions {
            memory_budget_bytes,
            ..Default::default()
        }
    }
}

/// Summary of one sorted attribute extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortStats {
    /// Values pushed in (non-null occurrences, with duplicates).
    pub pushed: u64,
    /// Distinct values written out.
    pub distinct: u64,
    /// Spill runs created (0 = fully in-memory).
    pub runs: usize,
    /// Final byte size of the output value file (header + records) —
    /// recorded so readers can size their block buffers without `fstat`.
    pub file_bytes: u64,
    /// High-water mark of the budget-charged footprint (arena capacity +
    /// index capacity) over the sorter's lifetime — the number the memory
    /// budget bounds. Persists across [`ExternalSorter::finish_into`]
    /// reuse, so a shared sorter reports its lifetime peak.
    pub arena_bytes: u64,
    /// Arena/index capacity-growth events over the sorter's lifetime — the
    /// sorter's entire allocation traffic. A reused sorter stops growing
    /// once warm, so this stays constant while `pushed` keeps climbing.
    pub arena_grows: u64,
    /// Merge-heap comparisons resolved by the 8-byte big-endian key prefix
    /// alone (0 when the sort never spilled — the in-memory path uses
    /// `sort_unstable_by`, not the heap).
    pub key_compares: u64,
    /// Merge-heap comparisons that tied on the key prefix and fell through
    /// to a full `memcmp` of the value slices.
    pub memcmp_compares: u64,
    /// Smallest output value, if any.
    pub min: Option<Vec<u8>>,
    /// Largest output value, if any.
    pub max: Option<Vec<u8>>,
}

/// One value in the arena: `arena[offset..offset + len]`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    offset: u32,
    len: u32,
}

impl Entry {
    #[inline]
    fn slice<'a>(&self, arena: &'a [u8]) -> &'a [u8] {
        &arena[self.offset as usize..self.offset as usize + self.len as usize]
    }
}

/// Bytes one index entry charges against the memory budget.
const ENTRY_BYTES: usize = std::mem::size_of::<Entry>();
/// Smallest arena growth step, so tiny budgets don't degenerate into
/// byte-at-a-time reallocation.
const MIN_GROW: usize = 64;

/// External sorter; push values, then [`ExternalSorter::finish_into`] a
/// value-file writer. The sorter resets after `finish_into` and keeps its
/// arena, so it can be reused for the next attribute without reallocating.
pub struct ExternalSorter {
    arena: Vec<u8>,
    index: Vec<Entry>,
    options: SortOptions,
    spill_dir: PathBuf,
    spill_dir_created: bool,
    runs: Vec<PathBuf>,
    pushed: u64,
    peak_footprint: usize,
    grows: u64,
    /// Largest single value seen over the sorter's lifetime — the
    /// pre-reservation hint that keeps [`ExternalSorter::push_with`]
    /// renders inside the budget-clamped growth path.
    max_value_len: usize,
}

impl ExternalSorter {
    /// Creates a sorter spilling into `spill_dir` (created lazily on the
    /// first spill, so fully in-memory sorts never touch the directory).
    pub fn new(spill_dir: &Path, options: SortOptions) -> Result<Self> {
        Ok(ExternalSorter {
            // lint: allow(hot_alloc) — constructor: empty vecs allocate nothing; growth is budget-accounted
            arena: Vec::new(),
            // lint: allow(hot_alloc) — constructor: empty, growth is budget-accounted
            index: Vec::new(),
            options,
            spill_dir: spill_dir.to_path_buf(),
            spill_dir_created: false,
            // lint: allow(hot_alloc) — constructor: empty; one entry per spill, not per record
            runs: Vec::new(),
            pushed: 0,
            peak_footprint: 0,
            grows: 0,
            max_value_len: 0,
        })
    }

    /// The options this sorter was built with (the export manager shares
    /// them with the output writer).
    pub fn options(&self) -> &SortOptions {
        &self.options
    }

    /// Adds one value (unsorted, duplicates welcome).
    pub fn push(&mut self, value: &[u8]) -> Result<()> {
        if self.should_spill(value.len()) {
            self.spill()?;
        }
        self.reserve_arena(value.len());
        let offset = self.arena.len();
        self.arena.extend_from_slice(value);
        self.push_entry(offset)?;
        Ok(())
    }

    /// Adds one value by rendering it **directly into the arena**: `render`
    /// receives the arena and must only append. This is the zero-copy entry
    /// point for extraction — canonical renderings and tuple encodings land
    /// in their final resting place with no intermediate scratch vector.
    pub fn push_with(&mut self, render: impl FnOnce(&mut Vec<u8>)) -> Result<()> {
        // The rendered length is unknown up front: spill on the index
        // projection alone (the budget always admits one more value), then
        // pre-grow through the clamped path for a value the size of the
        // largest rendering seen so far, so the render itself almost never
        // grows the arena through `Vec`'s unclamped doubling. The hint is
        // capped to the budget room left — a lifetime-max giant may only
        // overshoot through its own render (counted below, clamped back at
        // the next spill or reset), never pin every later reservation past
        // the budget.
        if self.should_spill(0) {
            self.spill()?;
        }
        let room = self
            .options
            .memory_budget_bytes
            .saturating_sub(self.index.capacity() * ENTRY_BYTES)
            .saturating_sub(self.arena.len());
        self.reserve_arena(self.max_value_len.min(room));
        let capacity_before = self.arena.capacity();
        let offset = self.arena.len();
        render(&mut self.arena);
        debug_assert!(self.arena.len() >= offset, "render must only append");
        if self.arena.capacity() != capacity_before {
            self.grows += 1;
            self.note_footprint();
        }
        self.push_entry(offset)?;
        Ok(())
    }

    /// True when admitting `incoming` more bytes (plus one index entry)
    /// would push the *used* footprint past the budget. Capacity growth is
    /// separately clamped to the budget, so charged capacity tracks this
    /// projection within one growth granule.
    fn should_spill(&self, incoming: usize) -> bool {
        if self.index.is_empty() {
            return false; // always admit at least one value
        }
        let used = self.arena.len() + incoming + (self.index.len() + 1) * ENTRY_BYTES;
        used > self.options.memory_budget_bytes || self.arena.len() + incoming > u32::MAX as usize
    }

    /// Geometric growth target under the budget clamp: double (from at
    /// least `min_grow`), clamped to `share` — the budget room left for
    /// this vector — but never below `needed`, and never by less than an
    /// eighth of current capacity. The floor keeps growth geometric even
    /// when the clamp is exhausted (per-element exact reservations would
    /// turn quadratic in copied bytes); whatever it overshoots is at most
    /// one such granule and transient — capacity shrinks back inside the
    /// clamp at the next spill or reset.
    fn grow_target(capacity: usize, needed: usize, share: usize, min_grow: usize) -> usize {
        let floor = capacity + (capacity / 8).max(min_grow);
        (capacity.max(min_grow) * 2)
            .min(share)
            .max(needed)
            .max(floor)
    }

    /// Grows the arena for `extra` more bytes through [`Self::grow_target`].
    fn reserve_arena(&mut self, extra: usize) {
        let needed = self.arena.len() + extra;
        if needed <= self.arena.capacity() {
            return;
        }
        let share = self
            .options
            .memory_budget_bytes
            .saturating_sub(self.index.capacity() * ENTRY_BYTES);
        let target = Self::grow_target(self.arena.capacity(), needed, share, MIN_GROW);
        self.arena.reserve_exact(target - self.arena.len());
        self.grows += 1;
        self.note_footprint();
    }

    /// Records the value at `arena[offset..]` in the index, growing the
    /// index under the same budget clamp as the arena.
    fn push_entry(&mut self, offset: usize) -> Result<()> {
        let len = self.arena.len() - offset;
        self.max_value_len = self.max_value_len.max(len);
        let (offset, len) = (
            u32::try_from(offset).map_err(|_| self.too_large())?,
            u32::try_from(len).map_err(|_| self.too_large())?,
        );
        if self.index.len() == self.index.capacity() {
            let share = self
                .options
                .memory_budget_bytes
                .saturating_sub(self.arena.capacity())
                / ENTRY_BYTES;
            let target = Self::grow_target(
                self.index.capacity(),
                self.index.len() + 1,
                share,
                MIN_GROW / ENTRY_BYTES,
            );
            self.index.reserve_exact(target - self.index.len());
            self.grows += 1;
            self.note_footprint();
        }
        self.index.push(Entry { offset, len });
        self.pushed += 1;
        Ok(())
    }

    /// Clears the buffered values and clamps any over-budget capacity back
    /// down (unclamped growths — a giant value, a render that outgrew its
    /// reservation — are transient by construction: the overshoot lasts at
    /// most until the data that forced it is spilled or flushed).
    fn reset_buffers(&mut self) {
        self.arena.clear();
        self.index.clear();
        let budget = self.options.memory_budget_bytes;
        if self.arena.capacity() + self.index.capacity() * ENTRY_BYTES > budget {
            let index_bytes = self.index.capacity() * ENTRY_BYTES;
            self.arena.shrink_to(budget.saturating_sub(index_bytes));
        }
    }

    /// Discards everything buffered or spilled so far: clears the arena
    /// and index (keeping warm capacity), removes any spill-run files
    /// best-effort, and zeroes the pushed counter. The keep-going export
    /// path calls this after an attribute fails *mid-extraction* — before
    /// [`ExternalSorter::finish_into`] could run its own reset — so the
    /// next attribute starts from a clean sorter with no stale values and
    /// no leaked run files.
    pub fn reset(&mut self) {
        for path in self.runs.drain(..) {
            // lint: allow(swallowed_result) — quarantine cleanup: the attribute already failed, its runs are best-effort garbage
            let _ = std::fs::remove_file(&path);
        }
        self.reset_buffers();
        self.pushed = 0;
    }

    fn too_large(&self) -> ValueSetError {
        ValueSetError::Corrupt {
            // lint: allow(hot_alloc) — cold error-construction path, never on a successful sort
            context: self.spill_dir.display().to_string(),
            detail: "sorter arena would exceed u32::MAX bytes".into(),
        }
    }

    #[inline]
    fn note_footprint(&mut self) {
        let footprint = self.arena.capacity() + self.index.capacity() * ENTRY_BYTES;
        self.peak_footprint = self.peak_footprint.max(footprint);
    }

    /// Sorts the index by arena slice and removes duplicate values in
    /// place; the arena bytes are never moved.
    fn sort_dedup_index(&mut self) {
        let arena = &self.arena;
        self.index
            .sort_unstable_by(|a, b| a.slice(arena).cmp(b.slice(arena)));
        self.index.dedup_by(|a, b| a.slice(arena) == b.slice(arena));
    }

    fn spill(&mut self) -> Result<()> {
        self.sort_dedup_index();
        if !self.spill_dir_created {
            std::fs::create_dir_all(&self.spill_dir)?;
            self.spill_dir_created = true;
        }
        let path = self
            .spill_dir
            // lint: allow(hot_alloc) — once per spilled run, not per record
            .join(format!("run-{:04}.indv", self.runs.len()));
        let mut w = ValueFileWriter::create_with_options(&path, &self.options.io)?;
        for e in &self.index {
            w.append(e.slice(&self.arena))?;
        }
        w.finish()?;
        self.runs.push(path);
        self.reset_buffers();
        ind_trace::add_counter(ind_trace::Counter::SpillRuns, 1);
        Ok(())
    }

    /// Merges everything into `writer` (strictly increasing, deduplicated)
    /// and removes the spill runs — a cleanup failure surfaces as an error
    /// (best-effort only when the merge itself already failed). The caller
    /// finishes the writer. The sorter resets afterwards, keeping its arena
    /// capacity, so it can be reused for the next attribute.
    pub fn finish_into(&mut self, writer: &mut ValueFileWriter) -> Result<SortStats> {
        self.sort_dedup_index();

        let mut min = None;
        let mut max: Option<Vec<u8>> = None;
        let mut distinct = 0u64;
        let mut emit = |value: &[u8], writer: &mut ValueFileWriter| -> Result<()> {
            if min.is_none() {
                // lint: allow(hot_alloc) — bounds capture: once per merged attribute (first value)
                min = Some(value.to_vec());
            }
            match &mut max {
                Some(m) => {
                    m.clear();
                    m.extend_from_slice(value);
                }
                // lint: allow(hot_alloc) — bounds capture: first value only; later maxima reuse the buffer above
                none => *none = Some(value.to_vec()),
            }
            distinct += 1;
            writer.append(value)
        };

        let compares = CompareCounters::default();
        let merged = if self.runs.is_empty() {
            (|| {
                for e in &self.index {
                    emit(e.slice(&self.arena), writer)?;
                }
                Ok(())
            })()
        } else {
            let _span = ind_trace::start(ind_trace::SPILL_MERGE);
            merge_runs(
                &self.runs,
                &self.index,
                &self.arena,
                &self.options.io,
                &compares,
                |v| emit(v, writer),
            )
        };
        // Remove the spill runs whatever the merge outcome; a merge error
        // wins, but a cleanup failure on a clean merge is surfaced too —
        // leaking spill files silently would defeat the disk budget. The
        // sorter resets on every exit path, so a caller that catches the
        // error still gets a clean sorter for the next attribute.
        let runs = self.runs.len();
        let mut cleanup: Option<std::io::Error> = None;
        for path in self.runs.drain(..) {
            if let Err(e) = std::fs::remove_file(&path) {
                cleanup.get_or_insert(crate::fault::annotate(&path, e));
            }
        }
        let stats = SortStats {
            pushed: self.pushed,
            distinct,
            runs,
            file_bytes: writer.bytes_written(),
            arena_bytes: self.peak_footprint as u64,
            arena_grows: self.grows,
            key_compares: compares.key.get(),
            memcmp_compares: compares.memcmp.get(),
            min,
            max,
        };
        self.reset_buffers();
        self.pushed = 0;
        merged?;
        if let Some(e) = cleanup {
            return Err(e.into());
        }
        Ok(stats)
    }
}

/// K-way merge of the spill runs plus the sorted in-memory index, feeding
/// each distinct value to `emit` in strictly increasing order.
///
/// The heap is the same [`crate::LazyMinHeap`] the SPIDER merge engine
/// runs on: entries are *source indices* (`0..runs.len()` the run readers,
/// `runs.len()` the in-memory index) compared lazily by their current
/// zero-copy slices, so the heap stores nothing but `u32`s and never
/// copies a value. Duplicate elimination compares against the last written
/// record through one reusable buffer.
fn merge_runs(
    runs: &[PathBuf],
    index: &[Entry],
    arena: &[u8],
    io: &IoOptions,
    compares: &CompareCounters,
    mut emit: impl FnMut(&[u8]) -> Result<()>,
) -> Result<()> {
    let mut sources = MergeSources {
        readers: Vec::with_capacity(runs.len()),
        index,
        arena,
        index_pos: 0,
    };
    for path in runs {
        sources
            .readers
            .push(ValueFileReader::open_with_options(path, io)?);
    }
    let mem_src = runs.len() as u32;

    let mut heap = crate::heap::LazyMinHeap::with_capacity(runs.len() + 1);
    for src in 0..mem_src {
        if sources.readers[src as usize].advance()? {
            heap.push(src, |a, b| source_less(&sources, compares, a, b));
        }
    }
    if !index.is_empty() {
        heap.push(mem_src, |a, b| source_less(&sources, compares, a, b));
    }

    // lint: allow(hot_alloc) — reusable dedup buffer: grows to the longest value once, then reused
    let mut last: Vec<u8> = Vec::new();
    let mut wrote_any = false;
    while let Some(top) = heap.peek() {
        {
            let value = sources.current(top);
            if !wrote_any || last.as_slice() != value {
                emit(value)?;
                last.clear();
                last.extend_from_slice(value);
                wrote_any = true;
            }
        }
        if sources.advance(top)? {
            heap.sift_root(|a, b| source_less(&sources, compares, a, b));
        } else {
            heap.pop(|a, b| source_less(&sources, compares, a, b));
        }
    }
    Ok(())
}

/// Comparator-split tallies for a [`crate::LazyMinHeap`] merge: `key`
/// counts comparisons the 8-byte prefix resolved alone, `memcmp` those
/// that tied on the prefix and needed the full slices. `Cell`s, because
/// the heap comparator is an immutably captured closure.
#[derive(Debug, Default)]
pub(crate) struct CompareCounters {
    pub(crate) key: std::cell::Cell<u64>,
    pub(crate) memcmp: std::cell::Cell<u64>,
}

/// Merge ordering: current zero-copy slices, ties broken by source index —
/// total and deterministic. An integer comparison of the 8-byte key
/// prefixes ([`crate::key_prefix64`]) settles most pairs without touching
/// the slice tails.
fn source_less(sources: &MergeSources<'_>, compares: &CompareCounters, a: u32, b: u32) -> bool {
    let (va, vb) = (sources.current(a), sources.current(b));
    let (pa, pb) = (crate::key_prefix64(va), crate::key_prefix64(vb));
    if pa != pb {
        compares.key.set(compares.key.get() + 1);
        return pa < pb;
    }
    compares.memcmp.set(compares.memcmp.get() + 1);
    match va.cmp(vb) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a < b,
    }
}

/// The merge's value sources: spill-run readers by index, then the sorted
/// in-memory index as one extra source.
struct MergeSources<'a> {
    readers: Vec<ValueFileReader>,
    index: &'a [Entry],
    arena: &'a [u8],
    index_pos: usize,
}

impl MergeSources<'_> {
    /// Current value of source `src` — a zero-copy slice into the reader's
    /// block or into the arena.
    #[inline]
    fn current(&self, src: u32) -> &[u8] {
        match self.readers.get(src as usize) {
            Some(reader) => reader.current(),
            None => self.index[self.index_pos].slice(self.arena),
        }
    }

    /// Advances source `src`; false when it is exhausted.
    fn advance(&mut self, src: u32) -> Result<bool> {
        match self.readers.get_mut(src as usize) {
            Some(reader) => reader.advance(),
            None => {
                self.index_pos += 1;
                Ok(self.index_pos < self.index.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_cursor;
    use crate::format::ValueFileReader;
    use ind_testkit::TempDir;

    fn sort_values(values: &[&[u8]], budget: usize) -> (Vec<Vec<u8>>, SortStats) {
        let dir = TempDir::new("extsort");
        let mut sorter =
            ExternalSorter::new(&dir.join("spill"), SortOptions::with_memory_budget(budget))
                .unwrap();
        for v in values {
            sorter.push(v).unwrap();
        }
        let out_path = dir.join("out.indv");
        let mut writer = ValueFileWriter::create(&out_path).unwrap();
        let stats = sorter.finish_into(&mut writer).unwrap();
        writer.finish().unwrap();
        let out = collect_cursor(ValueFileReader::open(&out_path).unwrap()).unwrap();
        (out, stats)
    }

    fn expected(values: &[&[u8]]) -> Vec<Vec<u8>> {
        let mut v: Vec<Vec<u8>> = values.iter().map(|s| s.to_vec()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn in_memory_path() {
        let values: Vec<&[u8]> = vec![b"pear", b"apple", b"pear", b"fig"];
        let (out, stats) = sort_values(&values, 1 << 20);
        assert_eq!(out, expected(&values));
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.pushed, 4);
        assert_eq!(stats.distinct, 3);
        assert_eq!(stats.min.as_deref(), Some(b"apple".as_slice()));
        assert_eq!(stats.max.as_deref(), Some(b"pear".as_slice()));
    }

    #[test]
    fn spilling_path_matches_in_memory() {
        let raw: Vec<String> = (0..500).map(|i| format!("v{:03}", i % 137)).collect();
        let values: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();
        let (with_spill, stats) = sort_values(&values, 64); // force many spills
        assert!(stats.runs > 1, "expected spills, got {}", stats.runs);
        let (no_spill, _) = sort_values(&values, 1 << 20);
        assert_eq!(with_spill, no_spill);
        assert_eq!(with_spill, expected(&values));
    }

    #[test]
    fn spilling_with_tiny_io_blocks_matches() {
        // The I/O block size is pure tuning: spill runs written and merged
        // through 16-byte blocks must produce byte-identical output.
        let raw: Vec<String> = (0..300).map(|i| format!("val-{:03}", i % 97)).collect();
        let values: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();
        let dir = TempDir::new("extsort-tinyblock");
        let mut sorter = ExternalSorter::new(
            &dir.join("spill"),
            SortOptions {
                memory_budget_bytes: 64,
                io: crate::block::IoOptions::with_block_size(16),
            },
        )
        .unwrap();
        for v in &values {
            sorter.push(v).unwrap();
        }
        let out_path = dir.join("out.indv");
        let mut writer = ValueFileWriter::create(&out_path).unwrap();
        let stats = sorter.finish_into(&mut writer).unwrap();
        writer.finish().unwrap();
        assert!(stats.runs > 1, "budget of 64 bytes must spill");
        let out = collect_cursor(ValueFileReader::open(&out_path).unwrap()).unwrap();
        assert_eq!(out, expected(&values));
    }

    #[test]
    fn duplicates_across_runs_are_merged() {
        // Same value in every run must appear once.
        let raw: Vec<String> = (0..50).map(|i| format!("dup-or-{}", i % 2)).collect();
        let values: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();
        let (out, stats) = sort_values(&values, 16);
        assert!(stats.runs >= 2);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.distinct, 2);
    }

    #[test]
    fn empty_input() {
        let (out, stats) = sort_values(&[], 1024);
        assert!(out.is_empty());
        assert_eq!(stats.distinct, 0);
        assert_eq!(stats.min, None);
        assert_eq!(stats.max, None);
    }

    #[test]
    fn spill_files_are_cleaned_up() {
        let dir = TempDir::new("extsort-clean");
        let spill = dir.join("spill");
        let mut sorter = ExternalSorter::new(&spill, SortOptions::with_memory_budget(8)).unwrap();
        for i in 0..100 {
            sorter.push(format!("{i:04}").as_bytes()).unwrap();
        }
        let mut w = ValueFileWriter::create(&dir.join("out.indv")).unwrap();
        sorter.finish_into(&mut w).unwrap();
        w.finish().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&spill).unwrap().collect();
        assert!(leftovers.is_empty(), "spill runs must be removed");
    }

    #[test]
    fn in_memory_sort_never_touches_the_spill_dir() {
        // The spill directory is created lazily; an in-memory sort must
        // not leave an empty directory behind.
        let dir = TempDir::new("extsort-lazydir");
        let spill = dir.join("spill");
        let mut sorter = ExternalSorter::new(&spill, SortOptions::default()).unwrap();
        sorter.push(b"a").unwrap();
        let mut w = ValueFileWriter::create(&dir.join("out.indv")).unwrap();
        sorter.finish_into(&mut w).unwrap();
        w.finish().unwrap();
        assert!(!spill.exists(), "no spill, no spill dir");
    }

    #[test]
    fn push_with_renders_directly_into_the_arena() {
        let dir = TempDir::new("extsort-pushwith");
        let mut sorter = ExternalSorter::new(&dir.join("spill"), SortOptions::default()).unwrap();
        for i in [3u32, 1, 2, 1] {
            sorter
                .push_with(|buf| buf.extend_from_slice(format!("v{i}").as_bytes()))
                .unwrap();
        }
        let out_path = dir.join("out.indv");
        let mut w = ValueFileWriter::create(&out_path).unwrap();
        let stats = sorter.finish_into(&mut w).unwrap();
        w.finish().unwrap();
        assert_eq!(stats.pushed, 4);
        assert_eq!(stats.distinct, 3);
        let out = collect_cursor(ValueFileReader::open(&out_path).unwrap()).unwrap();
        assert_eq!(out, expected(&[b"v1", b"v2", b"v3"]));
    }

    #[test]
    fn budget_is_charged_by_capacity_within_one_granule() {
        // Regression for the old accounting (`len + size_of::<Vec<u8>>` per
        // value): at a 1 KiB budget the charged footprint — actual arena +
        // index *capacity* — must stay within the budget plus one growth
        // granule, across many values and spills.
        let budget = 1024;
        let raw: Vec<String> = (0..400).map(|i| format!("value-{i:04}")).collect();
        let values: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();
        let (out, stats) = sort_values(&values, budget);
        assert_eq!(out, expected(&values));
        assert!(stats.runs > 1, "1 KiB budget over ~4.4 KB must spill");
        // One growth granule past the clamp: an eighth of capacity (or the
        // MIN_GROW floor) — the geometric floor that keeps near-clamp
        // growth from degenerating into quadratic exact reservations.
        let granule = (budget / 8 + MIN_GROW) as u64;
        assert!(
            stats.arena_bytes <= budget as u64 + granule,
            "footprint {} exceeds budget {budget} by more than one granule",
            stats.arena_bytes
        );
        assert!(stats.arena_grows > 0, "growth events are counted");
    }

    #[test]
    fn oversized_single_value_is_still_admitted() {
        // One value larger than the whole budget: the buffer always admits
        // at least one value, so the sort must succeed (footprint exceeds
        // the budget for exactly that value).
        let big = vec![b'x'; 4096];
        let values: Vec<&[u8]> = vec![b"a", &big, b"b"];
        let (out, stats) = sort_values(&values, 64);
        assert_eq!(out, expected(&values));
        assert_eq!(stats.distinct, 3);
    }

    #[test]
    fn spill_boundary_at_every_record_cut() {
        // Fixed-size values make the spill point a pure function of the
        // budget: sweeping the budget one value-cost at a time moves the
        // run boundary across every record position, and each cut must
        // produce byte-identical output.
        let raw: Vec<String> = (0..24).map(|i| format!("{:04}", (i * 7) % 24)).collect();
        let values: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();
        let reference = expected(&values);
        let value_cost = 4 + ENTRY_BYTES; // fixed 4-byte bodies
        for cut in 1..=values.len() {
            let (out, stats) = sort_values(&values, cut * value_cost);
            assert_eq!(out, reference, "cut after {cut} records");
            if cut < values.len() {
                assert!(stats.runs > 0, "budget for {cut} records must spill");
            }
        }
    }

    #[test]
    fn merge_error_wins_over_cleanup_and_runs_are_still_removed() {
        // Corrupt one spill run behind the sorter's back: the merge error
        // must surface (not a cleanup error), and the surviving run files
        // must still be removed best-effort.
        let dir = TempDir::new("extsort-merge-err");
        let spill = dir.join("spill");
        let mut sorter = ExternalSorter::new(&spill, SortOptions::with_memory_budget(16)).unwrap();
        for i in 0..64 {
            sorter.push(format!("{i:04}").as_bytes()).unwrap();
        }
        assert!(sorter.runs.len() > 1, "need at least two runs");
        // Truncate the first run mid-record.
        let victim = sorter.runs[0].clone();
        let data = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &data[..data.len() - 2]).unwrap();
        let mut w = ValueFileWriter::create(&dir.join("out.indv")).unwrap();
        let err = sorter.finish_into(&mut w).unwrap_err();
        assert!(
            matches!(err, ValueSetError::Corrupt { .. }),
            "merge error must win: {err:?}"
        );
        let leftovers: Vec<_> = std::fs::read_dir(&spill).unwrap().collect();
        assert!(
            leftovers.is_empty(),
            "cleanup stays best-effort after a merge error"
        );

        // The sorter resets on the error path too: reusing it afterwards
        // must yield exactly the new values, not remnants of the failed
        // attribute.
        for v in [b"zz".as_slice(), b"aa", b"zz"] {
            sorter.push(v).unwrap();
        }
        let retry_path = dir.join("retry.indv");
        let mut w = ValueFileWriter::create(&retry_path).unwrap();
        let stats = sorter.finish_into(&mut w).unwrap();
        w.finish().unwrap();
        assert_eq!(stats.pushed, 3, "pushed resets after a failed finish");
        let out = collect_cursor(ValueFileReader::open(&retry_path).unwrap()).unwrap();
        assert_eq!(out, expected(&[b"aa", b"zz"]));
    }

    #[test]
    fn reset_discards_buffered_values_and_spill_runs() {
        // A mid-extraction failure leaves the sorter holding values and
        // run files; reset must clear both so a quarantining caller can
        // move on to the next attribute.
        let dir = TempDir::new("extsort-reset");
        let spill = dir.join("spill");
        let mut sorter = ExternalSorter::new(&spill, SortOptions::with_memory_budget(16)).unwrap();
        for i in 0..64 {
            sorter.push(format!("{i:04}").as_bytes()).unwrap();
        }
        assert!(!sorter.runs.is_empty(), "need spilled runs to clean");
        sorter.reset();
        let leftovers: Vec<_> = std::fs::read_dir(&spill).unwrap().collect();
        assert!(leftovers.is_empty(), "reset removes spill runs");
        for v in [b"bb".as_slice(), b"aa"] {
            sorter.push(v).unwrap();
        }
        let out_path = dir.join("out.indv");
        let mut w = ValueFileWriter::create(&out_path).unwrap();
        let stats = sorter.finish_into(&mut w).unwrap();
        w.finish().unwrap();
        assert_eq!(stats.pushed, 2, "pushed restarts from zero after reset");
        let out = collect_cursor(ValueFileReader::open(&out_path).unwrap()).unwrap();
        assert_eq!(out, expected(&[b"aa", b"bb"]));
    }

    #[test]
    fn spill_enospc_surfaces_with_the_run_path() {
        // An injected ENOSPC on a spill write must fail the push that
        // triggered the spill, naming the run file.
        let dir = TempDir::new("extsort-enospc");
        let plan =
            std::sync::Arc::new(crate::fault::FaultPlan::parse("write:run-:enospc").unwrap());
        let mut sorter = ExternalSorter::new(
            &dir.join("spill"),
            SortOptions {
                memory_budget_bytes: 16,
                io: IoOptions::default().with_fault(plan),
            },
        )
        .unwrap();
        let mut failed = None;
        for i in 0..64 {
            if let Err(e) = sorter.push(format!("{i:04}").as_bytes()) {
                failed = Some(e);
                break;
            }
        }
        let err = failed.expect("a spill must hit the injected ENOSPC");
        assert!(matches!(err, ValueSetError::Io(_)));
        assert!(
            err.to_string().contains("run-"),
            "the error names the spill run: {err}"
        );
        // The quarantine path: reset and reuse.
        sorter.reset();
        sorter.push(b"ok").unwrap();
        let mut w = ValueFileWriter::create(&dir.join("out.indv")).unwrap();
        assert_eq!(sorter.finish_into(&mut w).unwrap().distinct, 1);
        w.finish().unwrap();
    }

    #[test]
    fn comparator_split_counts_merge_heap_work() {
        // In-memory sorts never run the merge heap: both tallies stay zero.
        let values: Vec<&[u8]> = vec![b"b", b"a", b"c"];
        let (_, stats) = sort_values(&values, 1 << 20);
        assert_eq!(stats.key_compares, 0);
        assert_eq!(stats.memcmp_compares, 0);

        // Short distinct values resolve on the 8-byte prefix alone.
        let raw: Vec<String> = (0..100).map(|i| format!("{i:04}")).collect();
        let short: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();
        let (out, stats) = sort_values(&short, 64);
        assert!(stats.runs > 1);
        assert_eq!(out, expected(&short));
        assert!(stats.key_compares > 0, "prefix path must fire");
        assert_eq!(
            stats.memcmp_compares, 0,
            "4-byte values never tie past the prefix"
        );

        // Values sharing an 8-byte prefix must fall through to memcmp —
        // and the fast path must not disturb the output.
        let raw: Vec<String> = (0..100).map(|i| format!("sameprefix-{i:04}")).collect();
        let long: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();
        let (out, stats) = sort_values(&long, 256);
        assert!(stats.runs > 1);
        assert_eq!(out, expected(&long));
        assert!(
            stats.memcmp_compares > 0,
            "shared prefixes must fall through"
        );
    }

    #[test]
    fn prefix64_orders_like_lexicographic_compare() {
        // The fast-path invariant: differing prefixes order exactly like
        // the slices; ties (including a proper prefix ending inside the
        // window) keep the prefixes equal.
        let cases: [&[u8]; 8] = [
            b"",
            b"\x00",
            b"\x01",
            b"\x01\x00",
            b"\x01\x01",
            b"abcdefgh",
            b"abcdefghi",
            b"abcdefgz",
        ];
        for a in cases {
            for b in cases {
                let (pa, pb) = (crate::key_prefix64(a), crate::key_prefix64(b));
                if pa != pb {
                    assert_eq!(pa.cmp(&pb), a.cmp(b), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn reused_sorter_stops_allocating_once_warm() {
        // One sorter across many attributes: after the first column the
        // arena and index are warm, so later columns add zero growth
        // events — the steady-state allocation-free property the export
        // manager relies on.
        let dir = TempDir::new("extsort-reuse");
        let mut sorter = ExternalSorter::new(&dir.join("spill"), SortOptions::default()).unwrap();
        let raw: Vec<String> = (0..200).map(|i| format!("warm-{i:05}")).collect();
        let values: Vec<&[u8]> = raw.iter().map(|s| s.as_bytes()).collect();

        let run = |sorter: &mut ExternalSorter, name: &str| -> SortStats {
            for v in &values {
                sorter.push(v).unwrap();
            }
            let mut w = ValueFileWriter::create(&dir.join(name)).unwrap();
            let stats = sorter.finish_into(&mut w).unwrap();
            w.finish().unwrap();
            stats
        };
        let first = run(&mut sorter, "a.indv");
        let second = run(&mut sorter, "b.indv");
        let third = run(&mut sorter, "c.indv");
        assert_eq!(first.distinct, second.distinct);
        assert!(first.arena_grows > 0);
        assert_eq!(
            second.arena_grows, first.arena_grows,
            "second column must not grow the arena"
        );
        assert_eq!(third.arena_grows, first.arena_grows);
        assert_eq!(second.pushed, values.len() as u64, "pushed resets per use");
        let a = collect_cursor(ValueFileReader::open(&dir.join("a.indv")).unwrap()).unwrap();
        let b = collect_cursor(ValueFileReader::open(&dir.join("b.indv")).unwrap()).unwrap();
        assert_eq!(a, b);
    }
}
