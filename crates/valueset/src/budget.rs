//! Open-file budget accounting.
//!
//! The single-pass algorithm "opens all referenced and dependent files in
//! parallel … the number of open files … is the reason why we could not
//! compute the satisfied INDs of the PDB fraction covering 2.7 GB"
//! (Sec. 4.2). This module makes that operating-system limit an explicit,
//! testable resource so the workspace can reproduce the failure and the
//! block-wise fix.

use crate::error::{Result, ValueSetError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A counting semaphore over "simultaneously open value files".
///
/// Cloning shares the underlying counter, so one budget can govern readers
/// opened from many call sites (including worker threads).
#[derive(Debug, Clone)]
pub struct FileBudget {
    max: usize,
    open: Arc<AtomicUsize>,
}

impl FileBudget {
    /// A budget admitting at most `max` concurrently open files.
    pub fn new(max: usize) -> Self {
        FileBudget {
            max,
            open: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        FileBudget::new(usize::MAX)
    }

    /// The configured maximum.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Number of files currently open under this budget.
    pub fn in_use(&self) -> usize {
        self.open.load(Ordering::Relaxed)
    }

    /// Acquires one slot, or fails with
    /// [`ValueSetError::FileBudgetExceeded`].
    pub fn acquire(&self) -> Result<OpenFileGuard> {
        let mut cur = self.open.load(Ordering::Relaxed);
        loop {
            if cur >= self.max {
                return Err(ValueSetError::FileBudgetExceeded { budget: self.max });
            }
            match self
                .open
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    return Ok(OpenFileGuard {
                        open: Arc::clone(&self.open),
                    })
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

/// RAII guard releasing one budget slot on drop.
#[derive(Debug)]
pub struct OpenFileGuard {
    open: Arc<AtomicUsize>,
}

impl Drop for OpenFileGuard {
    fn drop(&mut self) {
        self.open.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_enforces_limit_and_releases() {
        let b = FileBudget::new(2);
        let g1 = b.acquire().unwrap();
        let _g2 = b.acquire().unwrap();
        assert_eq!(b.in_use(), 2);
        assert!(matches!(
            b.acquire(),
            Err(ValueSetError::FileBudgetExceeded { budget: 2 })
        ));
        drop(g1);
        assert_eq!(b.in_use(), 1);
        let _g3 = b.acquire().unwrap();
    }

    #[test]
    fn clones_share_the_counter() {
        let a = FileBudget::new(1);
        let b = a.clone();
        let _g = a.acquire().unwrap();
        assert!(b.acquire().is_err());
    }

    #[test]
    fn unlimited_never_fails() {
        let b = FileBudget::unlimited();
        let _guards: Vec<_> = (0..10_000).map(|_| b.acquire().unwrap()).collect();
        assert_eq!(b.in_use(), 10_000);
    }

    #[test]
    fn concurrent_acquires_respect_limit() {
        let b = FileBudget::new(8);
        let successes = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    if let Ok(_g) = b.acquire() {
                        successes.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                });
            }
        });
        let ok = successes.load(Ordering::SeqCst);
        assert!(ok <= 16);
        assert!(ok >= 8, "at least the first wave should succeed, got {ok}");
        assert_eq!(b.in_use(), 0);
    }
}
