//! Extraction of sorted distinct value sets from stored columns.
//!
//! This is step one of both external algorithms: "We first extract from the
//! database the sorted sets of distinct values of each attribute using SQL"
//! (Sec. 3). Here the "SQL" is a scan over the columnar table plus the
//! canonical rendering from `ind-storage`; sorting and duplicate
//! elimination happen either in memory or via the external sorter.

use crate::error::Result;
use crate::external_sort::{ExternalSorter, SortOptions, SortStats};
use crate::format::ValueFileWriter;
use crate::memory::MemoryValueSet;
use crate::tuple::encode_tuple_into;
use ind_storage::Value;
use std::path::Path;

/// Extracts the sorted distinct canonical values of a column into memory.
pub fn extract_sorted_distinct(values: &[Value]) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = values
        .iter()
        .filter(|v| !v.is_null())
        .map(Value::canonical_bytes)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Extracts a column into a [`MemoryValueSet`].
pub fn extract_memory_set(values: &[Value]) -> MemoryValueSet {
    // `from_unsorted` re-sorts; feed it the raw rendering stream directly.
    MemoryValueSet::from_unsorted(
        values
            .iter()
            .filter(|v| !v.is_null())
            .map(Value::canonical_bytes),
    )
}

/// Extracts many columns into [`MemoryValueSet`]s on `threads` worker
/// threads (column extractions are mutually independent: render, sort,
/// dedup). Output order matches input order. `threads <= 1` degrades to the
/// sequential path.
pub fn extract_memory_sets_parallel(columns: &[&[Value]], threads: usize) -> Vec<MemoryValueSet> {
    let threads = threads.max(1);
    if threads == 1 || columns.len() < 2 {
        return columns.iter().map(|c| extract_memory_set(c)).collect();
    }
    let chunk = columns.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = columns
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move |_| {
                    shard
                        .iter()
                        .map(|c| extract_memory_set(c))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("extraction worker panicked"))
            .collect()
    })
    .expect("extraction scope panicked")
}

/// Renders row `row` of `columns` as an encoded composite tuple into `buf`,
/// or returns `false` when any component is NULL (tuples with NULL
/// components carry no inclusion evidence, mirroring how unary extraction
/// drops NULL occurrences).
fn render_composite_row(
    columns: &[&[Value]],
    row: usize,
    rendered: &mut Vec<u8>,
    buf: &mut Vec<u8>,
) -> bool {
    if columns.iter().any(|c| c[row].is_null()) {
        return false;
    }
    buf.clear();
    rendered.clear();
    // Render all components into one scratch buffer, then encode the
    // recorded sub-slices — no per-row vectors.
    let mut offsets = [0usize; MAX_COMPOSITE_ARITY];
    for (i, c) in columns.iter().enumerate() {
        c[row].render_canonical(rendered);
        offsets[i] = rendered.len();
    }
    let mut components: [&[u8]; MAX_COMPOSITE_ARITY] = [&[]; MAX_COMPOSITE_ARITY];
    let mut start = 0usize;
    for i in 0..columns.len() {
        components[i] = &rendered[start..offsets[i]];
        start = offsets[i];
    }
    encode_tuple_into(&components[..columns.len()], buf);
    true
}

/// Hard cap on composite arity, comfortably above anything the levelwise
/// search reaches in practice (the candidate space dies out long before).
pub const MAX_COMPOSITE_ARITY: usize = 16;

/// Extracts the composite value set of a column group into memory: one
/// entry per row whose components are all non-NULL, encoded with the
/// order-preserving tuple encoding ([`crate::encode_tuple`]) so the sorted
/// distinct stream compares exactly like the tuple sequence. All columns
/// must come from the same table (equal lengths).
pub fn extract_composite_memory_set(columns: &[&[Value]]) -> MemoryValueSet {
    assert!(!columns.is_empty() && columns.len() <= MAX_COMPOSITE_ARITY);
    let rows = columns[0].len();
    debug_assert!(
        columns.iter().all(|c| c.len() == rows),
        "ragged column group"
    );
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(rows);
    let mut rendered = Vec::new();
    let mut buf = Vec::new();
    for row in 0..rows {
        if render_composite_row(columns, row, &mut rendered, &mut buf) {
            out.push(buf.clone());
        }
    }
    MemoryValueSet::from_unsorted(out)
}

/// Extracts a column group into a composite value file at `path` via the
/// external sorter — the on-disk counterpart of
/// [`extract_composite_memory_set`], producing a stream byte-identical to
/// it.
pub fn extract_composite_to_file(
    columns: &[&[Value]],
    path: &Path,
    spill_dir: &Path,
    options: SortOptions,
) -> Result<SortStats> {
    assert!(!columns.is_empty() && columns.len() <= MAX_COMPOSITE_ARITY);
    let rows = columns[0].len();
    debug_assert!(
        columns.iter().all(|c| c.len() == rows),
        "ragged column group"
    );
    let io = options.io.clone();
    let mut sorter = ExternalSorter::new(spill_dir, options)?;
    let mut rendered = Vec::new();
    let mut buf = Vec::new();
    for row in 0..rows {
        if render_composite_row(columns, row, &mut rendered, &mut buf) {
            sorter.push(&buf)?;
        }
    }
    let mut writer = ValueFileWriter::create_with_options(path, &io)?;
    let stats = sorter.finish_into(&mut writer)?;
    writer.finish()?;
    Ok(stats)
}

/// Extracts a column into a value file at `path` via the external sorter,
/// spilling into `spill_dir` when the memory budget is exceeded.
pub fn extract_to_file(
    values: &[Value],
    path: &Path,
    spill_dir: &Path,
    options: SortOptions,
) -> Result<SortStats> {
    let io = options.io.clone();
    let mut sorter = ExternalSorter::new(spill_dir, options)?;
    let mut buf = Vec::new();
    for v in values {
        if v.is_null() {
            continue;
        }
        buf.clear();
        v.render_canonical(&mut buf);
        sorter.push(&buf)?;
    }
    let mut writer = ValueFileWriter::create_with_options(path, &io)?;
    let stats = sorter.finish_into(&mut writer)?;
    writer.finish()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{collect_cursor, ValueCursor};
    use crate::format::ValueFileReader;
    use ind_storage::Value;
    use ind_testkit::TempDir;

    fn column() -> Vec<Value> {
        vec![
            Value::Integer(10),
            Value::Null,
            Value::Text("apple".into()),
            Value::Integer(9),
            Value::Integer(10),
            Value::Null,
        ]
    }

    #[test]
    fn nulls_and_duplicates_are_dropped() {
        let s = extract_sorted_distinct(&column());
        // Lexicographic: "10" < "9" < "apple".
        assert_eq!(s, vec![b"10".to_vec(), b"9".to_vec(), b"apple".to_vec()]);
    }

    #[test]
    fn memory_and_file_extraction_agree() {
        let dir = TempDir::new("extract-agree");
        let col = column();
        let mem = extract_memory_set(&col);
        let stats = extract_to_file(
            &col,
            &dir.join("col.indv"),
            &dir.join("spill"),
            SortOptions::default(),
        )
        .unwrap();
        let file_values =
            collect_cursor(ValueFileReader::open(&dir.join("col.indv")).unwrap()).unwrap();
        assert_eq!(file_values, mem.as_slice());
        assert_eq!(stats.distinct, mem.len());
        assert_eq!(stats.pushed, 4, "non-null occurrences");
        assert_eq!(stats.min.as_deref(), Some(b"10".as_slice()));
        assert_eq!(stats.max.as_deref(), Some(b"apple".as_slice()));
    }

    #[test]
    fn parallel_memory_extraction_matches_sequential() {
        let columns: Vec<Vec<Value>> = (0..9)
            .map(|i| {
                (0..40)
                    .map(|j| match (i + j) % 5 {
                        0 => Value::Null,
                        n => Value::Integer(i64::from(n * j % 11)),
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[Value]> = columns.iter().map(Vec::as_slice).collect();
        let sequential: Vec<_> = refs.iter().map(|c| extract_memory_set(c)).collect();
        for threads in [0usize, 1, 2, 4, 16] {
            let parallel = extract_memory_sets_parallel(&refs, threads);
            assert_eq!(parallel.len(), sequential.len(), "threads={threads}");
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.as_slice(), s.as_slice(), "threads={threads}");
            }
        }
    }

    #[test]
    fn composite_extraction_skips_null_rows_and_dedups() {
        use crate::tuple::decode_tuple;
        let a = vec![
            Value::Integer(1),
            Value::Integer(1),
            Value::Integer(2),
            Value::Null,
            Value::Integer(3),
        ];
        let b = vec![
            Value::Text("x".into()),
            Value::Text("x".into()), // duplicate pair (1, x)
            Value::Text("x".into()),
            Value::Text("y".into()), // dropped: NULL in `a`
            Value::Null,             // dropped: NULL in `b`
        ];
        let set = extract_composite_memory_set(&[&a, &b]);
        let decoded: Vec<Vec<Vec<u8>>> = set
            .as_slice()
            .iter()
            .map(|t| decode_tuple(t).unwrap())
            .collect();
        assert_eq!(
            decoded,
            vec![
                vec![b"1".to_vec(), b"x".to_vec()],
                vec![b"2".to_vec(), b"x".to_vec()],
            ]
        );
    }

    #[test]
    fn composite_memory_and_file_extraction_agree() {
        let dir = TempDir::new("extract-composite-agree");
        let a: Vec<Value> = (0..40i64).map(|i| Value::Integer(i % 7)).collect();
        let b: Vec<Value> = (0..40i64)
            .map(|i| {
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Text(format!("t{}", i % 5))
                }
            })
            .collect();
        let mem = extract_composite_memory_set(&[&a, &b]);
        let stats = extract_composite_to_file(
            &[&a, &b],
            &dir.join("pair.indv"),
            &dir.join("spill"),
            SortOptions::default(),
        )
        .unwrap();
        let file_values =
            collect_cursor(ValueFileReader::open(&dir.join("pair.indv")).unwrap()).unwrap();
        assert_eq!(file_values, mem.as_slice());
        assert_eq!(stats.distinct, mem.len());
        assert_eq!(stats.pushed, 36, "40 rows minus 4 NULL-component rows");
    }

    #[test]
    fn composite_stream_orders_like_tuples() {
        use crate::tuple::decode_tuple;
        // Values whose canonical renderings share prefixes: the encoded
        // stream must sort by (first component, then second), not by the
        // raw concatenation.
        let a = vec![
            Value::Text("ab".into()),
            Value::Text("b".into()),
            Value::Text("a".into()),
        ];
        let b = vec![
            Value::Text("z".into()),
            Value::Text("a".into()),
            Value::Text("bz".into()),
        ];
        let set = extract_composite_memory_set(&[&a, &b]);
        let decoded: Vec<Vec<Vec<u8>>> = set
            .as_slice()
            .iter()
            .map(|t| decode_tuple(t).unwrap())
            .collect();
        assert_eq!(
            decoded,
            vec![
                vec![b"a".to_vec(), b"bz".to_vec()],
                vec![b"ab".to_vec(), b"z".to_vec()],
                vec![b"b".to_vec(), b"a".to_vec()],
            ]
        );
    }

    #[test]
    fn all_null_column_yields_empty_set() {
        let dir = TempDir::new("extract-null");
        let col = vec![Value::Null, Value::Null];
        assert!(extract_sorted_distinct(&col).is_empty());
        let stats = extract_to_file(
            &col,
            &dir.join("n.indv"),
            &dir.join("spill"),
            SortOptions::default(),
        )
        .unwrap();
        assert_eq!(stats.distinct, 0);
        assert_eq!(ValueFileReader::open(&dir.join("n.indv")).unwrap().len(), 0);
    }
}
