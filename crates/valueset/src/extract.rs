//! Extraction of sorted distinct value sets from stored columns.
//!
//! This is step one of both external algorithms: "We first extract from the
//! database the sorted sets of distinct values of each attribute using SQL"
//! (Sec. 3). Here the "SQL" is a scan over the columnar table plus the
//! canonical rendering from `ind-storage`; sorting and duplicate
//! elimination happen either in memory or via the external sorter.

use crate::error::Result;
use crate::external_sort::{ExternalSorter, SortOptions, SortStats};
use crate::format::ValueFileWriter;
use crate::memory::MemoryValueSet;
use ind_storage::Value;
use std::path::Path;

/// Extracts the sorted distinct canonical values of a column into memory.
pub fn extract_sorted_distinct(values: &[Value]) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = values
        .iter()
        .filter(|v| !v.is_null())
        .map(Value::canonical_bytes)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Extracts a column into a [`MemoryValueSet`].
pub fn extract_memory_set(values: &[Value]) -> MemoryValueSet {
    // `from_unsorted` re-sorts; feed it the raw rendering stream directly.
    MemoryValueSet::from_unsorted(
        values
            .iter()
            .filter(|v| !v.is_null())
            .map(Value::canonical_bytes),
    )
}

/// Extracts many columns into [`MemoryValueSet`]s on `threads` worker
/// threads (column extractions are mutually independent: render, sort,
/// dedup). Output order matches input order. `threads <= 1` degrades to the
/// sequential path.
pub fn extract_memory_sets_parallel(columns: &[&[Value]], threads: usize) -> Vec<MemoryValueSet> {
    let threads = threads.max(1);
    if threads == 1 || columns.len() < 2 {
        return columns.iter().map(|c| extract_memory_set(c)).collect();
    }
    let chunk = columns.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = columns
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move |_| {
                    shard
                        .iter()
                        .map(|c| extract_memory_set(c))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("extraction worker panicked"))
            .collect()
    })
    .expect("extraction scope panicked")
}

/// Extracts a column into a value file at `path` via the external sorter,
/// spilling into `spill_dir` when the memory budget is exceeded.
pub fn extract_to_file(
    values: &[Value],
    path: &Path,
    spill_dir: &Path,
    options: SortOptions,
) -> Result<SortStats> {
    let io = options.io.clone();
    let mut sorter = ExternalSorter::new(spill_dir, options)?;
    let mut buf = Vec::new();
    for v in values {
        if v.is_null() {
            continue;
        }
        buf.clear();
        v.render_canonical(&mut buf);
        sorter.push(&buf)?;
    }
    let mut writer = ValueFileWriter::create_with_options(path, &io)?;
    let stats = sorter.finish_into(&mut writer)?;
    writer.finish()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{collect_cursor, ValueCursor};
    use crate::format::ValueFileReader;
    use ind_storage::Value;
    use ind_testkit::TempDir;

    fn column() -> Vec<Value> {
        vec![
            Value::Integer(10),
            Value::Null,
            Value::Text("apple".into()),
            Value::Integer(9),
            Value::Integer(10),
            Value::Null,
        ]
    }

    #[test]
    fn nulls_and_duplicates_are_dropped() {
        let s = extract_sorted_distinct(&column());
        // Lexicographic: "10" < "9" < "apple".
        assert_eq!(s, vec![b"10".to_vec(), b"9".to_vec(), b"apple".to_vec()]);
    }

    #[test]
    fn memory_and_file_extraction_agree() {
        let dir = TempDir::new("extract-agree");
        let col = column();
        let mem = extract_memory_set(&col);
        let stats = extract_to_file(
            &col,
            &dir.join("col.indv"),
            &dir.join("spill"),
            SortOptions::default(),
        )
        .unwrap();
        let file_values =
            collect_cursor(ValueFileReader::open(&dir.join("col.indv")).unwrap()).unwrap();
        assert_eq!(file_values, mem.as_slice());
        assert_eq!(stats.distinct, mem.len());
        assert_eq!(stats.pushed, 4, "non-null occurrences");
        assert_eq!(stats.min.as_deref(), Some(b"10".as_slice()));
        assert_eq!(stats.max.as_deref(), Some(b"apple".as_slice()));
    }

    #[test]
    fn parallel_memory_extraction_matches_sequential() {
        let columns: Vec<Vec<Value>> = (0..9)
            .map(|i| {
                (0..40)
                    .map(|j| match (i + j) % 5 {
                        0 => Value::Null,
                        n => Value::Integer(i64::from(n * j % 11)),
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[Value]> = columns.iter().map(Vec::as_slice).collect();
        let sequential: Vec<_> = refs.iter().map(|c| extract_memory_set(c)).collect();
        for threads in [0usize, 1, 2, 4, 16] {
            let parallel = extract_memory_sets_parallel(&refs, threads);
            assert_eq!(parallel.len(), sequential.len(), "threads={threads}");
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.as_slice(), s.as_slice(), "threads={threads}");
            }
        }
    }

    #[test]
    fn all_null_column_yields_empty_set() {
        let dir = TempDir::new("extract-null");
        let col = vec![Value::Null, Value::Null];
        assert!(extract_sorted_distinct(&col).is_empty());
        let stats = extract_to_file(
            &col,
            &dir.join("n.indv"),
            &dir.join("spill"),
            SortOptions::default(),
        )
        .unwrap();
        assert_eq!(stats.distinct, 0);
        assert_eq!(ValueFileReader::open(&dir.join("n.indv")).unwrap().len(), 0);
    }
}
