//! Extraction of sorted distinct value sets from stored columns.
//!
//! This is step one of both external algorithms: "We first extract from the
//! database the sorted sets of distinct values of each attribute using SQL"
//! (Sec. 3). Here the "SQL" is a scan over the columnar table plus the
//! canonical rendering from `ind-storage`; sorting and duplicate
//! elimination happen either in memory or via the external sorter.

use crate::error::Result;
use crate::external_sort::{ExternalSorter, SortOptions, SortStats};
use crate::format::ValueFileWriter;
use crate::memory::MemoryValueSet;
use crate::tuple::encode_tuple_into;
use ind_storage::Value;
use std::path::Path;

/// Extracts the sorted distinct canonical values of a column into memory.
pub fn extract_sorted_distinct(values: &[Value]) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = values
        .iter()
        .filter(|v| !v.is_null())
        .map(Value::canonical_bytes)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Extracts a column into a [`MemoryValueSet`].
pub fn extract_memory_set(values: &[Value]) -> MemoryValueSet {
    // `from_unsorted` re-sorts; feed it the raw rendering stream directly.
    MemoryValueSet::from_unsorted(
        values
            .iter()
            .filter(|v| !v.is_null())
            .map(Value::canonical_bytes),
    )
}

/// Extracts many columns into [`MemoryValueSet`]s on `threads` worker
/// threads (column extractions are mutually independent: render, sort,
/// dedup). Output order matches input order. `threads <= 1` degrades to the
/// sequential path.
///
/// Workers claim columns one at a time off a shared atomic index instead of
/// fixed chunks, so a few huge columns at one end of a skewed schema cannot
/// idle the other workers.
pub fn extract_memory_sets_parallel(columns: &[&[Value]], threads: usize) -> Vec<MemoryValueSet> {
    let threads = threads.max(1).min(columns.len());
    if threads <= 1 || columns.len() < 2 {
        return columns.iter().map(|c| extract_memory_set(c)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move |_| {
                    let mut done: Vec<(usize, MemoryValueSet)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(column) = columns.get(i) else {
                            return done;
                        };
                        done.push((i, extract_memory_set(column)));
                    }
                })
            })
            .collect();
        let mut out: Vec<Option<MemoryValueSet>> = columns.iter().map(|_| None).collect();
        for handle in handles {
            // lint: allow(no_unwrap) — re-raising a worker panic on the coordinating thread is the correct escalation
            for (i, set) in handle.join().expect("extraction worker panicked") {
                out[i] = Some(set);
            }
        }
        out.into_iter()
            // lint: allow(no_unwrap) — the chunked split hands each column index to exactly one worker
            .map(|s| s.expect("every column claimed exactly once"))
            .collect()
    })
    // lint: allow(no_unwrap) — crossbeam scope errs only when a child panicked; propagate the panic
    .expect("extraction scope panicked")
}

/// Renders row `row`'s components into `rendered` (cleared first),
/// recording each component's end offset in `offsets`; returns `false`
/// when any component is NULL (tuples with NULL components carry no
/// inclusion evidence, mirroring how unary extraction drops NULL
/// occurrences). All components share one scratch buffer — no per-row
/// vectors.
fn render_components(
    columns: &[&[Value]],
    row: usize,
    rendered: &mut Vec<u8>,
    offsets: &mut [usize; MAX_COMPOSITE_ARITY],
) -> bool {
    if columns.iter().any(|c| c[row].is_null()) {
        return false;
    }
    rendered.clear();
    for (i, c) in columns.iter().enumerate() {
        c[row].render_canonical(rendered);
        offsets[i] = rendered.len();
    }
    true
}

/// The component sub-slices of `rendered` recorded by
/// [`render_components`], in position order.
fn component_slices<'a>(
    rendered: &'a [u8],
    offsets: &[usize; MAX_COMPOSITE_ARITY],
    arity: usize,
) -> [&'a [u8]; MAX_COMPOSITE_ARITY] {
    let mut components: [&[u8]; MAX_COMPOSITE_ARITY] = [&[]; MAX_COMPOSITE_ARITY];
    let mut start = 0usize;
    for i in 0..arity {
        components[i] = &rendered[start..offsets[i]];
        start = offsets[i];
    }
    components
}

/// Renders row `row` of `columns` as an encoded composite tuple into `buf`,
/// or returns `false` when any component is NULL.
fn render_composite_row(
    columns: &[&[Value]],
    row: usize,
    rendered: &mut Vec<u8>,
    buf: &mut Vec<u8>,
) -> bool {
    let mut offsets = [0usize; MAX_COMPOSITE_ARITY];
    if !render_components(columns, row, rendered, &mut offsets) {
        return false;
    }
    buf.clear();
    let components = component_slices(rendered, &offsets, columns.len());
    encode_tuple_into(&components[..columns.len()], buf);
    true
}

/// Hard cap on composite arity, comfortably above anything the levelwise
/// search reaches in practice (the candidate space dies out long before).
pub const MAX_COMPOSITE_ARITY: usize = 16;

/// Extracts the composite value set of a column group into memory: one
/// entry per row whose components are all non-NULL, encoded with the
/// order-preserving tuple encoding ([`crate::encode_tuple`]) so the sorted
/// distinct stream compares exactly like the tuple sequence. All columns
/// must come from the same table (equal lengths).
pub fn extract_composite_memory_set(columns: &[&[Value]]) -> MemoryValueSet {
    assert!(!columns.is_empty() && columns.len() <= MAX_COMPOSITE_ARITY);
    let rows = columns[0].len();
    debug_assert!(
        columns.iter().all(|c| c.len() == rows),
        "ragged column group"
    );
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(rows);
    let mut rendered = Vec::new();
    let mut buf = Vec::new();
    for row in 0..rows {
        if render_composite_row(columns, row, &mut rendered, &mut buf) {
            out.push(buf.clone());
        }
    }
    MemoryValueSet::from_unsorted(out)
}

/// Extracts a column group into a composite value file at `path` via the
/// external sorter — the on-disk counterpart of
/// [`extract_composite_memory_set`], producing a stream byte-identical to
/// it.
pub fn extract_composite_to_file(
    columns: &[&[Value]],
    path: &Path,
    spill_dir: &Path,
    options: SortOptions,
) -> Result<SortStats> {
    let mut sorter = ExternalSorter::new(spill_dir, options)?;
    extract_composite_with_sorter(columns, path, &mut sorter)
}

/// [`extract_composite_to_file`] through a caller-owned sorter, so one warm
/// arena serves a whole level of composite streams. Tuples are encoded
/// **directly into the arena** ([`ExternalSorter::push_with`]): components
/// are rendered once into a reused scratch buffer and escaped straight into
/// their final resting place — no per-row tuple vector.
pub fn extract_composite_with_sorter(
    columns: &[&[Value]],
    path: &Path,
    sorter: &mut ExternalSorter,
) -> Result<SortStats> {
    assert!(!columns.is_empty() && columns.len() <= MAX_COMPOSITE_ARITY);
    let rows = columns[0].len();
    debug_assert!(
        columns.iter().all(|c| c.len() == rows),
        "ragged column group"
    );
    let io = sorter.options().io.clone();
    let mut rendered = Vec::new();
    let mut offsets = [0usize; MAX_COMPOSITE_ARITY];
    for row in 0..rows {
        if !render_components(columns, row, &mut rendered, &mut offsets) {
            continue;
        }
        let components = component_slices(&rendered, &offsets, columns.len());
        sorter.push_with(|arena| encode_tuple_into(&components[..columns.len()], arena))?;
    }
    let mut writer = ValueFileWriter::create_atomic_with_options(path, &io)?;
    let stats = sorter.finish_into(&mut writer)?;
    writer.finish()?;
    Ok(stats)
}

/// Extracts a column into a value file at `path` via the external sorter,
/// spilling into `spill_dir` when the memory budget is exceeded.
pub fn extract_to_file(
    values: &[Value],
    path: &Path,
    spill_dir: &Path,
    options: SortOptions,
) -> Result<SortStats> {
    let mut sorter = ExternalSorter::new(spill_dir, options)?;
    extract_with_sorter(values, path, &mut sorter)
}

/// [`extract_to_file`] through a caller-owned sorter, so one warm arena
/// serves a whole export: canonical renderings go **directly into the
/// arena** ([`ExternalSorter::push_with`]) with no intermediate scratch
/// vector, and after the first attribute the steady-state cost of another
/// column is zero sorter allocations.
pub fn extract_with_sorter(
    values: &[Value],
    path: &Path,
    sorter: &mut ExternalSorter,
) -> Result<SortStats> {
    let io = sorter.options().io.clone();
    for v in values {
        if v.is_null() {
            continue;
        }
        sorter.push_with(|arena| v.render_canonical(arena))?;
    }
    // Final files publish atomically: an interrupted extraction leaves a
    // `.tmp` orphan, never a half-written file under the final name.
    let mut writer = ValueFileWriter::create_atomic_with_options(path, &io)?;
    let stats = sorter.finish_into(&mut writer)?;
    writer.finish()?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{collect_cursor, ValueCursor};
    use crate::format::ValueFileReader;
    use ind_storage::Value;
    use ind_testkit::TempDir;

    fn column() -> Vec<Value> {
        vec![
            Value::Integer(10),
            Value::Null,
            Value::Text("apple".into()),
            Value::Integer(9),
            Value::Integer(10),
            Value::Null,
        ]
    }

    #[test]
    fn nulls_and_duplicates_are_dropped() {
        let s = extract_sorted_distinct(&column());
        // Lexicographic: "10" < "9" < "apple".
        assert_eq!(s, vec![b"10".to_vec(), b"9".to_vec(), b"apple".to_vec()]);
    }

    #[test]
    fn memory_and_file_extraction_agree() {
        let dir = TempDir::new("extract-agree");
        let col = column();
        let mem = extract_memory_set(&col);
        let stats = extract_to_file(
            &col,
            &dir.join("col.indv"),
            &dir.join("spill"),
            SortOptions::default(),
        )
        .unwrap();
        let file_values =
            collect_cursor(ValueFileReader::open(&dir.join("col.indv")).unwrap()).unwrap();
        assert_eq!(file_values, mem.as_slice());
        assert_eq!(stats.distinct, mem.len());
        assert_eq!(stats.pushed, 4, "non-null occurrences");
        assert_eq!(stats.min.as_deref(), Some(b"10".as_slice()));
        assert_eq!(stats.max.as_deref(), Some(b"apple".as_slice()));
    }

    #[test]
    fn parallel_memory_extraction_matches_sequential() {
        let columns: Vec<Vec<Value>> = (0..9)
            .map(|i| {
                (0..40)
                    .map(|j| match (i + j) % 5 {
                        0 => Value::Null,
                        n => Value::Integer(i64::from(n * j % 11)),
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[Value]> = columns.iter().map(Vec::as_slice).collect();
        let sequential: Vec<_> = refs.iter().map(|c| extract_memory_set(c)).collect();
        for threads in [0usize, 1, 2, 4, 16] {
            let parallel = extract_memory_sets_parallel(&refs, threads);
            assert_eq!(parallel.len(), sequential.len(), "threads={threads}");
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.as_slice(), s.as_slice(), "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_extraction_survives_skewed_column_sizes() {
        // A few huge columns at the front and many tiny ones behind them:
        // with fixed chunking one worker owned all the giants; the
        // work-stealing index must still produce the sequential answer in
        // order, at every thread count from 1 to 8.
        let columns: Vec<Vec<Value>> = (0..17)
            .map(|i| {
                let rows = if i < 2 { 4000 } else { 5 };
                (0..rows)
                    .map(|j| match (i + j) % 7 {
                        0 => Value::Null,
                        n => Value::Integer(i64::from((n * j) % 257)),
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[Value]> = columns.iter().map(Vec::as_slice).collect();
        let sequential: Vec<_> = refs.iter().map(|c| extract_memory_set(c)).collect();
        for threads in 1usize..=8 {
            let parallel = extract_memory_sets_parallel(&refs, threads);
            assert_eq!(parallel.len(), sequential.len(), "threads={threads}");
            for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
                assert_eq!(p.as_slice(), s.as_slice(), "threads={threads}, column {i}");
            }
        }
    }

    #[test]
    fn composite_extraction_skips_null_rows_and_dedups() {
        use crate::tuple::decode_tuple;
        let a = vec![
            Value::Integer(1),
            Value::Integer(1),
            Value::Integer(2),
            Value::Null,
            Value::Integer(3),
        ];
        let b = vec![
            Value::Text("x".into()),
            Value::Text("x".into()), // duplicate pair (1, x)
            Value::Text("x".into()),
            Value::Text("y".into()), // dropped: NULL in `a`
            Value::Null,             // dropped: NULL in `b`
        ];
        let set = extract_composite_memory_set(&[&a, &b]);
        let decoded: Vec<Vec<Vec<u8>>> = set
            .as_slice()
            .iter()
            .map(|t| decode_tuple(t).unwrap())
            .collect();
        assert_eq!(
            decoded,
            vec![
                vec![b"1".to_vec(), b"x".to_vec()],
                vec![b"2".to_vec(), b"x".to_vec()],
            ]
        );
    }

    #[test]
    fn composite_memory_and_file_extraction_agree() {
        let dir = TempDir::new("extract-composite-agree");
        let a: Vec<Value> = (0..40i64).map(|i| Value::Integer(i % 7)).collect();
        let b: Vec<Value> = (0..40i64)
            .map(|i| {
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Text(format!("t{}", i % 5))
                }
            })
            .collect();
        let mem = extract_composite_memory_set(&[&a, &b]);
        let stats = extract_composite_to_file(
            &[&a, &b],
            &dir.join("pair.indv"),
            &dir.join("spill"),
            SortOptions::default(),
        )
        .unwrap();
        let file_values =
            collect_cursor(ValueFileReader::open(&dir.join("pair.indv")).unwrap()).unwrap();
        assert_eq!(file_values, mem.as_slice());
        assert_eq!(stats.distinct, mem.len());
        assert_eq!(stats.pushed, 36, "40 rows minus 4 NULL-component rows");
    }

    #[test]
    fn composite_stream_orders_like_tuples() {
        use crate::tuple::decode_tuple;
        // Values whose canonical renderings share prefixes: the encoded
        // stream must sort by (first component, then second), not by the
        // raw concatenation.
        let a = vec![
            Value::Text("ab".into()),
            Value::Text("b".into()),
            Value::Text("a".into()),
        ];
        let b = vec![
            Value::Text("z".into()),
            Value::Text("a".into()),
            Value::Text("bz".into()),
        ];
        let set = extract_composite_memory_set(&[&a, &b]);
        let decoded: Vec<Vec<Vec<u8>>> = set
            .as_slice()
            .iter()
            .map(|t| decode_tuple(t).unwrap())
            .collect();
        assert_eq!(
            decoded,
            vec![
                vec![b"a".to_vec(), b"bz".to_vec()],
                vec![b"ab".to_vec(), b"z".to_vec()],
                vec![b"b".to_vec(), b"a".to_vec()],
            ]
        );
    }

    #[test]
    fn all_null_column_yields_empty_set() {
        let dir = TempDir::new("extract-null");
        let col = vec![Value::Null, Value::Null];
        assert!(extract_sorted_distinct(&col).is_empty());
        let stats = extract_to_file(
            &col,
            &dir.join("n.indv"),
            &dir.join("spill"),
            SortOptions::default(),
        )
        .unwrap();
        assert_eq!(stats.distinct, 0);
        assert_eq!(ValueFileReader::open(&dir.join("n.indv")).unwrap().len(), 0);
    }
}
