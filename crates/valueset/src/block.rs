//! Block-oriented zero-copy file I/O.
//!
//! [`std::io::BufReader`] serves record-at-a-time readers well, but its API
//! forces a copy per record: `read_exact` always moves bytes out of the
//! internal buffer into the caller's, and the buffer size is fixed at
//! construction. The SPIDER hot path streams millions of tiny
//! length-prefixed records from sorted value files, so both costs are paid
//! per *value*. This module replaces it with a hand-rolled [`BlockReader`]:
//!
//! * the file is read in large blocks ([`IoOptions::block_size`], default
//!   256 KiB), so a fully-consumed stream costs
//!   `O(file_bytes / block_size)` read calls instead of one buffer refill
//!   per 8 KiB — with adaptive readahead (fills start at
//!   [`INITIAL_READAHEAD`] and double per fill) so streams that are closed
//!   early, the common case in a SPIDER merge, never over-read;
//! * the fill/consume API exposes the block itself: callers parse records
//!   **in place** and advance a consume cursor, copying only the rare
//!   record that does not fit in one block;
//! * opening is one `malloc` of `min(block_size, file_size)` — never
//!   zero-initialised, never an mmap-churning full-block arena per cursor —
//!   with the file size taken from a caller-provided hint when available;
//! * every read issued against the OS is counted, locally
//!   ([`BlockReader::read_calls`]) and into an optional shared
//!   [`ReadStats`], so harnesses can report syscall trajectories
//!   (`BENCH_spider.json`'s `read_calls`).
//!
//! [`crate::ValueFileReader`] builds its zero-copy `current()` and its
//! syscall-free `seek` skips on top of this reader; the writer side uses
//! the same `block_size` knob to stage records into block-sized
//! `write_all`s.

use std::fs::File;
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest usable block: must hold a value-file header (16 bytes). Smaller
/// requested sizes are clamped up, so even pathological configurations
/// (block sizes of a few bytes, used by the boundary tests) stay correct —
/// just slow.
pub const MIN_BLOCK_SIZE: usize = 16;

/// Default block size: 256 KiB amortises syscall overhead at multi-GB scale
/// while staying cache- and memory-friendly with hundreds of open cursors.
pub const DEFAULT_BLOCK_SIZE: usize = 256 * 1024;

/// First-fill readahead: fills start at 8 KiB and double per fill up to the
/// block size, so a cursor that is closed early (SPIDER refutes most
/// streams within their first values) never pays for a block it would not
/// have consumed, while long-lived streams converge on full-block reads.
pub const INITIAL_READAHEAD: usize = 8 * 1024;

/// Tuning for the value-file I/O layer, shared by readers and writers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoOptions {
    /// Bytes per I/O block: the unit of reader fills and writer flushes.
    /// Values below [`MIN_BLOCK_SIZE`] are clamped up at use time.
    pub block_size: usize,
    /// Advise the kernel that each opened value file will be read
    /// sequentially (`posix_fadvise(POSIX_FADV_SEQUENTIAL)`), letting it
    /// double readahead and drop pages behind the cursor — the first
    /// concrete step of the `O_DIRECT` / async-streaming frontier. Off by
    /// default; purely an I/O hint, never a correctness knob. Each issued
    /// hint is counted in [`ReadStats::fadvise_calls`] so harnesses can see
    /// it. A no-op on non-Unix targets.
    pub sequential_hint: bool,
}

impl Default for IoOptions {
    fn default() -> Self {
        IoOptions {
            block_size: DEFAULT_BLOCK_SIZE,
            sequential_hint: false,
        }
    }
}

impl IoOptions {
    /// Options with the given block size (clamped to [`MIN_BLOCK_SIZE`] at
    /// use time).
    pub fn with_block_size(block_size: usize) -> Self {
        IoOptions {
            block_size,
            ..Default::default()
        }
    }

    /// Builder toggle for the sequential-access hint.
    pub fn sequential(mut self, hint: bool) -> Self {
        self.sequential_hint = hint;
        self
    }

    /// The effective (clamped) block size.
    pub fn effective_block_size(&self) -> usize {
        self.block_size.max(MIN_BLOCK_SIZE)
    }
}

/// Issues `posix_fadvise(fd, 0, 0, POSIX_FADV_SEQUENTIAL)` for the whole
/// file. Returns whether a hint was actually delivered to the OS (always
/// `false` off 64-bit Linux: the libc call is not portably available
/// elsewhere, and on 32-bit targets the symbol takes a 32-bit `off_t`,
/// so this hand-declared 64-bit signature would corrupt the argument
/// registers).
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
fn advise_sequential(file: &File) -> bool {
    use std::os::unix::io::AsRawFd;
    // Declared directly against libc so the workspace stays free of new
    // crate dependencies; constant value per `linux/fadvise.h`.
    const POSIX_FADV_SEQUENTIAL: std::os::raw::c_int = 2;
    extern "C" {
        fn posix_fadvise(
            fd: std::os::raw::c_int,
            offset: i64,
            len: i64,
            advice: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }
    // Failure is harmless (the hint is advisory); report it so the counter
    // only ever counts delivered hints.
    // SAFETY: the fd is valid for the lifetime of `file` (borrowed, not
    // owned), the signature matches the 64-bit Linux ABI the cfg above
    // restricts us to, and posix_fadvise touches no memory — it only
    // advises the kernel about the fd's future access pattern.
    unsafe { posix_fadvise(file.as_raw_fd(), 0, 0, POSIX_FADV_SEQUENTIAL) == 0 }
}

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
fn advise_sequential(_file: &File) -> bool {
    false
}

/// Shared syscall counter: every `read(2)` a [`BlockReader`] issues is
/// added here. Cloning shares the counter, so one `ReadStats` can aggregate
/// across all cursors a provider hands out (including worker threads).
#[derive(Debug, Clone, Default)]
pub struct ReadStats {
    calls: Arc<AtomicU64>,
    fadvise: Arc<AtomicU64>,
}

impl ReadStats {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        ReadStats::default()
    }

    /// Read calls recorded so far.
    pub fn read_calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// `posix_fadvise` sequential hints delivered so far (one per opened
    /// reader when [`IoOptions::sequential_hint`] is set; zero on targets
    /// without the syscall).
    pub fn fadvise_calls(&self) -> u64 {
        self.fadvise.load(Ordering::Relaxed)
    }

    /// Resets the counters to zero (between measured phases).
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.fadvise.store(0, Ordering::Relaxed);
    }

    fn bump(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_fadvise(&self) {
        self.fadvise.fetch_add(1, Ordering::Relaxed);
    }
}

/// A block-at-a-time reader with an explicit fill/consume API.
///
/// The buffer is filled in block-sized reads; callers inspect
/// [`BlockReader::buffered`] (or slices captured via [`BlockReader::pos`])
/// and advance the consume cursor with [`BlockReader::consume`] — a pure
/// pointer bump. Bytes between the consume cursor and the fill end stay
/// stable until the next fill, which is what lets [`crate::ValueFileReader`]
/// hand out `current()` slices pointing straight into the block.
///
/// Opening a cursor costs one `malloc`, nothing more: the buffer capacity
/// is the block size capped at the file's byte size (so hundreds of small
/// attribute cursors do not each drag in a 256 KiB arena — a measured
/// regression, not a theoretical one), the cap comes from a caller-supplied
/// size hint when available (the export manager records file sizes at write
/// time) with one `fstat` as the fallback, and fills append through
/// [`Read::take`] + `read_to_end` into reserved capacity, so the buffer is
/// never zero-initialised.
#[derive(Debug)]
pub struct BlockReader {
    file: File,
    /// Filled bytes; `buf[start..]` is valid, unconsumed data.
    buf: Vec<u8>,
    /// Consume cursor.
    start: usize,
    /// Logical block size (= the buffer's reserved capacity).
    block_size: usize,
    /// Current fill granularity: starts at [`INITIAL_READAHEAD`], doubles
    /// per fill, saturates at `block_size`.
    readahead: usize,
    read_calls: u64,
    stats: Option<ReadStats>,
}

impl BlockReader {
    /// Wraps `file` with a block buffer of `options.block_size` (clamped to
    /// [`MIN_BLOCK_SIZE`], capped at the file's length via one `fstat`).
    /// Syscalls are counted locally and, when given, into `stats`.
    pub fn new(file: File, options: &IoOptions, stats: Option<ReadStats>) -> Self {
        let file_len = file.metadata().map(|m| m.len()).unwrap_or(u64::MAX);
        Self::with_size_hint(file, options, stats, file_len)
    }

    /// [`BlockReader::new`] with the file's byte size supplied by the
    /// caller, skipping the `fstat`. Correctness never depends on the
    /// hint, but it should be accurate: a hint that undershoots the real
    /// size caps this reader's block capacity for its whole lifetime, so a
    /// wildly low hint degrades a large file to tiny fills and routes
    /// big records through the growing path.
    pub fn with_size_hint(
        file: File,
        options: &IoOptions,
        stats: Option<ReadStats>,
        file_len: u64,
    ) -> Self {
        if options.sequential_hint && advise_sequential(&file) {
            if let Some(stats) = &stats {
                stats.bump_fadvise();
            }
        }
        let capacity = usize::try_from(file_len)
            .unwrap_or(usize::MAX)
            .clamp(MIN_BLOCK_SIZE, options.effective_block_size());
        BlockReader {
            file,
            buf: Vec::with_capacity(capacity),
            start: 0,
            block_size: capacity,
            readahead: INITIAL_READAHEAD.min(capacity),
            read_calls: 0,
            stats,
        }
    }

    /// The block capacity (effective block size).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.block_size
    }

    /// Read-request calls issued by this reader so far (one per block
    /// fill, plus the direct reads of the spill path).
    pub fn read_calls(&self) -> u64 {
        self.read_calls
    }

    /// The unconsumed buffered bytes.
    #[inline]
    pub fn buffered(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Current consume-cursor offset into the block. Together with
    /// [`BlockReader::slice`] this lets a caller pin a record's position
    /// *before* consuming past it and re-borrow it later — valid until the
    /// next fill.
    #[inline]
    pub fn pos(&self) -> usize {
        self.start
    }

    /// Bytes `offset..offset + len` of the block. Only meaningful for
    /// ranges captured via [`BlockReader::pos`] since the last fill.
    #[inline]
    pub fn slice(&self, offset: usize, len: usize) -> &[u8] {
        &self.buf[offset..offset + len]
    }

    /// Marks `n` buffered bytes as consumed — no syscall, no copy.
    #[inline]
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.buf.len() - self.start, "consume past fill end");
        self.start += n;
    }

    /// Ensures at least `need` bytes are buffered, topping the block up in
    /// one bulk read; at end of file fewer may remain. Returns the number
    /// of buffered bytes. `need` must not exceed the capacity.
    ///
    /// Filling compacts the unconsumed tail to the front of the block, so
    /// any offsets captured via [`BlockReader::pos`] before this call are
    /// invalidated. The already-buffered case is a branch, kept inline so
    /// per-record callers pay nothing in the steady state.
    #[inline]
    pub fn fill_to(&mut self, need: usize) -> std::io::Result<usize> {
        if self.buf.len() - self.start >= need {
            return Ok(self.buf.len() - self.start);
        }
        self.fill_slow(need)
    }

    #[cold]
    fn fill_slow(&mut self, need: usize) -> std::io::Result<usize> {
        debug_assert!(need <= self.block_size, "fill_to beyond block capacity");
        if self.start > 0 {
            let len = self.buf.len();
            self.buf.copy_within(self.start..len, 0);
            self.buf.truncate(len - self.start);
            self.start = 0;
        }
        while self.buf.len() < need {
            // One bulk request per iteration, at the current readahead
            // granularity (but always enough to satisfy `need`). `take` +
            // `read_to_end` appends into the reserved capacity without ever
            // zero-initialising it, and stops exactly at the request
            // boundary, so a fill sized by an accurate hint never pays an
            // extra EOF-probing syscall.
            let want = self
                .readahead
                .max(need - self.buf.len())
                .min(self.block_size - self.buf.len()) as u64;
            let n = (&mut self.file).take(want).read_to_end(&mut self.buf)?;
            self.count_read();
            self.readahead = (self.readahead * 2).min(self.block_size);
            if n == 0 {
                break; // EOF: caller decides whether short is fatal
            }
        }
        Ok(self.buf.len() - self.start)
    }

    /// Buffers exactly `need` bytes even when `need` exceeds the block
    /// size, growing the block to hold one oversized record; short only at
    /// end of file. This is the spill path for records that do not fit a
    /// block — the grown storage is reused (and shrunk back to one block's
    /// worth of live data by the next compaction), so even oversized
    /// records are served zero-copy out of the block.
    pub fn fill_exact_growing(&mut self, need: usize) -> std::io::Result<usize> {
        if self.buf.len() - self.start >= need {
            return Ok(self.buf.len() - self.start);
        }
        if self.start > 0 {
            let len = self.buf.len();
            self.buf.copy_within(self.start..len, 0);
            self.buf.truncate(len - self.start);
            self.start = 0;
        }
        self.buf.reserve(need - self.buf.len());
        while self.buf.len() < need {
            let want = (need - self.buf.len()) as u64;
            let n = (&mut self.file).take(want).read_to_end(&mut self.buf)?;
            self.count_read();
            if n == 0 {
                break; // EOF: caller decides whether short is fatal
            }
        }
        Ok(self.buf.len() - self.start)
    }

    fn count_read(&mut self) {
        self.read_calls += 1;
        if let Some(stats) = &self.stats {
            stats.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_testkit::TempDir;

    fn reader(data: &[u8], block_size: usize, stats: Option<ReadStats>) -> BlockReader {
        let dir = TempDir::new("blockreader");
        let path = dir.join("data.bin");
        std::fs::write(&path, data).unwrap();
        // The TempDir is removed when it drops, but the opened File handle
        // stays valid on Unix.
        BlockReader::new(
            std::fs::File::open(&path).unwrap(),
            &IoOptions::with_block_size(block_size),
            stats,
        )
    }

    #[test]
    fn block_size_is_clamped_to_minimum() {
        let r = reader(b"0123456789", 1, None);
        assert_eq!(r.capacity(), MIN_BLOCK_SIZE);
        assert_eq!(IoOptions::with_block_size(0).effective_block_size(), 16);
        assert_eq!(IoOptions::default().effective_block_size(), 256 * 1024);
    }

    #[test]
    fn fill_consume_round_trip() {
        let mut r = reader(b"abcdefghij", 16, None);
        assert_eq!(r.fill_to(4).unwrap(), 10, "one read grabs the whole file");
        assert_eq!(&r.buffered()[..4], b"abcd");
        r.consume(4);
        assert_eq!(r.buffered(), b"efghij");
        r.consume(6);
        assert_eq!(r.fill_to(1).unwrap(), 0, "EOF leaves the buffer empty");
        assert_eq!(r.read_calls(), 2, "initial fill + EOF probe");
    }

    #[test]
    fn fill_compacts_and_refills_across_blocks() {
        let data: Vec<u8> = (0..64u8).collect();
        let mut r = reader(&data, 16, None);
        let mut seen = Vec::new();
        loop {
            let avail = r.fill_to(3).unwrap();
            if avail == 0 {
                break;
            }
            let take = avail.min(3);
            seen.extend_from_slice(&r.buffered()[..take]);
            r.consume(take);
        }
        assert_eq!(seen, data);
    }

    #[test]
    fn bigger_blocks_issue_fewer_reads() {
        let data = vec![7u8; 4096];
        let mut calls = Vec::new();
        for block in [16, 64, 1024, 8192] {
            let mut r = reader(&data, block, None);
            let mut total = 0usize;
            loop {
                let avail = r.fill_to(1).unwrap();
                if avail == 0 {
                    break;
                }
                total += avail;
                r.consume(avail);
            }
            assert_eq!(total, data.len());
            calls.push(r.read_calls());
        }
        assert!(
            calls.windows(2).all(|w| w[0] >= w[1]),
            "read calls must not grow with block size: {calls:?}"
        );
        assert!(
            calls[0] >= 10 * calls[3],
            "4 KiB over 16 B blocks needs many reads vs one 8 KiB block: {calls:?}"
        );
    }

    #[test]
    fn shared_stats_aggregate_across_readers() {
        let stats = ReadStats::new();
        let data = vec![1u8; 100];
        for _ in 0..3 {
            let mut r = reader(&data, 64, Some(stats.clone()));
            while r.fill_to(1).unwrap() > 0 {
                let n = r.buffered().len();
                r.consume(n);
            }
        }
        assert!(stats.read_calls() >= 3, "each reader fills at least once");
        let before = stats.read_calls();
        stats.reset();
        assert_eq!(stats.read_calls(), 0);
        assert!(before > 0);
    }

    #[test]
    fn sequential_hint_is_counted_and_changes_nothing_else() {
        let data: Vec<u8> = (0..200u8).collect();
        let stats = ReadStats::new();
        let dir = TempDir::new("blockreader-fadvise");
        let path = dir.join("data.bin");
        std::fs::write(&path, &data).unwrap();
        let open = |hint: bool, stats: ReadStats| {
            BlockReader::new(
                std::fs::File::open(&path).unwrap(),
                &IoOptions::with_block_size(64).sequential(hint),
                Some(stats),
            )
        };

        // Hint off: counter stays zero.
        let mut r = open(false, stats.clone());
        let mut plain = Vec::new();
        while r.fill_to(1).unwrap() > 0 {
            plain.extend_from_slice(r.buffered());
            let n = r.buffered().len();
            r.consume(n);
        }
        assert_eq!(stats.fadvise_calls(), 0);

        // Hint on: exactly one hint per open on Linux, none elsewhere, and
        // the bytes read are identical either way.
        let mut r = open(true, stats.clone());
        let mut hinted = Vec::new();
        while r.fill_to(1).unwrap() > 0 {
            hinted.extend_from_slice(r.buffered());
            let n = r.buffered().len();
            r.consume(n);
        }
        assert_eq!(hinted, plain);
        assert_eq!(hinted, data);
        if cfg!(all(target_os = "linux", target_pointer_width = "64")) {
            assert_eq!(stats.fadvise_calls(), 1);
            let before = stats.read_calls();
            stats.reset();
            assert_eq!(stats.fadvise_calls(), 0, "reset clears the hint counter");
            assert!(before > 0);
        } else {
            assert_eq!(stats.fadvise_calls(), 0);
        }
    }

    #[test]
    fn growing_fill_crosses_the_block_and_reports_eof_short() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut r = reader(&data, 16, None);
        r.fill_to(10).unwrap();
        r.consume(2);
        // A 90-byte need exceeds the 16-byte block: the buffer grows and
        // serves the whole range in place.
        assert_eq!(r.fill_exact_growing(90).unwrap(), 90);
        assert_eq!(r.buffered(), &data[2..92]);
        r.consume(90);
        // Asking for more than the file holds comes back short, not OK.
        assert_eq!(r.fill_exact_growing(20).unwrap(), 8);
        assert_eq!(r.buffered(), &data[92..]);
    }

    #[test]
    fn pinned_slices_survive_until_the_next_fill() {
        let mut r = reader(b"aaaabbbbccccdddd", 16, None);
        r.fill_to(16).unwrap();
        let pos = r.pos();
        r.consume(8);
        assert_eq!(r.slice(pos, 4), b"aaaa", "consumed bytes stay readable");
        assert_eq!(r.slice(pos + 4, 4), b"bbbb");
    }
}
