//! Block-oriented zero-copy file I/O.
//!
//! [`std::io::BufReader`] serves record-at-a-time readers well, but its API
//! forces a copy per record: `read_exact` always moves bytes out of the
//! internal buffer into the caller's, and the buffer size is fixed at
//! construction. The SPIDER hot path streams millions of tiny
//! length-prefixed records from sorted value files, so both costs are paid
//! per *value*. This module replaces it with a hand-rolled [`BlockReader`]:
//!
//! * the file is read in large blocks ([`IoOptions::block_size`], default
//!   256 KiB), so a fully-consumed stream costs
//!   `O(file_bytes / block_size)` read calls instead of one buffer refill
//!   per 8 KiB — with adaptive readahead (fills start at
//!   [`INITIAL_READAHEAD`] and double per fill) so streams that are closed
//!   early, the common case in a SPIDER merge, never over-read;
//! * the fill/consume API exposes the block itself: callers parse records
//!   **in place** and advance a consume cursor, copying only the rare
//!   record that does not fit in one block;
//! * opening is one `malloc` of `min(block_size, file_size)` — never
//!   zero-initialised, never an mmap-churning full-block arena per cursor —
//!   with the file size taken from a caller-provided hint when available;
//! * every read issued against the OS is counted, locally
//!   ([`BlockReader::read_calls`]) and into an optional shared
//!   [`ReadStats`], so harnesses can report syscall trajectories
//!   (`BENCH_spider.json`'s `read_calls`).
//!
//! [`crate::ValueFileReader`] builds its zero-copy `current()` and its
//! syscall-free `seek` skips on top of this reader; the writer side uses
//! the same `block_size` knob to stage records into block-sized
//! `write_all`s.

use std::fs::File;
use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest usable block: must hold a value-file header (20 bytes in
/// format v2). Smaller requested sizes are clamped up, so even
/// pathological configurations (block sizes of a few bytes, used by the
/// boundary tests) stay correct — just slow.
pub const MIN_BLOCK_SIZE: usize = 32;

/// Default block size: 256 KiB amortises syscall overhead at multi-GB scale
/// while staying cache- and memory-friendly with hundreds of open cursors.
pub const DEFAULT_BLOCK_SIZE: usize = 256 * 1024;

/// First-fill readahead: fills start at 8 KiB and double per fill up to the
/// block size, so a cursor that is closed early (SPIDER refutes most
/// streams within their first values) never pays for a block it would not
/// have consumed, while long-lived streams converge on full-block reads.
pub const INITIAL_READAHEAD: usize = 8 * 1024;

/// Tuning for the value-file I/O layer, shared by readers and writers.
///
/// Equality compares only the tuning knobs (block size, hints, prefetch,
/// direct I/O, checksum verification) — the runtime attachments
/// ([`IoOptions::fault`], [`IoOptions::stats`], [`IoOptions::cancel`]) are
/// deliberately excluded, so two configurations that read files the same
/// way compare equal even when only one of them is instrumented.
#[derive(Debug, Clone)]
pub struct IoOptions {
    /// Bytes per I/O block: the unit of reader fills and writer flushes.
    /// Values below [`MIN_BLOCK_SIZE`] are clamped up at use time.
    pub block_size: usize,
    /// Advise the kernel that each opened value file will be read
    /// sequentially (`posix_fadvise(POSIX_FADV_SEQUENTIAL)`), letting it
    /// double readahead and drop pages behind the cursor — the first
    /// concrete step of the `O_DIRECT` / async-streaming frontier. Off by
    /// default; purely an I/O hint, never a correctness knob. Each issued
    /// hint is counted in [`ReadStats::fadvise_calls`] so harnesses can see
    /// it. A no-op on non-Unix targets.
    pub sequential_hint: bool,
    /// Overlap fills with consumption: each reader opened by path gets a
    /// background worker that reads block `N+1` while the consumer parses
    /// block `N`, handing whole blocks over through a bounded channel (see
    /// [`crate::prefetch`]). Fills served from an already-delivered block
    /// count as [`ReadStats::prefetch_hits`]; fills that had to wait for
    /// the worker count as [`ReadStats::prefetch_stalls`]. Results are
    /// byte-identical to synchronous reads on every input. Off by default.
    pub prefetch: bool,
    /// Open value files with `O_DIRECT`, bypassing the page cache — the
    /// right mode for bigger-than-RAM scans that would otherwise evict
    /// every other page while double-buffering data read exactly once.
    /// Alignment is taken from the filesystem (`fstatfs`). **Always falls
    /// back** to a buffered open when the filesystem refuses direct I/O
    /// (tmpfs, many CI filesystems) or the target lacks support; successes
    /// count into [`ReadStats::direct_opens`], fallbacks into
    /// [`ReadStats::direct_fallbacks`], and the knob never fails an open.
    /// Off by default.
    pub direct_io: bool,
    /// Verify format-v2 frame checksums on every fill (and header/footer
    /// checksums at open/end of stream). On by default: the cost is one
    /// CRC32C pass per byte, paid on the prefetch worker thread when
    /// overlapped reads are on. Turning it off still strips the v2
    /// framing and still detects structural damage (truncation, bad
    /// geometry); it only skips the checksum comparisons.
    pub verify_checksums: bool,
    /// A fault plan injected beneath every reader, writer, and open this
    /// configuration touches (see [`crate::fault`]). `None` (the default)
    /// costs nothing on the I/O path.
    pub fault: Option<Arc<crate::fault::FaultPlan>>,
    /// Fallback shared counters for call sites that do not thread an
    /// explicit [`ReadStats`] (the spill merge opens its run readers
    /// through options alone). An explicit `stats` argument at an open
    /// site always wins over this field.
    pub stats: Option<ReadStats>,
    /// A cooperative cancellation token polled at block granularity by
    /// every reader fill and writer flush this configuration touches (see
    /// [`crate::cancel`]). `None` (the default) costs nothing.
    pub cancel: Option<crate::cancel::CancelToken>,
}

impl Default for IoOptions {
    fn default() -> Self {
        IoOptions {
            block_size: DEFAULT_BLOCK_SIZE,
            sequential_hint: false,
            prefetch: false,
            direct_io: false,
            verify_checksums: true,
            fault: None,
            stats: None,
            cancel: None,
        }
    }
}

impl PartialEq for IoOptions {
    fn eq(&self, other: &Self) -> bool {
        self.block_size == other.block_size
            && self.sequential_hint == other.sequential_hint
            && self.prefetch == other.prefetch
            && self.direct_io == other.direct_io
            && self.verify_checksums == other.verify_checksums
    }
}

impl Eq for IoOptions {}

impl IoOptions {
    /// Options with the given block size (clamped to [`MIN_BLOCK_SIZE`] at
    /// use time).
    pub fn with_block_size(block_size: usize) -> Self {
        IoOptions {
            block_size,
            ..Default::default()
        }
    }

    /// Builder toggle for the sequential-access hint.
    pub fn sequential(mut self, hint: bool) -> Self {
        self.sequential_hint = hint;
        self
    }

    /// Builder toggle for overlapped prefetch ([`IoOptions::prefetch`]).
    pub fn prefetched(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Builder toggle for `O_DIRECT` opens ([`IoOptions::direct_io`]).
    pub fn direct(mut self, direct_io: bool) -> Self {
        self.direct_io = direct_io;
        self
    }

    /// Builder toggle for checksum verification
    /// ([`IoOptions::verify_checksums`]).
    pub fn verify(mut self, verify_checksums: bool) -> Self {
        self.verify_checksums = verify_checksums;
        self
    }

    /// Attaches a fault plan ([`IoOptions::fault`]).
    pub fn with_fault(mut self, plan: Arc<crate::fault::FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attaches fallback shared counters ([`IoOptions::stats`]).
    pub fn with_stats(mut self, stats: ReadStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Attaches a cancellation token ([`IoOptions::cancel`]).
    pub fn with_cancel(mut self, token: crate::cancel::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The effective (clamped) block size.
    pub fn effective_block_size(&self) -> usize {
        self.block_size.max(MIN_BLOCK_SIZE)
    }
}

/// Issues `posix_fadvise(fd, 0, 0, POSIX_FADV_SEQUENTIAL)` for the whole
/// file. Returns whether a hint was actually delivered to the OS (always
/// `false` off 64-bit Linux: the libc call is not portably available
/// elsewhere, and on 32-bit targets the symbol takes a 32-bit `off_t`,
/// so this hand-declared 64-bit signature would corrupt the argument
/// registers).
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
fn advise_sequential(file: &File) -> bool {
    use std::os::unix::io::AsRawFd;
    // Declared directly against libc so the workspace stays free of new
    // crate dependencies; constant value per `linux/fadvise.h`.
    const POSIX_FADV_SEQUENTIAL: std::os::raw::c_int = 2;
    extern "C" {
        fn posix_fadvise(
            fd: std::os::raw::c_int,
            offset: i64,
            len: i64,
            advice: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }
    // Failure is harmless (the hint is advisory); report it so the counter
    // only ever counts delivered hints.
    // SAFETY: the fd is valid for the lifetime of `file` (borrowed, not
    // owned), the signature matches the 64-bit Linux ABI the cfg above
    // restricts us to, and posix_fadvise touches no memory — it only
    // advises the kernel about the fd's future access pattern.
    unsafe { posix_fadvise(file.as_raw_fd(), 0, 0, POSIX_FADV_SEQUENTIAL) == 0 }
}

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
fn advise_sequential(_file: &File) -> bool {
    false
}

/// `O_DIRECT` reads, supported on 64-bit Linux for the two architectures
/// whose flag value is pinned below. Everywhere else [`DirectFile::open`]
/// always errs, which the caller turns into a counted buffered fallback —
/// the direct-I/O knob is best-effort by contract.
#[cfg(all(
    target_os = "linux",
    target_pointer_width = "64",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod direct {
    use std::fs::File;
    use std::io::Read;
    use std::os::unix::fs::OpenOptionsExt;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;
    use std::ptr::NonNull;

    /// `O_DIRECT` per `asm-generic/fcntl.h` overrides: the flag is one of
    /// the few whose value differs per architecture.
    #[cfg(target_arch = "x86_64")]
    const O_DIRECT: i32 = 0o40000;
    #[cfg(target_arch = "aarch64")]
    const O_DIRECT: i32 = 0o200000;

    /// Alignment bounds for the staging buffer: `fstatfs` results are
    /// clamped into `[512, 64 KiB]` (a non-power-of-two or failed query
    /// falls back to 4096, the ubiquitous page/sector size).
    const MIN_ALIGN: usize = 512;
    const MAX_ALIGN: usize = 64 * 1024;
    const DEFAULT_ALIGN: usize = 4096;

    /// The filesystem's preferred I/O block size for `file`, used as the
    /// `O_DIRECT` alignment for offsets, lengths, and buffer addresses.
    fn direct_alignment(file: &File) -> usize {
        // The glibc 64-bit `statfs` layout: `f_type` then `f_bsize`, both
        // word-sized, followed by the block/inode counts and padding. Only
        // `f_bsize` is read; the trailing array generously over-covers the
        // kernel's 120-byte write.
        #[repr(C)]
        struct RawStatFs {
            f_type: i64,
            f_bsize: i64,
            _rest: [u64; 16],
        }
        extern "C" {
            fn fstatfs(fd: std::os::raw::c_int, buf: *mut RawStatFs) -> std::os::raw::c_int;
        }
        let mut raw = RawStatFs {
            f_type: 0,
            f_bsize: 0,
            _rest: [0; 16],
        };
        // SAFETY: the fd is valid for the lifetime of the borrowed `file`;
        // `raw` is a live, writable, properly aligned struct larger than
        // the 120 bytes the 64-bit Linux ABI writes into it.
        let ok = unsafe { fstatfs(file.as_raw_fd(), &mut raw) } == 0;
        match u64::try_from(raw.f_bsize) {
            Ok(bsize) if ok && bsize.is_power_of_two() => {
                (bsize as usize).clamp(MIN_ALIGN, MAX_ALIGN)
            }
            _ => DEFAULT_ALIGN,
        }
    }

    /// A heap allocation with an explicit alignment, as `O_DIRECT` demands
    /// of the destination buffer address.
    struct AlignedBuf {
        ptr: NonNull<u8>,
        layout: std::alloc::Layout,
    }

    // SAFETY: the buffer is a plain owned allocation; nothing about it is
    // thread-affine, so moving it to the prefetch worker thread is sound.
    unsafe impl Send for AlignedBuf {}

    impl AlignedBuf {
        fn new(size: usize, align: usize) -> std::io::Result<AlignedBuf> {
            let layout = std::alloc::Layout::from_size_align(size, align)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
            // SAFETY: `layout` has non-zero size (`size >= align >= 512` by
            // construction in `DirectFile::open`).
            let ptr = unsafe { std::alloc::alloc(layout) };
            match NonNull::new(ptr) {
                Some(ptr) => Ok(AlignedBuf { ptr, layout }),
                None => Err(std::io::Error::new(
                    std::io::ErrorKind::OutOfMemory,
                    "aligned staging buffer allocation failed",
                )),
            }
        }
    }

    impl Drop for AlignedBuf {
        fn drop(&mut self) {
            // SAFETY: `ptr` was returned by `alloc` with exactly this
            // layout and is deallocated once (Drop runs once).
            unsafe { std::alloc::dealloc(self.ptr.as_ptr(), self.layout) }
        }
    }

    impl std::fmt::Debug for AlignedBuf {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("AlignedBuf")
                .field("size", &self.layout.size())
                .field("align", &self.layout.align())
                .finish()
        }
    }

    /// A read-only `O_DIRECT` file. Reads land in an aligned staging
    /// buffer (kernel requirement) and are copied out through the plain
    /// [`Read`] impl, so the rest of the reader stack is oblivious to the
    /// alignment rules. Sequential use keeps every file offset a multiple
    /// of the alignment: reads always request the full staging capacity
    /// (an alignment multiple) and the kernel returns either all of it or
    /// the final unaligned tail at end of file.
    #[derive(Debug)]
    pub(crate) struct DirectFile {
        file: File,
        stage: AlignedBuf,
        /// Valid bytes currently staged.
        len: usize,
        /// Copy-out cursor into the stage.
        pos: usize,
        eof: bool,
    }

    impl DirectFile {
        /// Opens `path` with `O_DIRECT`, or errs (filesystem refused —
        /// tmpfs and many overlay filesystems do) so the caller can fall
        /// back to a buffered open.
        pub(crate) fn open(path: &Path, block_size: usize) -> std::io::Result<DirectFile> {
            // lint: allow(fs_open) — O_DIRECT needs custom flags; the sole caller (open_path) gates it with fault::check_open
            let file = std::fs::OpenOptions::new()
                .read(true)
                .custom_flags(O_DIRECT)
                .open(path)?;
            let align = direct_alignment(&file);
            // Stage capacity: the block size rounded up to the alignment,
            // so one staged read feeds one block fill.
            let size = block_size.div_ceil(align).max(1) * align;
            Ok(DirectFile {
                file,
                stage: AlignedBuf::new(size, align)?,
                len: 0,
                pos: 0,
                eof: false,
            })
        }
    }

    impl Read for DirectFile {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos == self.len {
                if self.eof {
                    return Ok(0);
                }
                // SAFETY: `stage.ptr` is valid for `layout.size()` writable
                // bytes for as long as `stage` lives, and the slice is
                // dropped before any other access to the stage.
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(
                        self.stage.ptr.as_ptr(),
                        self.stage.layout.size(),
                    )
                };
                let n = self.file.read(dst)?;
                // A short read under sequential O_DIRECT is the unaligned
                // file tail: the next offset would break the alignment
                // contract, so treat it as end of stream. Value files
                // carry their record count in the header, so a genuinely
                // truncated stream still surfaces as a corruption error,
                // never as silent short data.
                if n < dst.len() {
                    self.eof = true;
                }
                if n == 0 {
                    return Ok(0);
                }
                self.len = n;
                self.pos = 0;
            }
            let n = out.len().min(self.len - self.pos);
            // SAFETY: `pos + n <= len <= layout.size()`, and the staged
            // bytes were initialised by the kernel read above.
            let src = unsafe { std::slice::from_raw_parts(self.stage.ptr.as_ptr(), self.len) };
            out[..n].copy_from_slice(&src[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }
}

/// Permanent-fallback stub for targets without `O_DIRECT` support: `open`
/// always errs, so every direct-I/O request becomes a counted buffered
/// fallback.
#[cfg(not(all(
    target_os = "linux",
    target_pointer_width = "64",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod direct {
    use std::path::Path;

    #[derive(Debug)]
    pub(crate) struct DirectFile {}

    impl DirectFile {
        pub(crate) fn open(_path: &Path, _block_size: usize) -> std::io::Result<DirectFile> {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "O_DIRECT is not supported on this target",
            ))
        }
    }

    impl std::io::Read for DirectFile {
        fn read(&mut self, _out: &mut [u8]) -> std::io::Result<usize> {
            Ok(0) // unreachable: the stub is never constructed
        }
    }
}

pub(crate) use direct::DirectFile;

/// A synchronously-read physical file: buffered (the default) or
/// `O_DIRECT`. This is what the prefetch worker takes ownership of when
/// overlapped reads are on — prefetch composes with either open mode.
#[derive(Debug)]
pub(crate) enum PhysicalFile {
    /// A plain page-cached file.
    Buffered(File),
    /// An `O_DIRECT` file staging through an aligned buffer.
    Direct(DirectFile),
}

impl Read for PhysicalFile {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        match self {
            PhysicalFile::Buffered(f) => f.read(out),
            PhysicalFile::Direct(f) => f.read(out),
        }
    }
}

/// Where a [`BlockReader`]'s bytes come from: a file read synchronously on
/// the consuming thread, or a prefetch worker delivering blocks over a
/// bounded channel. Either way the bytes flow through the same stack —
/// physical file, fault-injection wrapper, v2 frame decoder — so checksum
/// verification and transient-error retry happen beneath the block buffer
/// on whichever thread issues the reads.
// One `Source` exists per reader and is never stored in bulk, so the size
// spread between the variants costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Source {
    Sync(crate::frame::FrameStream),
    Prefetch(crate::prefetch::PrefetchReader),
}

/// Shared syscall counter: every `read(2)` a [`BlockReader`] issues is
/// added here. Cloning shares the counter, so one `ReadStats` can aggregate
/// across all cursors a provider hands out (including worker threads).
#[derive(Debug, Clone, Default)]
pub struct ReadStats {
    calls: Arc<AtomicU64>,
    fadvise: Arc<AtomicU64>,
    prefetch_hits: Arc<AtomicU64>,
    prefetch_stalls: Arc<AtomicU64>,
    direct_opens: Arc<AtomicU64>,
    direct_fallbacks: Arc<AtomicU64>,
    file_opens: Arc<AtomicU64>,
    io_retries: Arc<AtomicU64>,
    checksum_failures: Arc<AtomicU64>,
}

impl ReadStats {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        ReadStats::default()
    }

    /// Read calls recorded so far.
    pub fn read_calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// `posix_fadvise` sequential hints delivered so far (one per opened
    /// reader when [`IoOptions::sequential_hint`] is set; zero on targets
    /// without the syscall).
    pub fn fadvise_calls(&self) -> u64 {
        self.fadvise.load(Ordering::Relaxed)
    }

    /// Prefetch fills that found their block already delivered by the
    /// worker — the fill cost the consumer a channel pop, not a wait.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits.load(Ordering::Relaxed)
    }

    /// Prefetch fills that had to block for the worker: the consumer
    /// outran the disk. `hits + stalls` is the number of prefetched
    /// block handovers; a healthy overlap keeps `stalls` well below it.
    pub fn prefetch_stalls(&self) -> u64 {
        self.prefetch_stalls.load(Ordering::Relaxed)
    }

    /// Files successfully opened with `O_DIRECT`.
    pub fn direct_opens(&self) -> u64 {
        self.direct_opens.load(Ordering::Relaxed)
    }

    /// `O_DIRECT` opens refused by the filesystem (or unsupported on this
    /// target) that fell back to a buffered open. Fallback is graceful by
    /// contract: the open never fails because of the direct-I/O knob.
    pub fn direct_fallbacks(&self) -> u64 {
        self.direct_fallbacks.load(Ordering::Relaxed)
    }

    /// Physical file descriptors opened for value data. One per
    /// [`BlockReader::open_path`] call — the shared-stream provider keeps
    /// this at exactly one per file regardless of how many partitions fan
    /// out of it.
    pub fn file_opens(&self) -> u64 {
        self.file_opens.load(Ordering::Relaxed)
    }

    /// Transient I/O faults healed invisibly at the retrying wrapper:
    /// `ErrorKind::Interrupted` retries (real or injected) and absorbed
    /// short reads. A non-zero value means the run degraded gracefully,
    /// not that anything was lost.
    pub fn io_retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Format-v2 checksum mismatches detected (frame, footer, or header
    /// CRC). Each one also surfaced as a `Corrupt` error to the consumer
    /// — this counter exists so a degraded run can report *how much*
    /// corruption it saw.
    pub fn checksum_failures(&self) -> u64 {
        self.checksum_failures.load(Ordering::Relaxed)
    }

    /// Resets the counters to zero (between measured phases).
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.fadvise.store(0, Ordering::Relaxed);
        self.prefetch_hits.store(0, Ordering::Relaxed);
        self.prefetch_stalls.store(0, Ordering::Relaxed);
        self.direct_opens.store(0, Ordering::Relaxed);
        self.direct_fallbacks.store(0, Ordering::Relaxed);
        self.file_opens.store(0, Ordering::Relaxed);
        self.io_retries.store(0, Ordering::Relaxed);
        self.checksum_failures.store(0, Ordering::Relaxed);
    }

    pub(crate) fn bump(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_fadvise(&self) {
        self.fadvise.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_prefetch_hit(&self) {
        self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_prefetch_stall(&self) {
        self.prefetch_stalls.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_direct_open(&self) {
        self.direct_opens.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_direct_fallback(&self) {
        self.direct_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_file_open(&self) {
        self.file_opens.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_io_retry(&self) {
        self.io_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }
}

/// A block-at-a-time reader with an explicit fill/consume API.
///
/// The buffer is filled in block-sized reads; callers inspect
/// [`BlockReader::buffered`] (or slices captured via [`BlockReader::pos`])
/// and advance the consume cursor with [`BlockReader::consume`] — a pure
/// pointer bump. Bytes between the consume cursor and the fill end stay
/// stable until the next fill, which is what lets [`crate::ValueFileReader`]
/// hand out `current()` slices pointing straight into the block.
///
/// Opening a cursor costs one `malloc`, nothing more: the buffer capacity
/// is the block size capped at the file's byte size (so hundreds of small
/// attribute cursors do not each drag in a 256 KiB arena — a measured
/// regression, not a theoretical one), the cap comes from a caller-supplied
/// size hint when available (the export manager records file sizes at write
/// time) with one `fstat` as the fallback, and fills append through
/// [`Read::take`] + `read_to_end` into reserved capacity, so the buffer is
/// never zero-initialised.
#[derive(Debug)]
pub struct BlockReader {
    source: Source,
    /// Filled bytes; `buf[start..]` is valid, unconsumed data.
    buf: Vec<u8>,
    /// Consume cursor.
    start: usize,
    /// Logical block size (= the buffer's reserved capacity).
    block_size: usize,
    /// Current fill granularity: starts at [`INITIAL_READAHEAD`], doubles
    /// per fill, saturates at `block_size`.
    readahead: usize,
    read_calls: u64,
    stats: Option<ReadStats>,
}

impl BlockReader {
    /// Wraps `file` with a block buffer of `options.block_size` (clamped to
    /// [`MIN_BLOCK_SIZE`], capped at the file's length via one `fstat`).
    /// Syscalls are counted locally and, when given, into `stats`.
    ///
    /// Taking a `File` directly, this constructor is always synchronous
    /// and buffered; the `prefetch` / `direct_io` knobs only take effect
    /// through [`BlockReader::open_path`], which controls how the
    /// descriptor is opened.
    pub fn new(file: File, options: &IoOptions, stats: Option<ReadStats>) -> Self {
        let file_len = file.metadata().map(|m| m.len()).unwrap_or(u64::MAX);
        Self::with_size_hint(file, options, stats, file_len)
    }

    /// [`BlockReader::new`] with the file's byte size supplied by the
    /// caller, skipping the `fstat`. Correctness never depends on the
    /// hint, but it should be accurate: a hint that undershoots the real
    /// size caps this reader's block capacity for its whole lifetime, so a
    /// wildly low hint degrades a large file to tiny fills and routes
    /// big records through the growing path.
    pub fn with_size_hint(
        file: File,
        options: &IoOptions,
        stats: Option<ReadStats>,
        file_len: u64,
    ) -> Self {
        Self::from_physical(PhysicalFile::Buffered(file), options, stats, file_len)
    }

    /// Opens `path` honouring every [`IoOptions`] knob: `direct_io`
    /// attempts an `O_DIRECT` open first (falling back, counted, to a
    /// buffered one when refused), and `prefetch` hands the descriptor to
    /// a background worker that keeps the next block in flight. One
    /// physical descriptor is opened per call, counted into
    /// [`ReadStats::file_opens`].
    pub fn open_path(
        path: &std::path::Path,
        options: &IoOptions,
        stats: Option<ReadStats>,
        file_len: Option<u64>,
    ) -> std::io::Result<Self> {
        // lint: allow(hot_alloc) — once per open: attached stats fall back to the options' handle
        let stats = stats.or_else(|| options.stats.clone());
        crate::fault::check_open(path, options.fault.as_ref())?;
        let physical = if options.direct_io {
            match DirectFile::open(path, options.effective_block_size()) {
                Ok(direct) => {
                    if let Some(stats) = &stats {
                        stats.bump_direct_open();
                    }
                    PhysicalFile::Direct(direct)
                }
                Err(_) => {
                    // Graceful fallback by contract: tmpfs and friends
                    // refuse O_DIRECT with EINVAL. Count it and open
                    // buffered instead.
                    if let Some(stats) = &stats {
                        stats.bump_direct_fallback();
                    }
                    PhysicalFile::Buffered(crate::fault::open_file(path)?)
                }
            }
        } else {
            PhysicalFile::Buffered(crate::fault::open_file(path)?)
        };
        let file_len = match file_len {
            Some(len) => len,
            None => std::fs::metadata(path).map(|m| m.len()).unwrap_or(u64::MAX),
        };
        if options.sequential_hint {
            // Page-cache advice only makes sense for buffered descriptors.
            if let PhysicalFile::Buffered(file) = &physical {
                if advise_sequential(file) {
                    if let Some(stats) = &stats {
                        stats.bump_fadvise();
                    }
                }
            }
        }
        if let Some(stats) = &stats {
            stats.bump_file_open();
        }
        let capacity = usize::try_from(file_len)
            .unwrap_or(usize::MAX)
            .clamp(MIN_BLOCK_SIZE, options.effective_block_size());
        let stream = crate::frame::FrameStream::new(
            // lint: allow(hot_alloc) — once per open: the wrapper clones the shared counter handles
            crate::fault::FaultFile::new(physical, path, options.fault.clone(), stats.clone()),
            options.verify_checksums,
            // lint: allow(hot_alloc) — once per open
            stats.clone(),
        );
        let source = if options.prefetch {
            // Move the verified stream to a worker: checksum verification
            // happens on the worker thread, overlapped with consumption;
            // the consumer side only ever touches the channel from here on.
            Source::Prefetch(crate::prefetch::PrefetchReader::spawn(
                stream,
                capacity,
                // lint: allow(hot_alloc) — once per open: the worker needs its own handle on the shared counters
                stats.clone(),
            ))
        } else {
            Source::Sync(stream)
        };
        Ok(BlockReader {
            source,
            buf: Vec::with_capacity(capacity),
            start: 0,
            block_size: capacity,
            readahead: INITIAL_READAHEAD.min(capacity),
            read_calls: 0,
            stats,
        })
    }

    fn from_physical(
        physical: PhysicalFile,
        options: &IoOptions,
        stats: Option<ReadStats>,
        file_len: u64,
    ) -> Self {
        // lint: allow(hot_alloc) — once per open: attached stats fall back to the options' handle
        let stats = stats.or_else(|| options.stats.clone());
        if options.sequential_hint {
            // Page-cache advice only makes sense for buffered descriptors.
            if let PhysicalFile::Buffered(file) = &physical {
                if advise_sequential(file) {
                    if let Some(stats) = &stats {
                        stats.bump_fadvise();
                    }
                }
            }
        }
        if let Some(stats) = &stats {
            stats.bump_file_open();
        }
        let capacity = usize::try_from(file_len)
            .unwrap_or(usize::MAX)
            .clamp(MIN_BLOCK_SIZE, options.effective_block_size());
        // Anonymous descriptors carry no path: fault rules only reach them
        // via a `*` matcher, and error annotation degrades gracefully.
        let stream = crate::frame::FrameStream::new(
            crate::fault::FaultFile::new(
                physical,
                std::path::Path::new(""),
                // lint: allow(hot_alloc) — once per open: the wrapper owns its plan handle
                options.fault.clone(),
                // lint: allow(hot_alloc) — once per open: the wrapper owns its counter handle
                stats.clone(),
            ),
            options.verify_checksums,
            // lint: allow(hot_alloc) — once per open: the decoder owns its counter handle
            stats.clone(),
        );
        BlockReader {
            source: Source::Sync(stream),
            buf: Vec::with_capacity(capacity),
            start: 0,
            block_size: capacity,
            readahead: INITIAL_READAHEAD.min(capacity),
            read_calls: 0,
            stats,
        }
    }

    /// The block capacity (effective block size).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.block_size
    }

    /// Read-request calls issued by this reader so far (one per block
    /// fill, plus the direct reads of the spill path).
    pub fn read_calls(&self) -> u64 {
        self.read_calls
    }

    /// The unconsumed buffered bytes.
    #[inline]
    pub fn buffered(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Current consume-cursor offset into the block. Together with
    /// [`BlockReader::slice`] this lets a caller pin a record's position
    /// *before* consuming past it and re-borrow it later — valid until the
    /// next fill.
    #[inline]
    pub fn pos(&self) -> usize {
        self.start
    }

    /// Bytes `offset..offset + len` of the block. Only meaningful for
    /// ranges captured via [`BlockReader::pos`] since the last fill.
    #[inline]
    pub fn slice(&self, offset: usize, len: usize) -> &[u8] {
        &self.buf[offset..offset + len]
    }

    /// Marks `n` buffered bytes as consumed — no syscall, no copy.
    #[inline]
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.buf.len() - self.start, "consume past fill end");
        self.start += n;
    }

    /// Ensures at least `need` bytes are buffered, topping the block up in
    /// one bulk read; at end of file fewer may remain. Returns the number
    /// of buffered bytes. `need` must not exceed the capacity.
    ///
    /// Filling compacts the unconsumed tail to the front of the block, so
    /// any offsets captured via [`BlockReader::pos`] before this call are
    /// invalidated. The already-buffered case is a branch, kept inline so
    /// per-record callers pay nothing in the steady state.
    #[inline]
    pub fn fill_to(&mut self, need: usize) -> std::io::Result<usize> {
        if self.buf.len() - self.start >= need {
            return Ok(self.buf.len() - self.start);
        }
        self.fill_slow(need)
    }

    /// Swaps the block buffer for `replacement`, returning the previous
    /// buffer for recycling. Only legal when every buffered byte has been
    /// consumed — the replacement's content becomes the buffered bytes and
    /// the consume cursor rewinds to its start. This is the whole-block
    /// handover the prefetch path is built on: adopting the worker's
    /// filled block costs a pointer swap, not a copy.
    pub fn swap_buffer(&mut self, replacement: Vec<u8>) -> Vec<u8> {
        debug_assert!(
            self.start == self.buf.len(),
            "swap_buffer with unconsumed bytes"
        );
        self.start = 0;
        std::mem::replace(&mut self.buf, replacement)
    }

    #[cold]
    fn fill_slow(&mut self, need: usize) -> std::io::Result<usize> {
        debug_assert!(need <= self.block_size, "fill_to beyond block capacity");
        // Block-fill latency histogram; the clock read is gated so a
        // traced-off run pays one relaxed load, nothing more.
        let fill_start = ind_trace::enabled().then(std::time::Instant::now);
        if self.start > 0 {
            let len = self.buf.len();
            self.buf.copy_within(self.start..len, 0);
            self.buf.truncate(len - self.start);
            self.start = 0;
        }
        while self.buf.len() < need {
            // One bulk request per iteration, at the current readahead
            // granularity (but always enough to satisfy `need`). `take` +
            // `read_to_end` appends into the reserved capacity without ever
            // zero-initialising it, and stops exactly at the request
            // boundary, so a fill sized by an accurate hint never pays an
            // extra EOF-probing syscall.
            let want = self
                .readahead
                .max(need - self.buf.len())
                .min(self.block_size - self.buf.len());
            let n = match &mut self.source {
                Source::Sync(file) => {
                    let n = (&mut *file).take(want as u64).read_to_end(&mut self.buf)?;
                    self.read_calls += 1;
                    if let Some(stats) = &self.stats {
                        stats.bump();
                    }
                    self.readahead = (self.readahead * 2).min(self.block_size);
                    n
                }
                // The worker paces its own readahead and counts its own
                // syscalls into the shared stats; an empty buffer adopts
                // the worker's whole block via swap.
                Source::Prefetch(p) => p.fill(&mut self.buf, want)?,
            };
            if n == 0 {
                break; // EOF: caller decides whether short is fatal
            }
        }
        if let Some(start) = fill_start {
            ind_trace::BLOCK_FILL_NANOS.record(start.elapsed().as_nanos() as u64);
        }
        Ok(self.buf.len() - self.start)
    }

    /// Buffers exactly `need` bytes even when `need` exceeds the block
    /// size, growing the block to hold one oversized record; short only at
    /// end of file. This is the spill path for records that do not fit a
    /// block — the grown storage is reused (and shrunk back to one block's
    /// worth of live data by the next compaction), so even oversized
    /// records are served zero-copy out of the block.
    pub fn fill_exact_growing(&mut self, need: usize) -> std::io::Result<usize> {
        if self.buf.len() - self.start >= need {
            return Ok(self.buf.len() - self.start);
        }
        if self.start > 0 {
            let len = self.buf.len();
            self.buf.copy_within(self.start..len, 0);
            self.buf.truncate(len - self.start);
            self.start = 0;
        }
        self.buf.reserve(need - self.buf.len());
        while self.buf.len() < need {
            let want = need - self.buf.len();
            let n = match &mut self.source {
                Source::Sync(file) => {
                    let n = (&mut *file).take(want as u64).read_to_end(&mut self.buf)?;
                    self.read_calls += 1;
                    if let Some(stats) = &self.stats {
                        stats.bump();
                    }
                    n
                }
                Source::Prefetch(p) => p.fill(&mut self.buf, want)?,
            };
            if n == 0 {
                break; // EOF: caller decides whether short is fatal
            }
        }
        Ok(self.buf.len() - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_testkit::TempDir;

    fn reader(data: &[u8], block_size: usize, stats: Option<ReadStats>) -> BlockReader {
        let dir = TempDir::new("blockreader");
        let path = dir.join("data.bin");
        std::fs::write(&path, data).unwrap();
        // The TempDir is removed when it drops, but the opened File handle
        // stays valid on Unix.
        BlockReader::new(
            std::fs::File::open(&path).unwrap(),
            &IoOptions::with_block_size(block_size),
            stats,
        )
    }

    #[test]
    fn block_size_is_clamped_to_minimum() {
        let r = reader(b"0123456789", 1, None);
        assert_eq!(r.capacity(), MIN_BLOCK_SIZE);
        assert_eq!(IoOptions::with_block_size(0).effective_block_size(), 32);
        assert_eq!(IoOptions::default().effective_block_size(), 256 * 1024);
    }

    #[test]
    fn fill_consume_round_trip() {
        let mut r = reader(b"abcdefghij", 16, None);
        assert_eq!(r.fill_to(4).unwrap(), 10, "one read grabs the whole file");
        assert_eq!(&r.buffered()[..4], b"abcd");
        r.consume(4);
        assert_eq!(r.buffered(), b"efghij");
        r.consume(6);
        assert_eq!(r.fill_to(1).unwrap(), 0, "EOF leaves the buffer empty");
        assert_eq!(r.read_calls(), 2, "initial fill + EOF probe");
    }

    #[test]
    fn fill_compacts_and_refills_across_blocks() {
        let data: Vec<u8> = (0..64u8).collect();
        let mut r = reader(&data, 16, None);
        let mut seen = Vec::new();
        loop {
            let avail = r.fill_to(3).unwrap();
            if avail == 0 {
                break;
            }
            let take = avail.min(3);
            seen.extend_from_slice(&r.buffered()[..take]);
            r.consume(take);
        }
        assert_eq!(seen, data);
    }

    #[test]
    fn bigger_blocks_issue_fewer_reads() {
        let data = vec![7u8; 4096];
        let mut calls = Vec::new();
        for block in [16, 64, 1024, 8192] {
            let mut r = reader(&data, block, None);
            let mut total = 0usize;
            loop {
                let avail = r.fill_to(1).unwrap();
                if avail == 0 {
                    break;
                }
                total += avail;
                r.consume(avail);
            }
            assert_eq!(total, data.len());
            calls.push(r.read_calls());
        }
        assert!(
            calls.windows(2).all(|w| w[0] >= w[1]),
            "read calls must not grow with block size: {calls:?}"
        );
        assert!(
            calls[0] >= 10 * calls[3],
            "4 KiB over 16 B blocks needs many reads vs one 8 KiB block: {calls:?}"
        );
    }

    #[test]
    fn shared_stats_aggregate_across_readers() {
        let stats = ReadStats::new();
        let data = vec![1u8; 100];
        for _ in 0..3 {
            let mut r = reader(&data, 64, Some(stats.clone()));
            while r.fill_to(1).unwrap() > 0 {
                let n = r.buffered().len();
                r.consume(n);
            }
        }
        assert!(stats.read_calls() >= 3, "each reader fills at least once");
        let before = stats.read_calls();
        stats.reset();
        assert_eq!(stats.read_calls(), 0);
        assert!(before > 0);
    }

    #[test]
    fn sequential_hint_is_counted_and_changes_nothing_else() {
        let data: Vec<u8> = (0..200u8).collect();
        let stats = ReadStats::new();
        let dir = TempDir::new("blockreader-fadvise");
        let path = dir.join("data.bin");
        std::fs::write(&path, &data).unwrap();
        let open = |hint: bool, stats: ReadStats| {
            BlockReader::new(
                std::fs::File::open(&path).unwrap(),
                &IoOptions::with_block_size(64).sequential(hint),
                Some(stats),
            )
        };

        // Hint off: counter stays zero.
        let mut r = open(false, stats.clone());
        let mut plain = Vec::new();
        while r.fill_to(1).unwrap() > 0 {
            plain.extend_from_slice(r.buffered());
            let n = r.buffered().len();
            r.consume(n);
        }
        assert_eq!(stats.fadvise_calls(), 0);

        // Hint on: exactly one hint per open on Linux, none elsewhere, and
        // the bytes read are identical either way.
        let mut r = open(true, stats.clone());
        let mut hinted = Vec::new();
        while r.fill_to(1).unwrap() > 0 {
            hinted.extend_from_slice(r.buffered());
            let n = r.buffered().len();
            r.consume(n);
        }
        assert_eq!(hinted, plain);
        assert_eq!(hinted, data);
        if cfg!(all(target_os = "linux", target_pointer_width = "64")) {
            assert_eq!(stats.fadvise_calls(), 1);
            let before = stats.read_calls();
            stats.reset();
            assert_eq!(stats.fadvise_calls(), 0, "reset clears the hint counter");
            assert!(before > 0);
        } else {
            assert_eq!(stats.fadvise_calls(), 0);
        }
    }

    #[test]
    fn growing_fill_crosses_the_block_and_reports_eof_short() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut r = reader(&data, 16, None);
        r.fill_to(10).unwrap();
        r.consume(2);
        // A 90-byte need exceeds the 16-byte block: the buffer grows and
        // serves the whole range in place.
        assert_eq!(r.fill_exact_growing(90).unwrap(), 90);
        assert_eq!(r.buffered(), &data[2..92]);
        r.consume(90);
        // Asking for more than the file holds comes back short, not OK.
        assert_eq!(r.fill_exact_growing(20).unwrap(), 8);
        assert_eq!(r.buffered(), &data[92..]);
    }

    #[test]
    fn direct_io_reads_identically_or_falls_back() {
        let dir = TempDir::new("blockreader-direct");
        let path = dir.join("data.bin");
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        let stats = ReadStats::new();
        let mut r = BlockReader::open_path(
            &path,
            &IoOptions::with_block_size(4096).direct(true),
            Some(stats.clone()),
            None,
        )
        .unwrap();
        let mut out = Vec::new();
        while r.fill_to(1).unwrap() > 0 {
            out.extend_from_slice(r.buffered());
            let n = r.buffered().len();
            r.consume(n);
        }
        assert_eq!(out, data, "direct and buffered bytes are identical");
        assert_eq!(
            stats.direct_opens() + stats.direct_fallbacks(),
            1,
            "the open lands in exactly one of the two counters"
        );
        assert_eq!(stats.file_opens(), 1);
    }

    #[test]
    fn swap_buffer_adopts_a_prefilled_block() {
        let mut r = reader(b"abcd", 16, None);
        r.fill_to(4).unwrap();
        r.consume(4);
        let spent = r.swap_buffer(vec![9, 9, 9]);
        assert!(spent.capacity() >= 4, "the old block comes back for reuse");
        assert_eq!(r.buffered(), &[9, 9, 9]);
        r.consume(3);
    }

    #[test]
    fn pinned_slices_survive_until_the_next_fill() {
        let mut r = reader(b"aaaabbbbccccdddd", 16, None);
        r.fill_to(16).unwrap();
        let pos = r.pos();
        r.consume(8);
        assert_eq!(r.slice(pos, 4), b"aaaa", "consumed bytes stay readable");
        assert_eq!(r.slice(pos + 4, 4), b"bbbb");
    }
}
