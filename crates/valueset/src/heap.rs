//! A lazily-keyed binary min-heap over dense `u32` slots.
//!
//! The heap stores nothing but slot ids; ordering is evaluated at sift
//! time by a caller-supplied comparator, so keys living in external state
//! (cursor buffers, arena slices) are compared **in place** and never
//! copied onto the heap. This is the merge-loop shape shared by the
//! zero-allocation SPIDER engine (slots = attribute cursors) and the
//! external sorter's spill merge (slots = run sources).
//!
//! The comparator must be a strict weak ordering over the currently-live
//! slots; callers make it total and deterministic by tie-breaking on the
//! slot id itself.

/// The first 8 bytes of `v`, zero-padded, as a big-endian integer — the
/// comparator fast path shared by every [`LazyMinHeap`] merge loop.
///
/// For two slices whose prefixes *differ*, comparing the prefixes as
/// `u64`s orders them exactly like `a.cmp(b)`: the first differing
/// position is inside the window, and zero-padding a short slice compares
/// like the proper prefix it is. Any tie — including one slice ending
/// inside the window — keeps the prefixes equal, so callers fall through
/// to the full slice comparison and ordering is preserved bit for bit.
#[inline]
pub fn key_prefix64(v: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = v.len().min(8);
    buf[..n].copy_from_slice(&v[..n]);
    u64::from_be_bytes(buf)
}

/// Binary min-heap over `u32` slots, keyed lazily by `less(a, b)`.
pub struct LazyMinHeap {
    slots: Vec<u32>,
}

impl LazyMinHeap {
    /// An empty heap with room for `n` slots (pushes within the capacity
    /// never allocate).
    pub fn with_capacity(n: usize) -> Self {
        LazyMinHeap {
            slots: Vec::with_capacity(n),
        }
    }

    /// The minimum slot, if any, without removing it.
    pub fn peek(&self) -> Option<u32> {
        self.slots.first().copied()
    }

    /// Inserts `slot`, sifting it up under `less`.
    pub fn push(&mut self, slot: u32, less: impl Fn(u32, u32) -> bool) {
        self.slots.push(slot);
        let mut i = self.slots.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if less(self.slots[i], self.slots[parent]) {
                self.slots.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// Restores heap order after the root slot's key changed in place —
    /// the k-way merge's replace-top, cheaper than pop + push.
    pub fn sift_root(&mut self, less: impl Fn(u32, u32) -> bool) {
        let mut i = 0;
        loop {
            let left = 2 * i + 1;
            if left >= self.slots.len() {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < self.slots.len() && less(self.slots[right], self.slots[left]) {
                smallest = right;
            }
            if less(self.slots[smallest], self.slots[i]) {
                self.slots.swap(i, smallest);
                i = smallest;
            } else {
                break;
            }
        }
    }

    /// Removes and returns the minimum slot.
    pub fn pop(&mut self, less: impl Fn(u32, u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let last = self.slots.len() - 1;
        self.slots.swap(0, last);
        let popped = self.slots.pop();
        self.sift_root(less);
        popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the heap keyed by an external slice — the in-place-key usage
    /// both merge engines rely on.
    #[test]
    fn drains_in_key_order_with_slot_tie_break() {
        let keys: &[&[u8]] = &[b"m", b"a", b"z", b"a", b""];
        let less = |a: u32, b: u32| match keys[a as usize].cmp(keys[b as usize]) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a < b,
        };
        let mut heap = LazyMinHeap::with_capacity(keys.len());
        for slot in 0..keys.len() as u32 {
            heap.push(slot, less);
        }
        let mut drained = Vec::new();
        while let Some(slot) = heap.pop(less) {
            drained.push(slot);
        }
        // Sorted by key, ties by slot id: "" < "a"(1) < "a"(3) < "m" < "z".
        assert_eq!(drained, vec![4, 1, 3, 0, 2]);
    }

    #[test]
    fn sift_root_reorders_after_in_place_key_change() {
        let keys = std::cell::RefCell::new(vec![1u32, 5, 3]);
        let less = |a: u32, b: u32| {
            let k = keys.borrow();
            (k[a as usize], a) < (k[b as usize], b)
        };
        let mut heap = LazyMinHeap::with_capacity(3);
        for slot in 0..3 {
            heap.push(slot, less);
        }
        assert_eq!(heap.peek(), Some(0));
        keys.borrow_mut()[0] = 9; // the root's key advanced past the others
        heap.sift_root(less);
        assert_eq!(heap.peek(), Some(2));
    }
}
