//! Whole-database export: one sorted value file per attribute, plus the
//! per-attribute metadata (cardinalities, min/max) that candidate
//! generation and the pretests consume.

use crate::block::{IoOptions, ReadStats};
use crate::budget::FileBudget;
use crate::cursor::{ValueCursor, ValueSetProvider};
use crate::error::Result;
use crate::external_sort::{ExternalSorter, SortOptions};
use crate::extract::{extract_composite_with_sorter, extract_with_sorter};
use crate::format::ValueFileReader;
use crate::manifest::{hash_column, Manifest, ManifestEntry};
use ind_storage::{DataType, Database, QualifiedName};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// How [`ExportedDatabase::export`] treats a workdir that already holds
/// value files from an earlier (possibly interrupted) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumeMode {
    /// Rewrite every attribute from scratch (the default).
    #[default]
    Off,
    /// Sweep orphaned `.tmp` files, validate every manifest entry with a
    /// cheap header + footer read ([`crate::format`]'s self-verifying v2
    /// seal), and re-export only attributes that are missing, torn, or
    /// stale against the source data's content hash.
    Reuse,
    /// Like [`ResumeMode::Reuse`], but each reused file is fully drained
    /// through a checksum-verifying reader (every frame CRC walked) —
    /// `--resume verify`.
    Verify,
}

/// Recovers a poisoned manifest mutex: the manifest is plain data, valid
/// regardless of a panicking holder.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Options controlling a database export.
#[derive(Debug, Clone)]
pub struct ExportOptions {
    /// Sorter tuning: memory budget before spilling, plus the I/O block
    /// size ([`SortOptions::io`]) — the single knob governing every value
    /// file this export writes (spill runs included) and every cursor the
    /// resulting [`ExportedDatabase`] opens over them.
    pub sort: SortOptions,
    /// Worker threads for the per-attribute extract/sort/write pipeline
    /// (attribute extractions are independent). `0` and `1` both mean
    /// sequential.
    pub threads: usize,
    /// Quarantine-and-continue: when an attribute's extraction fails
    /// (unreadable column, `ENOSPC` on its value file, …), record the
    /// failure in [`ExportedDatabase::failed_attributes`] and keep
    /// exporting the rest instead of aborting the whole export. The
    /// quarantined attribute keeps its id (dense indexing is preserved)
    /// but opening it yields the original error.
    pub keep_going: bool,
    /// Resume an interrupted export from its workdir (see [`ResumeMode`]).
    pub resume: ResumeMode,
}

impl Default for ExportOptions {
    fn default() -> Self {
        ExportOptions {
            sort: SortOptions::default(),
            threads: 1,
            keep_going: false,
            resume: ResumeMode::Off,
        }
    }
}

impl ExportOptions {
    /// Default options with `threads` extraction workers.
    pub fn with_threads(threads: usize) -> Self {
        ExportOptions {
            threads,
            ..Default::default()
        }
    }

    /// Default options with the given I/O block size for writers and
    /// readers alike.
    pub fn with_block_size(block_size: usize) -> Self {
        let mut options = ExportOptions::default();
        options.sort.io = IoOptions::with_block_size(block_size);
        options
    }

    /// Default options with the given sorter memory budget (bytes).
    pub fn with_memory_budget(memory_budget_bytes: usize) -> Self {
        ExportOptions {
            sort: SortOptions::with_memory_budget(memory_budget_bytes),
            ..Default::default()
        }
    }

    /// Builder toggle for overlapped prefetch on every cursor the export
    /// (and the resulting database) opens. See [`IoOptions::prefetch`].
    pub fn prefetched(mut self, prefetch: bool) -> Self {
        self.sort.io.prefetch = prefetch;
        self
    }

    /// Builder toggle for `O_DIRECT` opens (graceful fallback included).
    /// See [`IoOptions::direct_io`].
    pub fn direct(mut self, direct_io: bool) -> Self {
        self.sort.io.direct_io = direct_io;
        self
    }

    /// Builder toggle for quarantine-and-continue (see
    /// [`ExportOptions::keep_going`]).
    pub fn keep_going(mut self, keep_going: bool) -> Self {
        self.keep_going = keep_going;
        self
    }

    /// Builder for the resume mode (see [`ResumeMode`]).
    pub fn resume(mut self, mode: ResumeMode) -> Self {
        self.resume = mode;
        self
    }

    /// Attaches a cancellation token to every writer and cursor of this
    /// export (see [`crate::CancelToken`]).
    pub fn with_cancel(mut self, token: crate::cancel::CancelToken) -> Self {
        self.sort.io.cancel = Some(token);
        self
    }

    /// The I/O options every value file of this export uses.
    pub fn io(&self) -> &IoOptions {
        &self.sort.io
    }
}

/// One attribute quarantined by a keep-going export: its id and name stay
/// addressable, the error explains why its value file is unusable.
#[derive(Debug, Clone)]
pub struct FailedAttribute {
    /// The quarantined attribute's dense id (its slot in
    /// [`ExportedDatabase::attributes`] holds zeroed metadata).
    pub id: u32,
    /// Qualified `table.column` name.
    pub name: QualifiedName,
    /// The failure, stringified with its file/frame context.
    pub error: String,
}

/// Metadata for one exported attribute.
///
/// `distinct`, `non_null`, `min`, and `max` are byproducts of the sorted
/// export — the paper gets them for free from the RDBMS, we get them for
/// free from the sorter.
#[derive(Debug, Clone)]
pub struct ExportedAttribute {
    /// Dense attribute id; index into [`ExportedDatabase::attributes`].
    pub id: u32,
    /// Qualified `table.column` name.
    pub name: QualifiedName,
    /// Declared column type (LOB columns are exported but never become
    /// dependent attributes).
    pub data_type: DataType,
    /// Rows in the owning table.
    pub rows: u64,
    /// Non-null occurrences, `|v(a)|`.
    pub non_null: u64,
    /// Distinct values, `|s(a)|`.
    pub distinct: u64,
    /// Smallest canonical value, if any.
    pub min: Option<Vec<u8>>,
    /// Largest canonical value, if any.
    pub max: Option<Vec<u8>>,
    /// Value file backing this attribute.
    pub path: PathBuf,
    /// Byte size of that file, recorded at write time so cursors can size
    /// their block buffers without an `fstat` per open.
    pub file_bytes: u64,
}

impl ExportedAttribute {
    /// "Non-empty" in the paper's sense.
    pub fn is_non_empty(&self) -> bool {
        self.non_null > 0
    }

    /// Data-driven uniqueness (every non-null value occurs once).
    pub fn is_unique(&self) -> bool {
        self.non_null > 0 && self.distinct == self.non_null
    }
}

/// A database exported to sorted value files under one directory.
#[derive(Debug)]
pub struct ExportedDatabase {
    dir: PathBuf,
    attributes: Vec<ExportedAttribute>,
    /// Attributes quarantined by a keep-going export, by id order.
    failed: Vec<FailedAttribute>,
    budget: FileBudget,
    io: IoOptions,
    read_stats: ReadStats,
    /// Spill-merge comparator split summed over every attribute sort (see
    /// [`crate::SortStats::key_compares`]).
    key_compares: u64,
    memcmp_compares: u64,
    /// Resume accounting: attributes reused from the manifest, attributes
    /// re-exported, and orphaned `.tmp` files swept.
    exports_reused: u64,
    exports_redone: u64,
    orphans_swept: u64,
}

/// Full validation for `--resume verify`: drain the whole file through a
/// checksum-verifying reader (every frame CRC checked against the chain)
/// and confirm the record count the manifest promised.
fn deep_verify(path: &Path, entry: &ManifestEntry, io: &IoOptions) -> Result<()> {
    let mut io = io.clone();
    io.verify_checksums = true;
    let mut reader = ValueFileReader::open_with_options(path, &io)?;
    let mut records = 0u64;
    while reader.advance()? {
        records += 1;
    }
    if records == entry.records {
        Ok(())
    } else {
        Err(crate::error::ValueSetError::Corrupt {
            context: path.display().to_string(),
            detail: format!("manifest records {}, file drained {records}", entry.records),
        })
    }
}

impl ExportedDatabase {
    /// Exports every column of `db` into `dir` (created if missing).
    /// Attribute ids follow [`Database::attributes`] order, so they are
    /// deterministic across runs — including under
    /// [`ExportOptions::threads`] parallelism, which only reorders the
    /// *work*, not the ids or file names.
    pub fn export(db: &Database, dir: &Path, options: &ExportOptions) -> Result<Self> {
        let _span = ind_trace::start(ind_trace::EXPORT);
        let export_parent = ind_trace::current_parent();
        std::fs::create_dir_all(dir)?;
        let spill_dir = dir.join("spill");
        // One shared counter handle for the whole lifetime of this export:
        // writers count their retried writes into it during the export
        // itself, cursors count reads/retries/checksums afterwards.
        let mut sort = options.sort.clone();
        let read_stats = sort.io.stats.get_or_insert_with(ReadStats::new).clone();

        // Collect the per-attribute work list up front so workers can share
        // it by index.
        struct Job<'db> {
            id: u32,
            name: QualifiedName,
            data_type: ind_storage::DataType,
            rows: u64,
            column: &'db [ind_storage::Value],
            path: PathBuf,
        }
        #[allow(unused_mut)]
        let mut jobs: Vec<Job<'_>> = Vec::with_capacity(db.attribute_count());
        let mut id = 0u32;
        for table in db.tables() {
            for (_, col_schema, col_data) in table.iter_columns() {
                jobs.push(Job {
                    id,
                    name: QualifiedName::new(table.name(), col_schema.name.clone()),
                    data_type: col_schema.data_type,
                    rows: table.row_count() as u64,
                    column: col_data,
                    path: dir.join(format!("attr-{id:05}.indv")),
                });
                id += 1;
            }
        }

        // A manifest entry vouches for a file only when every identity
        // field matches the live schema, the SOURCE column still hashes to
        // the recorded content hash, and the file itself passes its seal
        // (cheap header+footer read, or a full frame-CRC drain under
        // [`ResumeMode::Verify`]).
        let reusable = |job: &Job<'_>, entry: &ManifestEntry| -> bool {
            if entry.id != job.id
                || entry.table != job.name.table
                || entry.column != job.name.column
                || entry.data_type != job.data_type
                || entry.rows != job.rows
                || entry.format_version != crate::frame::V2_VERSION
                || entry.source_hash != hash_column(job.column)
            {
                return false;
            }
            match options.resume {
                ResumeMode::Verify => deep_verify(&job.path, entry, &sort.io).is_ok(),
                _ => crate::format::verify_file_quick(
                    &job.path,
                    entry.file_bytes,
                    entry.records,
                    sort.io.fault.as_ref(),
                )
                .is_ok(),
            }
        };

        // Resume sweep: reclaim what an interrupted run left behind.
        // Orphaned `.tmp` stages are deleted (the atomic-rename protocol
        // guarantees a file under its FINAL name is always complete, so a
        // `.tmp` is garbage by construction), stale spill runs are dropped,
        // and every manifest entry whose source column still hashes the
        // same and whose file passes its self-verifying seal is reused
        // without re-sorting a single value.
        let mut attributes: Vec<ExportedAttribute> = Vec::with_capacity(jobs.len());
        let mut exports_reused = 0u64;
        let mut exports_redone = 0u64;
        let mut orphans_swept = 0u64;
        let mut manifest = Manifest::new();
        if options.resume != ResumeMode::Off {
            let _scan = ind_trace::start_under(ind_trace::RESUME_SCAN, 0, export_parent);
            if let Ok(listing) = std::fs::read_dir(dir) {
                for entry in listing.flatten() {
                    let name = entry.file_name();
                    if name.to_string_lossy().ends_with(".tmp") {
                        // lint: allow(swallowed_result) — a sweep race (file already gone) is success
                        let _ = std::fs::remove_file(entry.path());
                        orphans_swept += 1;
                    }
                }
            }
            // lint: allow(swallowed_result) — spill runs from a dead run are garbage; absence is success
            let _ = std::fs::remove_dir_all(&spill_dir);
            manifest = Manifest::load(dir).unwrap_or_default();
            let mut pending = Vec::with_capacity(jobs.len());
            for job in jobs {
                let file = job
                    .path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                match manifest.get(&file) {
                    Some(entry) if reusable(&job, entry) => {
                        attributes.push(ExportedAttribute {
                            id: job.id,
                            name: job.name.clone(),
                            data_type: job.data_type,
                            rows: job.rows,
                            non_null: entry.non_null,
                            distinct: entry.distinct,
                            min: entry.min.clone(),
                            max: entry.max.clone(),
                            path: job.path.clone(),
                            file_bytes: entry.file_bytes,
                        });
                        exports_reused += 1;
                    }
                    _ => {
                        exports_redone += 1;
                        pending.push(job);
                    }
                }
            }
            // Entries for attributes no longer in the schema are pruned so
            // the stored manifest always mirrors the live export set.
            let live: Vec<String> = pending
                .iter()
                .map(|j| {
                    j.path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default()
                })
                .chain(attributes.iter().map(|a| {
                    a.path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default()
                }))
                .collect();
            let stale: Vec<String> = manifest
                .entries()
                .iter()
                .filter(|e| !live.contains(&e.file))
                .map(|e| e.file.clone())
                .collect();
            for file in stale {
                manifest.remove(&file);
            }
            jobs = pending;
        }
        let manifest = Mutex::new(manifest);

        // Each worker owns ONE sorter for its whole share of the export:
        // after the first attribute the arena and index are warm, so every
        // further column sorts with zero sorter allocations.
        // Comparator-split totals, summed across workers as jobs finish.
        let key_compares = std::sync::atomic::AtomicU64::new(0);
        let memcmp_compares = std::sync::atomic::AtomicU64::new(0);
        let run_job = |job: &Job<'_>, sorter: &mut ExternalSorter| -> Result<ExportedAttribute> {
            // Parent the per-attribute span under the export span even from
            // worker threads (thread-local parenting stops at the spawn).
            let _span = ind_trace::start_under(ind_trace::SORT, u64::from(job.id), export_parent);
            if let Some(cancel) = &sort.io.cancel {
                cancel.check("export")?;
            }
            let stats = extract_with_sorter(job.column, &job.path, sorter)?;
            key_compares.fetch_add(stats.key_compares, std::sync::atomic::Ordering::Relaxed);
            memcmp_compares.fetch_add(stats.memcmp_compares, std::sync::atomic::Ordering::Relaxed);
            ind_trace::add_counter(ind_trace::Counter::AttributesExported, 1);
            let attr = ExportedAttribute {
                id: job.id,
                name: job.name.clone(),
                data_type: job.data_type,
                rows: job.rows,
                non_null: stats.pushed,
                distinct: stats.distinct,
                min: stats.min,
                max: stats.max,
                path: job.path.clone(),
                file_bytes: stats.file_bytes,
            };
            // Publish the manifest entry IMMEDIATELY after the attribute's
            // rename lands: a crash between two attributes then loses at
            // most the in-flight one, and `--resume` reuses the rest.
            {
                let mut manifest = lock(&manifest);
                manifest.upsert(ManifestEntry {
                    file: job
                        .path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default(),
                    id: job.id,
                    table: job.name.table.clone(),
                    column: job.name.column.clone(),
                    data_type: job.data_type,
                    rows: job.rows,
                    non_null: attr.non_null,
                    distinct: attr.distinct,
                    min: attr.min.clone(),
                    max: attr.max.clone(),
                    file_bytes: attr.file_bytes,
                    records: attr.distinct,
                    format_version: crate::frame::V2_VERSION,
                    source_hash: hash_column(job.column),
                });
                manifest.store(dir, sort.io.fault.as_ref())?;
            }
            Ok(attr)
        };

        // Quarantine path for keep-going exports: reset the sorter (a
        // mid-extraction failure leaves buffered values and spill runs),
        // drop the partial value file, and keep the attribute's id slot
        // with zeroed metadata so dense indexing survives.
        let quarantine = |job: &Job<'_>,
                          sorter: &mut ExternalSorter,
                          e: crate::error::ValueSetError|
         -> (ExportedAttribute, FailedAttribute) {
            sorter.reset();
            // lint: allow(swallowed_result) — the attribute is already quarantined; its partial file is best-effort garbage
            let _ = std::fs::remove_file(&job.path);
            // lint: allow(swallowed_result) — atomic creation stages at `<path>.tmp`; sweep it with the same shrug
            let _ = std::fs::remove_file(crate::format::tmp_path(&job.path));
            if let Some(file) = job.path.file_name() {
                lock(&manifest).remove(&file.to_string_lossy());
            }
            (
                ExportedAttribute {
                    id: job.id,
                    name: job.name.clone(),
                    data_type: job.data_type,
                    rows: job.rows,
                    non_null: 0,
                    distinct: 0,
                    min: None,
                    max: None,
                    path: job.path.clone(),
                    file_bytes: 0,
                },
                FailedAttribute {
                    id: job.id,
                    name: job.name.clone(),
                    error: e.to_string(),
                },
            )
        };

        let threads = options.threads.max(1).min(jobs.len().max(1));
        let mut failed: Vec<FailedAttribute> = Vec::new();
        if threads <= 1 {
            let mut sorter = ExternalSorter::new(&spill_dir, sort.clone())?;
            for job in &jobs {
                match run_job(job, &mut sorter) {
                    Ok(attr) => attributes.push(attr),
                    // Cancellation is a STOP, not a data fault: quarantining
                    // it would record healthy attributes as failed.
                    Err(e)
                        if options.keep_going
                            && !matches!(e, crate::error::ValueSetError::Cancelled { .. }) =>
                    {
                        let (attr, failure) = quarantine(job, &mut sorter, e);
                        attributes.push(attr);
                        failed.push(failure);
                    }
                    Err(e) => return Err(e),
                }
            }
        } else {
            // Workers claim jobs one at a time off a shared atomic index —
            // fixed chunks would let a few huge columns idle the other
            // workers. One spill subdirectory per worker: sorter spill runs
            // are named by ordinal and would collide across concurrent
            // extractions.
            type WorkerYield = (Vec<ExportedAttribute>, Vec<FailedAttribute>);
            let next = std::sync::atomic::AtomicUsize::new(0);
            let results: Vec<Result<WorkerYield>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|worker| {
                        let spill = spill_dir.join(format!("worker-{worker:02}"));
                        let (next, jobs, run_job, quarantine, sort) =
                            (&next, &jobs, &run_job, &quarantine, &sort);
                        scope.spawn(move |_| -> Result<WorkerYield> {
                            let mut sorter = ExternalSorter::new(&spill, sort.clone())?;
                            let mut done = Vec::new();
                            let mut lost = Vec::new();
                            loop {
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(job) = jobs.get(i) else {
                                    return Ok((done, lost));
                                };
                                match run_job(job, &mut sorter) {
                                    Ok(attr) => done.push(attr),
                                    Err(e)
                                        if options.keep_going
                                            && !matches!(
                                                e,
                                                crate::error::ValueSetError::Cancelled { .. }
                                            ) =>
                                    {
                                        let (attr, failure) = quarantine(job, &mut sorter, e);
                                        done.push(attr);
                                        lost.push(failure);
                                    }
                                    Err(e) => return Err(e),
                                }
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // lint: allow(no_unwrap) — re-raising a worker panic on the coordinating thread is the correct escalation
                    .map(|h| h.join().expect("export worker panicked"))
                    .collect()
            })
            // lint: allow(no_unwrap) — crossbeam scope errs only when a child panicked; propagate the panic
            .expect("export scope panicked");
            for r in results {
                let (done, lost) = r?;
                attributes.extend(done);
                failed.extend(lost);
            }
            failed.sort_by_key(|f| f.id);
        }
        // Reused and freshly exported attributes interleave in arbitrary
        // order; dense-by-id is the contract either way.
        attributes.sort_by_key(|a| a.id);

        // lint: allow(swallowed_result) — best-effort cleanup of an empty spill dir; the export already succeeded
        let _ = std::fs::remove_dir_all(&spill_dir); // empty after successful export
        Ok(ExportedDatabase {
            dir: dir.to_path_buf(),
            attributes,
            failed,
            budget: FileBudget::unlimited(),
            io: sort.io.clone(),
            read_stats,
            key_compares: key_compares.into_inner(),
            memcmp_compares: memcmp_compares.into_inner(),
            exports_reused,
            exports_redone,
            orphans_swept,
        })
    }

    /// Attributes quarantined during a keep-going export (empty unless
    /// [`ExportOptions::keep_going`] was set and something failed).
    pub fn failed_attributes(&self) -> &[FailedAttribute] {
        &self.failed
    }

    /// True when `id` was quarantined during export: its metadata slot is
    /// zeroed and [`ExportedDatabase::open`] refuses it.
    pub fn is_quarantined(&self, id: u32) -> bool {
        self.failed.iter().any(|f| f.id == id)
    }

    /// All exported attributes, indexed by id.
    pub fn attributes(&self) -> &[ExportedAttribute] {
        &self.attributes
    }

    /// One attribute by id.
    pub fn attribute(&self, id: u32) -> Option<&ExportedAttribute> {
        self.attributes.get(id as usize)
    }

    /// Export directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Installs an open-file budget governing all subsequently opened
    /// cursors. Models the operating-system limit from Sec. 4.2.
    pub fn set_file_budget(&mut self, budget: FileBudget) {
        self.budget = budget;
    }

    /// The current budget (shared counter).
    pub fn file_budget(&self) -> &FileBudget {
        &self.budget
    }

    /// The I/O options every cursor opened from this export uses.
    pub fn io_options(&self) -> &IoOptions {
        &self.io
    }

    /// Overrides the I/O options for subsequently opened cursors.
    pub fn set_io_options(&mut self, io: IoOptions) {
        self.io = io;
    }

    /// Total `read(2)` calls issued by every cursor this export has opened
    /// (including ones on worker threads). The disk-side analogue of the
    /// bench harness's allocation counters.
    pub fn read_calls(&self) -> u64 {
        self.read_stats.read_calls()
    }

    /// Resets the shared read-call counter (between measured phases).
    pub fn reset_read_calls(&self) {
        self.read_stats.reset();
    }

    /// Sequential-access hints delivered by opened cursors (see
    /// [`IoOptions::sequential_hint`]).
    pub fn fadvise_calls(&self) -> u64 {
        self.read_stats.fadvise_calls()
    }

    /// Prefetch fills served from an already-delivered block (see
    /// [`ReadStats::prefetch_hits`]).
    pub fn prefetch_hits(&self) -> u64 {
        self.read_stats.prefetch_hits()
    }

    /// Prefetch fills that had to wait for the worker (see
    /// [`ReadStats::prefetch_stalls`]).
    pub fn prefetch_stalls(&self) -> u64 {
        self.read_stats.prefetch_stalls()
    }

    /// Cursors successfully opened with `O_DIRECT`.
    pub fn direct_opens(&self) -> u64 {
        self.read_stats.direct_opens()
    }

    /// `O_DIRECT` opens that gracefully fell back to buffered I/O.
    pub fn direct_fallbacks(&self) -> u64 {
        self.read_stats.direct_fallbacks()
    }

    /// Physical descriptors opened for value data since the last reset.
    pub fn file_opens(&self) -> u64 {
        self.read_stats.file_opens()
    }

    /// Transient I/O faults (`EINTR`, short reads) healed by the retrying
    /// wrapper — writes during the export and reads afterwards (see
    /// [`ReadStats::io_retries`]).
    pub fn io_retries(&self) -> u64 {
        self.read_stats.io_retries()
    }

    /// Checksum mismatches detected by opened cursors (each also surfaced
    /// as a `Corrupt` error; see [`ReadStats::checksum_failures`]).
    pub fn checksum_failures(&self) -> u64 {
        self.read_stats.checksum_failures()
    }

    /// Spill-merge heap comparisons the 8-byte key prefix resolved alone,
    /// summed over every attribute sort of this export (0 when nothing
    /// spilled — in-memory sorts bypass the merge heap entirely).
    pub fn sort_key_compares(&self) -> u64 {
        self.key_compares
    }

    /// Spill-merge heap comparisons that tied on the prefix and fell
    /// through to a full `memcmp` (see [`crate::SortStats::memcmp_compares`]).
    pub fn sort_memcmp_compares(&self) -> u64 {
        self.memcmp_compares
    }

    /// Attributes reused from the durable manifest by a `--resume` run
    /// (their value files passed validation; not a byte was re-sorted).
    pub fn exports_reused(&self) -> u64 {
        self.exports_reused
    }

    /// Attributes a `--resume` run had to (re-)export: missing from the
    /// manifest, torn, checksum-invalid, or stale against the source hash.
    pub fn exports_redone(&self) -> u64 {
        self.exports_redone
    }

    /// Orphaned `.tmp` staging files swept by the resume scan.
    pub fn orphans_swept(&self) -> u64 {
        self.orphans_swept
    }

    /// A handle on the shared counters themselves (for the shared-stream
    /// provider's worker threads).
    pub(crate) fn read_stats(&self) -> ReadStats {
        self.read_stats.clone()
    }
}

impl ValueSetProvider for ExportedDatabase {
    type Cursor = ValueFileReader;

    fn open(&self, id: u32) -> Result<ValueFileReader> {
        let attr = self
            .attributes
            .get(id as usize)
            .ok_or(crate::error::ValueSetError::UnknownAttribute(id))?;
        if let Some(f) = self.failed.iter().find(|f| f.id == id) {
            return Err(crate::error::ValueSetError::Corrupt {
                context: attr.path.display().to_string(),
                detail: format!("attribute quarantined during export: {}", f.error),
            });
        }
        ValueFileReader::open_sized(
            &attr.path,
            &self.io,
            Some(&self.budget),
            Some(self.read_stats.clone()),
            attr.file_bytes,
        )
    }

    fn attribute_count(&self) -> usize {
        self.attributes.len()
    }
}

/// Metadata for one exported composite (multi-column) value stream — the
/// arity-k analogue of [`ExportedAttribute`]. Entries are rows of the
/// owning table with every component non-NULL, tuple-encoded
/// ([`crate::encode_tuple`]) so the sorted file compares like the tuple
/// sequence.
#[derive(Debug, Clone)]
pub struct ExportedComposite {
    /// Dense composite id; index into [`CompositeExport::composites`].
    pub id: u32,
    /// The component columns, in candidate position order. All must belong
    /// to one table.
    pub columns: Vec<QualifiedName>,
    /// Rows whose components are all non-NULL (with duplicates).
    pub non_null_rows: u64,
    /// Distinct tuples written out.
    pub distinct: u64,
    /// Value file backing this composite stream.
    pub path: PathBuf,
    /// Byte size of that file, recorded at write time.
    pub file_bytes: u64,
}

/// A set of composite value streams exported under one directory — the
/// per-level provider of the n-ary discovery pipeline. The existing merge
/// engines run over it unchanged: composite ids play the role attribute
/// ids play for [`ExportedDatabase`].
#[derive(Debug)]
pub struct CompositeExport {
    dir: PathBuf,
    composites: Vec<ExportedComposite>,
    io: IoOptions,
    read_stats: ReadStats,
}

impl CompositeExport {
    /// Exports one sorted composite value file per column group of
    /// `groups` into `dir` (created if missing). Group `i` becomes
    /// composite id `i`. Every group must name columns of a single table;
    /// ragged groups (columns from different tables) are a storage error at
    /// lookup time.
    pub fn export(
        db: &Database,
        groups: &[Vec<QualifiedName>],
        dir: &Path,
        options: &ExportOptions,
    ) -> Result<Self> {
        let _span = ind_trace::start(ind_trace::EXPORT);
        std::fs::create_dir_all(dir)?;
        let spill_dir = dir.join("spill");
        let mut sort = options.sort.clone();
        let read_stats = sort.io.stats.get_or_insert_with(ReadStats::new).clone();
        let mut composites = Vec::with_capacity(groups.len());
        // One sorter for the whole level: warm arena across groups.
        let mut sorter = ExternalSorter::new(&spill_dir, sort.clone())?;
        for (id, group) in groups.iter().enumerate() {
            let mut columns = Vec::with_capacity(group.len());
            for qn in group {
                columns.push(db.column(qn)?);
            }
            let path = dir.join(format!("comp-{id:05}.indv"));
            let _sort_span = ind_trace::start_arg(ind_trace::SORT, id as u64);
            if let Some(cancel) = &sort.io.cancel {
                cancel.check("export")?;
            }
            let stats = extract_composite_with_sorter(&columns, &path, &mut sorter)?;
            ind_trace::add_counter(ind_trace::Counter::AttributesExported, 1);
            composites.push(ExportedComposite {
                id: id as u32,
                columns: group.clone(),
                non_null_rows: stats.pushed,
                distinct: stats.distinct,
                path,
                file_bytes: stats.file_bytes,
            });
        }
        // lint: allow(swallowed_result) — best-effort cleanup of an empty spill dir; the export already succeeded
        let _ = std::fs::remove_dir_all(&spill_dir); // empty after successful export
        Ok(CompositeExport {
            dir: dir.to_path_buf(),
            composites,
            io: sort.io.clone(),
            read_stats,
        })
    }

    /// All exported composite streams, indexed by id.
    pub fn composites(&self) -> &[ExportedComposite] {
        &self.composites
    }

    /// Export directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total `read(2)` calls issued by every cursor this export has opened.
    pub fn read_calls(&self) -> u64 {
        self.read_stats.read_calls()
    }

    /// Sequential-access hints delivered by opened cursors (see
    /// [`IoOptions::sequential_hint`]).
    pub fn fadvise_calls(&self) -> u64 {
        self.read_stats.fadvise_calls()
    }
}

impl ValueSetProvider for CompositeExport {
    type Cursor = ValueFileReader;

    fn open(&self, id: u32) -> Result<ValueFileReader> {
        let comp = self
            .composites
            .get(id as usize)
            .ok_or(crate::error::ValueSetError::UnknownAttribute(id))?;
        ValueFileReader::open_sized(
            &comp.path,
            &self.io,
            None,
            Some(self.read_stats.clone()),
            comp.file_bytes,
        )
    }

    fn attribute_count(&self) -> usize {
        self.composites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{collect_cursor, ValueCursor};
    use ind_storage::{ColumnSchema, Table, TableSchema, Value};
    use ind_testkit::TempDir;

    fn sample_db() -> Database {
        let mut db = Database::new("exported");
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnSchema::new("id", DataType::Integer)
                        .not_null()
                        .unique(),
                    ColumnSchema::new("label", DataType::Text),
                    ColumnSchema::new("blob", DataType::Lob),
                ],
            )
            .unwrap(),
        );
        t.insert(vec![1.into(), "b".into(), "xxxx".into()]).unwrap();
        t.insert(vec![2.into(), "a".into(), Value::Null]).unwrap();
        t.insert(vec![3.into(), "a".into(), Value::Null]).unwrap();
        db.add_table(t).unwrap();
        let mut u = Table::new(
            TableSchema::new("u", vec![ColumnSchema::new("ref", DataType::Integer)]).unwrap(),
        );
        u.insert(vec![1.into()]).unwrap();
        u.insert(vec![3.into()]).unwrap();
        db.add_table(u).unwrap();
        db
    }

    #[test]
    fn export_produces_metadata_and_files() {
        let dir = TempDir::new("export-meta");
        let exp =
            ExportedDatabase::export(&sample_db(), dir.path(), &ExportOptions::default()).unwrap();
        assert_eq!(exp.attribute_count(), 4);

        let id_attr = &exp.attributes()[0];
        assert_eq!(id_attr.name.to_string(), "t.id");
        assert_eq!(id_attr.distinct, 3);
        assert_eq!(id_attr.non_null, 3);
        assert!(id_attr.is_unique());
        assert_eq!(id_attr.min.as_deref(), Some(b"1".as_slice()));
        assert_eq!(id_attr.max.as_deref(), Some(b"3".as_slice()));

        let label = &exp.attributes()[1];
        assert_eq!(label.distinct, 2);
        assert_eq!(label.non_null, 3);
        assert!(!label.is_unique());

        let blob = &exp.attributes()[2];
        assert_eq!(blob.data_type, DataType::Lob);
        assert_eq!(blob.non_null, 1);

        let values = collect_cursor(exp.open(3).unwrap()).unwrap();
        assert_eq!(values, vec![b"1".to_vec(), b"3".to_vec()]);
    }

    #[test]
    fn parallel_export_matches_sequential_byte_for_byte() {
        let db = sample_db();
        let seq_dir = TempDir::new("export-seq");
        let seq = ExportedDatabase::export(&db, seq_dir.path(), &ExportOptions::default()).unwrap();
        for threads in [2usize, 3, 8] {
            let par_dir = TempDir::new("export-par");
            let par = ExportedDatabase::export(
                &db,
                par_dir.path(),
                &ExportOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(par.attribute_count(), seq.attribute_count());
            for (a, b) in par.attributes().iter().zip(seq.attributes()) {
                assert_eq!(a.id, b.id, "threads={threads}");
                assert_eq!(a.name, b.name);
                assert_eq!((a.non_null, a.distinct), (b.non_null, b.distinct));
                assert_eq!((&a.min, &a.max), (&b.min, &b.max));
                assert_eq!(
                    collect_cursor(par.open(a.id).unwrap()).unwrap(),
                    collect_cursor(seq.open(b.id).unwrap()).unwrap(),
                    "threads={threads}, attribute {}",
                    a.name
                );
            }
            assert!(
                !par_dir.join("spill").exists(),
                "worker spill dirs must be cleaned up"
            );
        }
    }

    #[test]
    fn block_size_is_an_io_knob_not_a_format_knob() {
        // Exports at wildly different block sizes must produce identical
        // files and identical streams, and cursors opened at any block size
        // read any export.
        let db = sample_db();
        let ref_dir = TempDir::new("export-io-ref");
        let reference =
            ExportedDatabase::export(&db, ref_dir.path(), &ExportOptions::default()).unwrap();
        for block_size in [1usize, 16, 64, 1 << 20] {
            let dir = TempDir::new("export-io");
            let exp = ExportedDatabase::export(
                &db,
                dir.path(),
                &ExportOptions::with_block_size(block_size),
            )
            .unwrap();
            assert_eq!(exp.io_options().block_size, block_size);
            for (a, b) in exp.attributes().iter().zip(reference.attributes()) {
                assert_eq!(
                    std::fs::read(&a.path).unwrap(),
                    std::fs::read(&b.path).unwrap(),
                    "block_size={block_size}, attribute {}",
                    a.name
                );
                assert_eq!(
                    collect_cursor(exp.open(a.id).unwrap()).unwrap(),
                    collect_cursor(reference.open(b.id).unwrap()).unwrap(),
                );
            }
        }
    }

    #[test]
    fn read_calls_aggregate_across_cursors() {
        let dir = TempDir::new("export-readcalls");
        let exp =
            ExportedDatabase::export(&sample_db(), dir.path(), &ExportOptions::default()).unwrap();
        assert_eq!(exp.read_calls(), 0, "no cursors opened yet");
        for id in 0..exp.attribute_count() as u32 {
            collect_cursor(exp.open(id).unwrap()).unwrap();
        }
        let after_scan = exp.read_calls();
        assert!(
            after_scan >= exp.attribute_count() as u64,
            "each cursor fills at least once, got {after_scan}"
        );
        exp.reset_read_calls();
        assert_eq!(exp.read_calls(), 0);
    }

    #[test]
    fn budget_limits_open_cursors() {
        let dir = TempDir::new("export-budget");
        let mut exp =
            ExportedDatabase::export(&sample_db(), dir.path(), &ExportOptions::default()).unwrap();
        exp.set_file_budget(FileBudget::new(2));
        let c1 = exp.open(0).unwrap();
        let _c2 = exp.open(1).unwrap();
        assert!(exp.open(2).is_err(), "third open must exceed the budget");
        drop(c1);
        assert!(exp.open(2).is_ok());
    }

    #[test]
    fn composite_export_matches_memory_extraction() {
        use crate::extract::extract_composite_memory_set;
        let db = sample_db();
        let dir = TempDir::new("export-composite");
        let groups = vec![
            vec![
                QualifiedName::new("t", "id"),
                QualifiedName::new("t", "label"),
            ],
            vec![QualifiedName::new("u", "ref")],
        ];
        let exp =
            CompositeExport::export(&db, &groups, dir.path(), &ExportOptions::default()).unwrap();
        assert_eq!(exp.attribute_count(), 2);
        for (id, group) in groups.iter().enumerate() {
            let columns: Vec<&[Value]> = group.iter().map(|qn| db.column(qn).unwrap()).collect();
            let mem = extract_composite_memory_set(&columns);
            let disk = collect_cursor(exp.open(id as u32).unwrap()).unwrap();
            assert_eq!(disk, mem.as_slice(), "group {group:?}");
            let meta = &exp.composites()[id];
            assert_eq!(meta.distinct, mem.len());
            assert_eq!(meta.columns, *group);
        }
        assert!(exp.read_calls() > 0, "cursors are counted");
        assert!(exp.open(2).is_err());
    }

    #[test]
    fn composite_export_rejects_unknown_columns() {
        let db = sample_db();
        let dir = TempDir::new("export-composite-bad");
        let groups = vec![vec![QualifiedName::new("t", "missing")]];
        assert!(
            CompositeExport::export(&db, &groups, dir.path(), &ExportOptions::default()).is_err()
        );
    }

    #[test]
    fn keep_going_quarantines_only_the_failed_attribute() {
        // Inject an ENOSPC on attribute 1's value file: without keep_going
        // the export dies; with it, attribute 1 is quarantined and every
        // other attribute exports byte-identically to a fault-free run.
        let db = sample_db();
        let clean_dir = TempDir::new("export-keepgoing-ref");
        let clean =
            ExportedDatabase::export(&db, clean_dir.path(), &ExportOptions::default()).unwrap();
        for threads in [1usize, 3] {
            let plan = std::sync::Arc::new(
                crate::fault::FaultPlan::parse("write:attr-00001:enospc").unwrap(),
            );
            let mut strict = ExportOptions::with_threads(threads);
            strict.sort.io = IoOptions::default().with_fault(plan.clone());
            let strict_dir = TempDir::new("export-keepgoing-strict");
            assert!(
                ExportedDatabase::export(&db, strict_dir.path(), &strict).is_err(),
                "threads={threads}: without keep_going the export fails"
            );

            let plan = std::sync::Arc::new(
                crate::fault::FaultPlan::parse("write:attr-00001:enospc").unwrap(),
            );
            let mut lax = ExportOptions::with_threads(threads).keep_going(true);
            lax.sort.io = IoOptions::default().with_fault(plan);
            let dir = TempDir::new("export-keepgoing");
            let exp = ExportedDatabase::export(&db, dir.path(), &lax).unwrap();
            assert_eq!(exp.attribute_count(), clean.attribute_count());
            assert_eq!(exp.failed_attributes().len(), 1, "threads={threads}");
            let failure = &exp.failed_attributes()[0];
            assert_eq!(failure.id, 1);
            assert_eq!(failure.name.to_string(), "t.label");
            assert!(failure.error.contains("attr-00001"), "{}", failure.error);
            assert!(exp.is_quarantined(1));
            assert!(!exp.is_quarantined(0));
            let denied = exp.open(1);
            match denied {
                Err(crate::error::ValueSetError::Corrupt { detail, .. }) => {
                    assert!(detail.contains("quarantined"), "{detail}")
                }
                _ => panic!("opening a quarantined attribute must fail"),
            }
            for id in [0u32, 2, 3] {
                assert_eq!(
                    collect_cursor(exp.open(id).unwrap()).unwrap(),
                    collect_cursor(clean.open(id).unwrap()).unwrap(),
                    "threads={threads}: healthy attribute {id} is untouched"
                );
            }
            assert!(
                !dir.join("spill").exists(),
                "spill dirs are cleaned up after a degraded export"
            );
        }
    }

    #[test]
    fn export_counts_retried_writes() {
        // Transient write EINTRs during the export are healed invisibly
        // and land in the export's shared counters.
        let plan = std::sync::Arc::new(crate::fault::FaultPlan::parse("write:*:eintr@3").unwrap());
        let mut options = ExportOptions::default();
        options.sort.io = IoOptions::default().with_fault(plan);
        let dir = TempDir::new("export-retries");
        let exp = ExportedDatabase::export(&sample_db(), dir.path(), &options).unwrap();
        assert!(exp.failed_attributes().is_empty());
        assert_eq!(exp.read_stats().io_retries(), 3, "retries are counted");
        let values = collect_cursor(exp.open(0).unwrap()).unwrap();
        assert_eq!(values.len(), 3, "the export is unharmed");
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let dir = TempDir::new("export-unknown");
        let exp =
            ExportedDatabase::export(&sample_db(), dir.path(), &ExportOptions::default()).unwrap();
        assert!(exp.open(99).is_err());
        assert!(exp.attribute(99).is_none());
    }

    #[test]
    fn cursors_are_independent() {
        let dir = TempDir::new("export-indep");
        let exp =
            ExportedDatabase::export(&sample_db(), dir.path(), &ExportOptions::default()).unwrap();
        let mut a = exp.open(0).unwrap();
        let mut b = exp.open(0).unwrap();
        a.advance().unwrap();
        a.advance().unwrap();
        b.advance().unwrap();
        assert_eq!(a.current(), b"2");
        assert_eq!(b.current(), b"1");
    }

    #[test]
    fn resume_reuses_valid_exports_and_sweeps_orphans() {
        let dir = TempDir::new("resume-reuse");
        let db = sample_db();
        let first = ExportedDatabase::export(&db, dir.path(), &ExportOptions::default()).unwrap();
        let before: Vec<Vec<u8>> = first
            .attributes()
            .iter()
            .map(|a| std::fs::read(&a.path).unwrap())
            .collect();
        std::fs::write(dir.path().join("attr-99999.indv.tmp"), b"torn stage").unwrap();

        let resumed = ExportedDatabase::export(
            &db,
            dir.path(),
            &ExportOptions::default().resume(ResumeMode::Reuse),
        )
        .unwrap();
        assert_eq!(resumed.exports_reused(), 4);
        assert_eq!(resumed.exports_redone(), 0);
        assert_eq!(resumed.orphans_swept(), 1);
        assert!(!dir.path().join("attr-99999.indv.tmp").exists());

        // Reconstructed metadata and file bytes match the original export.
        let after: Vec<Vec<u8>> = resumed
            .attributes()
            .iter()
            .map(|a| std::fs::read(&a.path).unwrap())
            .collect();
        assert_eq!(before, after);
        for (a, b) in first.attributes().iter().zip(resumed.attributes()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name.to_string(), b.name.to_string());
            assert_eq!(a.data_type, b.data_type);
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.non_null, b.non_null);
            assert_eq!(a.distinct, b.distinct);
            assert_eq!(a.min, b.min);
            assert_eq!(a.max, b.max);
            assert_eq!(a.file_bytes, b.file_bytes);
        }
        // Reused attributes open and read like freshly exported ones.
        let values = collect_cursor(resumed.open(3).unwrap()).unwrap();
        assert_eq!(values, vec![b"1".to_vec(), b"3".to_vec()]);
    }

    #[test]
    fn resume_redoes_stale_and_torn_attributes() {
        let dir = TempDir::new("resume-redo");
        ExportedDatabase::export(&sample_db(), dir.path(), &ExportOptions::default()).unwrap();
        // Tear a byte off one published file: its self-verifying seal
        // (size formula + footer) fails quick validation.
        let torn = dir.path().join("attr-00002.indv");
        let bytes = std::fs::read(&torn).unwrap();
        std::fs::write(&torn, &bytes[..bytes.len() - 1]).unwrap();

        // Same schema, different data in u.ref: the old attr-00003 file is
        // intact but its source-content hash no longer matches.
        let mut db2 = sample_db();
        db2.table_mut("u").unwrap().insert(vec![9.into()]).unwrap();

        let resumed = ExportedDatabase::export(
            &db2,
            dir.path(),
            &ExportOptions::default().resume(ResumeMode::Reuse),
        )
        .unwrap();
        assert_eq!(resumed.exports_reused(), 2, "t.id and t.label reuse");
        assert_eq!(resumed.exports_redone(), 2, "torn t.blob + stale u.ref");
        let values = collect_cursor(resumed.open(3).unwrap()).unwrap();
        assert_eq!(values, vec![b"1".to_vec(), b"3".to_vec(), b"9".to_vec()]);
        let blob = collect_cursor(resumed.open(2).unwrap()).unwrap();
        assert_eq!(blob, vec![b"xxxx".to_vec()]);
    }

    #[test]
    fn cancelled_export_is_resumable_and_never_quarantined() {
        let dir = TempDir::new("cancel-resume");
        let db = sample_db();
        let options =
            ExportOptions::default().with_cancel(crate::cancel::CancelToken::cancel_after(5));
        let err = ExportedDatabase::export(&db, dir.path(), &options).unwrap_err();
        assert!(
            matches!(err, crate::error::ValueSetError::Cancelled { .. }),
            "{err}"
        );

        // keep-going treats cancellation as a stop, not a data fault: no
        // quarantine, the error still surfaces.
        let options = ExportOptions::default()
            .keep_going(true)
            .with_cancel(crate::cancel::CancelToken::cancel_after(5));
        let err = ExportedDatabase::export(&db, dir.path(), &options).unwrap_err();
        assert!(
            matches!(err, crate::error::ValueSetError::Cancelled { .. }),
            "{err}"
        );

        // Resume (with the deep frame-CRC walk) completes the export; the
        // attributes published before the budget ran out are reused.
        let resumed = ExportedDatabase::export(
            &db,
            dir.path(),
            &ExportOptions::default().resume(ResumeMode::Verify),
        )
        .unwrap();
        assert_eq!(resumed.exports_reused() + resumed.exports_redone(), 4);
        assert!(resumed.exports_reused() >= 1, "first publish survived");
        for entry in std::fs::read_dir(dir.path()).unwrap().flatten() {
            assert!(
                !entry.file_name().to_string_lossy().ends_with(".tmp"),
                "orphan stage survived resume"
            );
        }

        // Byte-identical to an uninterrupted export.
        let clean_dir = TempDir::new("cancel-resume-clean");
        let clean =
            ExportedDatabase::export(&db, clean_dir.path(), &ExportOptions::default()).unwrap();
        for (a, b) in clean.attributes().iter().zip(resumed.attributes()) {
            assert_eq!(
                std::fs::read(&a.path).unwrap(),
                std::fs::read(&b.path).unwrap()
            );
        }
    }
}
