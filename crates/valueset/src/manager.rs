//! Whole-database export: one sorted value file per attribute, plus the
//! per-attribute metadata (cardinalities, min/max) that candidate
//! generation and the pretests consume.

use crate::budget::FileBudget;
use crate::error::Result;
use crate::extract::extract_to_file;
use crate::external_sort::SortOptions;
use crate::format::ValueFileReader;
use crate::cursor::ValueSetProvider;
use ind_storage::{Database, DataType, QualifiedName};
use std::path::{Path, PathBuf};

/// Options controlling a database export.
#[derive(Debug, Clone, Default)]
pub struct ExportOptions {
    /// Sorter tuning (memory budget before spilling).
    pub sort: SortOptions,
}

/// Metadata for one exported attribute.
///
/// `distinct`, `non_null`, `min`, and `max` are byproducts of the sorted
/// export — the paper gets them for free from the RDBMS, we get them for
/// free from the sorter.
#[derive(Debug, Clone)]
pub struct ExportedAttribute {
    /// Dense attribute id; index into [`ExportedDatabase::attributes`].
    pub id: u32,
    /// Qualified `table.column` name.
    pub name: QualifiedName,
    /// Declared column type (LOB columns are exported but never become
    /// dependent attributes).
    pub data_type: DataType,
    /// Rows in the owning table.
    pub rows: u64,
    /// Non-null occurrences, `|v(a)|`.
    pub non_null: u64,
    /// Distinct values, `|s(a)|`.
    pub distinct: u64,
    /// Smallest canonical value, if any.
    pub min: Option<Vec<u8>>,
    /// Largest canonical value, if any.
    pub max: Option<Vec<u8>>,
    /// Value file backing this attribute.
    pub path: PathBuf,
}

impl ExportedAttribute {
    /// "Non-empty" in the paper's sense.
    pub fn is_non_empty(&self) -> bool {
        self.non_null > 0
    }

    /// Data-driven uniqueness (every non-null value occurs once).
    pub fn is_unique(&self) -> bool {
        self.non_null > 0 && self.distinct == self.non_null
    }
}

/// A database exported to sorted value files under one directory.
#[derive(Debug)]
pub struct ExportedDatabase {
    dir: PathBuf,
    attributes: Vec<ExportedAttribute>,
    budget: FileBudget,
}

impl ExportedDatabase {
    /// Exports every column of `db` into `dir` (created if missing).
    /// Attribute ids follow [`Database::attributes`] order, so they are
    /// deterministic across runs.
    pub fn export(db: &Database, dir: &Path, options: &ExportOptions) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let spill_dir = dir.join("spill");
        let mut attributes = Vec::with_capacity(db.attribute_count());
        let mut id = 0u32;
        for table in db.tables() {
            for (_, col_schema, col_data) in table.iter_columns() {
                let path = dir.join(format!("attr-{id:05}.indv"));
                let stats = extract_to_file(col_data, &path, &spill_dir, options.sort.clone())?;
                attributes.push(ExportedAttribute {
                    id,
                    name: QualifiedName::new(table.name(), col_schema.name.clone()),
                    data_type: col_schema.data_type,
                    rows: table.row_count() as u64,
                    non_null: stats.pushed,
                    distinct: stats.distinct,
                    min: stats.min,
                    max: stats.max,
                    path,
                });
                id += 1;
            }
        }
        let _ = std::fs::remove_dir(&spill_dir); // empty after successful export
        Ok(ExportedDatabase {
            dir: dir.to_path_buf(),
            attributes,
            budget: FileBudget::unlimited(),
        })
    }

    /// All exported attributes, indexed by id.
    pub fn attributes(&self) -> &[ExportedAttribute] {
        &self.attributes
    }

    /// One attribute by id.
    pub fn attribute(&self, id: u32) -> Option<&ExportedAttribute> {
        self.attributes.get(id as usize)
    }

    /// Export directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Installs an open-file budget governing all subsequently opened
    /// cursors. Models the operating-system limit from Sec. 4.2.
    pub fn set_file_budget(&mut self, budget: FileBudget) {
        self.budget = budget;
    }

    /// The current budget (shared counter).
    pub fn file_budget(&self) -> &FileBudget {
        &self.budget
    }
}

impl ValueSetProvider for ExportedDatabase {
    type Cursor = ValueFileReader;

    fn open(&self, id: u32) -> Result<ValueFileReader> {
        let attr = self
            .attributes
            .get(id as usize)
            .ok_or(crate::error::ValueSetError::UnknownAttribute(id))?;
        ValueFileReader::open_with_budget(&attr.path, &self.budget)
    }

    fn attribute_count(&self) -> usize {
        self.attributes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{collect_cursor, ValueCursor};
    use ind_storage::{ColumnSchema, Table, TableSchema, Value};
    use ind_testkit::TempDir;

    fn sample_db() -> Database {
        let mut db = Database::new("exported");
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnSchema::new("id", DataType::Integer).not_null().unique(),
                    ColumnSchema::new("label", DataType::Text),
                    ColumnSchema::new("blob", DataType::Lob),
                ],
            )
            .unwrap(),
        );
        t.insert(vec![1.into(), "b".into(), "xxxx".into()]).unwrap();
        t.insert(vec![2.into(), "a".into(), Value::Null]).unwrap();
        t.insert(vec![3.into(), "a".into(), Value::Null]).unwrap();
        db.add_table(t).unwrap();
        let mut u = Table::new(
            TableSchema::new("u", vec![ColumnSchema::new("ref", DataType::Integer)]).unwrap(),
        );
        u.insert(vec![1.into()]).unwrap();
        u.insert(vec![3.into()]).unwrap();
        db.add_table(u).unwrap();
        db
    }

    #[test]
    fn export_produces_metadata_and_files() {
        let dir = TempDir::new("export-meta");
        let exp = ExportedDatabase::export(&sample_db(), dir.path(), &ExportOptions::default())
            .unwrap();
        assert_eq!(exp.attribute_count(), 4);

        let id_attr = &exp.attributes()[0];
        assert_eq!(id_attr.name.to_string(), "t.id");
        assert_eq!(id_attr.distinct, 3);
        assert_eq!(id_attr.non_null, 3);
        assert!(id_attr.is_unique());
        assert_eq!(id_attr.min.as_deref(), Some(b"1".as_slice()));
        assert_eq!(id_attr.max.as_deref(), Some(b"3".as_slice()));

        let label = &exp.attributes()[1];
        assert_eq!(label.distinct, 2);
        assert_eq!(label.non_null, 3);
        assert!(!label.is_unique());

        let blob = &exp.attributes()[2];
        assert_eq!(blob.data_type, DataType::Lob);
        assert_eq!(blob.non_null, 1);

        let values = collect_cursor(exp.open(3).unwrap()).unwrap();
        assert_eq!(values, vec![b"1".to_vec(), b"3".to_vec()]);
    }

    #[test]
    fn budget_limits_open_cursors() {
        let dir = TempDir::new("export-budget");
        let mut exp =
            ExportedDatabase::export(&sample_db(), dir.path(), &ExportOptions::default()).unwrap();
        exp.set_file_budget(FileBudget::new(2));
        let c1 = exp.open(0).unwrap();
        let _c2 = exp.open(1).unwrap();
        assert!(exp.open(2).is_err(), "third open must exceed the budget");
        drop(c1);
        assert!(exp.open(2).is_ok());
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let dir = TempDir::new("export-unknown");
        let exp = ExportedDatabase::export(&sample_db(), dir.path(), &ExportOptions::default())
            .unwrap();
        assert!(exp.open(99).is_err());
        assert!(exp.attribute(99).is_none());
    }

    #[test]
    fn cursors_are_independent() {
        let dir = TempDir::new("export-indep");
        let exp = ExportedDatabase::export(&sample_db(), dir.path(), &ExportOptions::default())
            .unwrap();
        let mut a = exp.open(0).unwrap();
        let mut b = exp.open(0).unwrap();
        a.advance().unwrap();
        a.advance().unwrap();
        b.advance().unwrap();
        assert_eq!(a.current(), b"2");
        assert_eq!(b.current(), b"1");
    }
}
