//! Deterministic fault injection for every I/O path in this crate.
//!
//! A [`FaultPlan`] is a small set of rules — *which operation*, *which
//! file*, *which fault, how often* — attached to [`crate::IoOptions`] and
//! consulted by the one place all physical I/O flows through: the
//! [`FaultFile`] read wrapper beneath [`crate::BlockReader`], the
//! `write_all`/open helpers used by [`crate::ValueFileWriter`] and the
//! spill writer, and the open path of every reader. Because the prefetch
//! worker and the shared-stream streamer read through the same wrapper,
//! a plan injected at the bottom exercises the error arms of the whole
//! stack — block reader, format decoder, external-sort merge, prefetch
//! channel, partition fan-out — on the consumer side.
//!
//! The wrapper is also where *transient* faults are healed: an
//! `ErrorKind::Interrupted` (injected or real) is retried in place and an
//! injected short read is absorbed by the caller's fill loop; both count
//! into [`ReadStats::io_retries`] so a degraded run is visible in the
//! metrics without being fatal.
//!
//! ## Plan syntax
//!
//! A plan is a comma-separated list of `op:match:kind` rules:
//!
//! ```text
//! read:attr-00002:flip=57 , write:run-:enospc , read:*:eintr@3
//! ```
//!
//! * `op` — `read`, `write`, `open`, or `fsync`.
//! * `match` — a substring of the file path; `*` matches every file.
//! * `kind` — `eintr` (read/write), `short` (read), `truncate=N` (read:
//!   the file appears to end at byte `N`), `flip=N` (read: one bit of
//!   byte `N` is flipped, chosen by the plan's seed), `enospc` (write),
//!   `fail` (open/fsync), `crash=N` (write: the Nth matching write tears
//!   mid-buffer and every later matching write or fsync fails — the
//!   process-visible shape of dying mid-export).
//! * an optional `@count` fires the rule that many times (default once;
//!   `truncate` is persistent).

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::block::{PhysicalFile, ReadStats};

/// Operations a rule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultOp {
    Read,
    Write,
    Open,
    Fsync,
}

/// The fault a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// Clamp a read to roughly half its requested length (min 1 byte):
    /// the caller's fill loop must absorb it.
    ShortRead,
    /// `ErrorKind::Interrupted`: the wrapper must retry transparently.
    Interrupted,
    /// `ENOSPC` on a write.
    NoSpace,
    /// Reads behave as if the file ended at byte `N`.
    TruncateAt(u64),
    /// One bit of byte `N` (seed-chosen) is flipped on the read that
    /// delivers it.
    BitFlipAt(u64),
    /// The open (or fsync) itself fails.
    FailOp,
    /// The Nth matching write aborts mid-buffer (a torn prefix reaches
    /// the file) and every later matching write or fsync fails — the
    /// process-visible shape of crashing mid-export.
    Crash,
}

#[derive(Debug)]
struct FaultRule {
    op: FaultOp,
    /// Path substring; `*` matches everything.
    matcher: String,
    kind: FaultKind,
    /// Remaining firings; `u64::MAX` means unlimited.
    remaining: AtomicU64,
    /// Latched once a `crash=N` rule has fired: the write path is dead
    /// for every later matching write or fsync.
    crashed: AtomicBool,
}

impl FaultRule {
    fn matches(&self, op: FaultOp, path: &Path) -> bool {
        self.op == op && self.matches_path(path)
    }

    fn matches_path(&self, path: &Path) -> bool {
        self.matcher == "*" || path.to_string_lossy().contains(&self.matcher)
    }

    /// Consumes one firing; `false` once the budget is spent.
    fn take(&self) -> bool {
        loop {
            let cur = self.remaining.load(Ordering::Relaxed);
            if cur == 0 {
                return false;
            }
            if cur == u64::MAX {
                return true; // unlimited
            }
            if self
                .remaining
                .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Decrements the budget; `true` only for the call that consumed the
    /// *final* firing (the Nth matching op of a `crash=N` rule).
    fn take_last(&self) -> bool {
        loop {
            let cur = self.remaining.load(Ordering::Relaxed);
            if cur == 0 || cur == u64::MAX {
                return false;
            }
            if self
                .remaining
                .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return cur == 1;
            }
        }
    }
}

/// What [`FaultPlan::before_read`] tells the wrapper to do.
pub(crate) enum ReadCheck {
    /// Read up to `want` bytes; `shortened` when a short-read fault
    /// clamped the request (counted as an absorbed retry).
    Proceed { want: usize, shortened: bool },
    /// The (injected) file end was reached.
    Eof,
    /// Fail the read with this error (`Interrupted` is retried in place).
    Fail(io::Error),
}

/// A seeded, deterministic fault plan. See the module docs for the rule
/// syntax. The plan is `Sync`: one `Arc<FaultPlan>` in
/// [`crate::IoOptions`] serves every reader, writer, and worker thread of
/// a run, and [`FaultPlan::fired`] reports which rules actually fired.
#[derive(Debug)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
    fired: Mutex<Vec<String>>,
}

/// Cap on the fired-log length: sweeps that trip the same persistent rule
/// thousands of times must not grow without bound.
const FIRED_LOG_CAP: usize = 256;

impl FaultPlan {
    /// Parses a comma-separated rule list (see the module docs). Errors
    /// describe the offending rule; an empty spec is a valid empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        // lint: allow(hot_alloc) — parse time, once per plan
        let mut rules = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            rules.push(parse_rule(part)?);
        }
        Ok(FaultPlan {
            rules,
            seed: DEFAULT_SEED,
            // lint: allow(hot_alloc) — parse time, once per plan
            fired: Mutex::new(Vec::new()),
        })
    }

    /// Replaces the seed that picks which bit a `flip=N` rule flips.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Human-readable descriptions of every fault that actually fired, in
    /// firing order (capped at a few hundred entries).
    pub fn fired(&self) -> Vec<String> {
        // lint: allow(hot_alloc) — reporting accessor, not on any I/O path
        lock(&self.fired).clone()
    }

    /// Number of faults that have fired so far.
    pub fn fired_count(&self) -> usize {
        lock(&self.fired).len()
    }

    fn note(&self, message: String) {
        let mut log = lock(&self.fired);
        if log.len() < FIRED_LOG_CAP {
            log.push(message);
        }
    }

    /// Consulted before a read of `want` bytes at `pos`.
    pub(crate) fn before_read(&self, path: &Path, pos: u64, want: usize) -> ReadCheck {
        let mut want = want;
        let mut shortened = false;
        for rule in &self.rules {
            if !rule.matches(FaultOp::Read, path) {
                continue;
            }
            match rule.kind {
                FaultKind::Interrupted if rule.take() => {
                    // lint: allow(hot_alloc) — cold fault path
                    self.note(format!("read:eintr:{}@{pos}", path.display()));
                    return ReadCheck::Fail(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected EINTR",
                    ));
                }
                FaultKind::ShortRead if want > 1 && rule.take() => {
                    // lint: allow(hot_alloc) — cold fault path
                    self.note(format!("read:short:{}@{pos}", path.display()));
                    want = (want / 2).max(1);
                    shortened = true;
                }
                FaultKind::TruncateAt(n) => {
                    if pos >= n {
                        if rule.take() {
                            // lint: allow(hot_alloc) — cold fault path
                            self.note(format!("read:truncate={n}:{}", path.display()));
                        }
                        return ReadCheck::Eof;
                    }
                    want = want.min(usize::try_from(n - pos).unwrap_or(usize::MAX));
                }
                _ => {}
            }
        }
        ReadCheck::Proceed { want, shortened }
    }

    /// Consulted after a read that delivered `buf` starting at `pos`.
    pub(crate) fn after_read(&self, path: &Path, pos: u64, buf: &mut [u8]) {
        for rule in &self.rules {
            if !rule.matches(FaultOp::Read, path) {
                continue;
            }
            if let FaultKind::BitFlipAt(n) = rule.kind {
                let end = pos + buf.len() as u64;
                if n >= pos && n < end && rule.take() {
                    let bit = (mix(self.seed ^ n) % 8) as u8;
                    buf[(n - pos) as usize] ^= 1 << bit;
                    // lint: allow(hot_alloc) — cold fault path
                    self.note(format!("read:flip={n}.{bit}:{}", path.display()));
                }
            }
        }
    }

    /// Consulted before a `write_all` of `len` bytes.
    pub(crate) fn before_write(&self, path: &Path, len: usize) -> WriteCheck {
        for rule in &self.rules {
            if !rule.matches(FaultOp::Write, path) {
                continue;
            }
            match rule.kind {
                FaultKind::NoSpace if rule.take() => {
                    // lint: allow(hot_alloc) — cold fault path
                    self.note(format!("write:enospc:{}", path.display()));
                    // ENOSPC, spelled as the OS would report it.
                    return WriteCheck::Fail(io::Error::from_raw_os_error(28));
                }
                FaultKind::Interrupted if rule.take() => {
                    // lint: allow(hot_alloc) — cold fault path
                    self.note(format!("write:eintr:{}", path.display()));
                    return WriteCheck::Interrupted;
                }
                FaultKind::Crash => {
                    if rule.crashed.load(Ordering::Relaxed) {
                        return WriteCheck::Fail(crash_error());
                    }
                    if rule.take_last() {
                        rule.crashed.store(true, Ordering::Relaxed);
                        // lint: allow(hot_alloc) — cold fault path
                        self.note(format!("write:crash:{}", path.display()));
                        return WriteCheck::Crash { torn: len / 2 };
                    }
                }
                _ => {}
            }
        }
        WriteCheck::Proceed
    }

    /// Consulted before an `fsync`; `Some(e)` fails it. A latched
    /// `crash=N` rule also kills matching fsyncs — after a crash nothing
    /// on that path reaches the disk.
    pub(crate) fn before_fsync(&self, path: &Path) -> Option<io::Error> {
        for rule in &self.rules {
            match rule.kind {
                FaultKind::FailOp if rule.matches(FaultOp::Fsync, path) && rule.take() => {
                    // lint: allow(hot_alloc) — cold fault path
                    self.note(format!("fsync:fail:{}", path.display()));
                    return Some(io::Error::other("injected fsync failure"));
                }
                FaultKind::Crash
                    if rule.matches_path(path) && rule.crashed.load(Ordering::Relaxed) =>
                {
                    return Some(crash_error());
                }
                _ => {}
            }
        }
        None
    }

    /// Consulted before opening (or creating) `path`.
    pub(crate) fn before_open(&self, path: &Path) -> Option<io::Error> {
        for rule in &self.rules {
            if rule.matches(FaultOp::Open, path) && rule.kind == FaultKind::FailOp && rule.take() {
                // lint: allow(hot_alloc) — cold fault path
                self.note(format!("open:fail:{}", path.display()));
                return Some(io::Error::other("injected open failure"));
            }
        }
        None
    }
}

/// What [`FaultPlan::before_write`] tells the writing wrapper to do.
pub(crate) enum WriteCheck {
    /// Write the whole buffer.
    Proceed,
    /// `ErrorKind::Interrupted`: the wrapper retries in place.
    Interrupted,
    /// Fail the write with this error; nothing reaches the file.
    Fail(io::Error),
    /// A `crash=N` rule fired: write only the first `torn` bytes of the
    /// buffer, then fail — the on-disk shape of dying mid-`write(2)`.
    Crash {
        /// Byte count of the torn prefix that reaches the file.
        torn: usize,
    },
}

/// The error every post-crash operation surfaces.
fn crash_error() -> io::Error {
    io::Error::other("injected crash: write path aborted")
}

/// Default seed: arbitrary odd constant so bit choices are stable across
/// runs unless overridden.
const DEFAULT_SEED: u64 = 0x5EED_0F1D_ECDE_2006;

fn parse_rule(part: &str) -> Result<FaultRule, String> {
    // lint: allow(hot_alloc) — parse-time only
    let fields: Vec<&str> = part.splitn(3, ':').collect();
    let [op, matcher, kind_spec] = fields[..] else {
        // lint: allow(hot_alloc) — parse-time error path
        return Err(format!("rule `{part}` is not `op:match:kind`"));
    };
    let op = match op {
        "read" => FaultOp::Read,
        "write" => FaultOp::Write,
        "open" => FaultOp::Open,
        "fsync" => FaultOp::Fsync,
        // lint: allow(hot_alloc) — parse-time error path
        other => return Err(format!("unknown op `{other}` in `{part}`")),
    };
    let (kind_text, count_text) = match kind_spec.split_once('@') {
        Some((k, c)) => (k, Some(c)),
        None => (kind_spec, None),
    };
    let (kind, default_count) = parse_kind(kind_text, part)?;
    let remaining = match count_text {
        Some(c) => c
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            // lint: allow(hot_alloc) — parse-time error path
            .ok_or_else(|| format!("bad count `@{c}` in `{part}`"))?,
        None => default_count,
    };
    let allowed = matches!(
        (op, kind),
        (FaultOp::Read, FaultKind::ShortRead)
            | (FaultOp::Read, FaultKind::Interrupted)
            | (FaultOp::Read, FaultKind::TruncateAt(_))
            | (FaultOp::Read, FaultKind::BitFlipAt(_))
            | (FaultOp::Write, FaultKind::NoSpace)
            | (FaultOp::Write, FaultKind::Interrupted)
            | (FaultOp::Write, FaultKind::Crash)
            | (FaultOp::Open, FaultKind::FailOp)
            | (FaultOp::Fsync, FaultKind::FailOp)
    );
    if !allowed {
        // lint: allow(hot_alloc) — parse-time error path
        return Err(format!("kind `{kind_text}` does not apply to op `{part}`"));
    }
    Ok(FaultRule {
        op,
        // lint: allow(hot_alloc) — parse-time only
        matcher: matcher.to_string(),
        kind,
        remaining: AtomicU64::new(remaining),
        crashed: AtomicBool::new(false),
    })
}

fn parse_kind(text: &str, part: &str) -> Result<(FaultKind, u64), String> {
    if let Some(n) = text.strip_prefix("truncate=") {
        let n = n
            .parse::<u64>()
            // lint: allow(hot_alloc) — parse-time error path
            .map_err(|_| format!("bad byte offset in `{part}`"))?;
        return Ok((FaultKind::TruncateAt(n), u64::MAX));
    }
    if let Some(n) = text.strip_prefix("flip=") {
        let n = n
            .parse::<u64>()
            // lint: allow(hot_alloc) — parse-time error path
            .map_err(|_| format!("bad byte offset in `{part}`"))?;
        return Ok((FaultKind::BitFlipAt(n), 1));
    }
    if let Some(n) = text.strip_prefix("crash=") {
        let n = n
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            // lint: allow(hot_alloc) — parse-time error path
            .ok_or_else(|| format!("bad op count in `{part}` (crash=N, N >= 1)"))?;
        return Ok((FaultKind::Crash, n));
    }
    match text {
        "short" => Ok((FaultKind::ShortRead, 1)),
        "eintr" => Ok((FaultKind::Interrupted, 1)),
        "enospc" => Ok((FaultKind::NoSpace, 1)),
        "fail" => Ok((FaultKind::FailOp, 1)),
        // lint: allow(hot_alloc) — parse-time error path
        other => Err(format!("unknown fault kind `{other}` in `{part}`")),
    }
}

/// SplitMix64 finaliser: turns the seed and a byte offset into a stable
/// bit choice for `flip=N`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Annotates an I/O error with the file it happened on, so every
/// [`crate::ValueSetError::Io`] names its path.
pub(crate) fn annotate(path: &Path, e: io::Error) -> io::Error {
    if path.as_os_str().is_empty() {
        return e;
    }
    // lint: allow(hot_alloc) — cold error path
    io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

/// The injection point for opens: consult the plan, then fail or proceed.
pub(crate) fn check_open(path: &Path, plan: Option<&Arc<FaultPlan>>) -> io::Result<()> {
    if let Some(plan) = plan {
        if let Some(e) = plan.before_open(path) {
            return Err(annotate(path, e));
        }
    }
    Ok(())
}

/// The one blessed `File::open` in this crate (enforced by the `fs_open`
/// lint rule): every reader descriptor comes through here, after
/// [`check_open`] has had its chance to inject a failure.
pub(crate) fn open_file(path: &Path) -> io::Result<std::fs::File> {
    std::fs::File::open(path).map_err(|e| annotate(path, e))
}

/// The one blessed `File::create` in this crate: writer descriptors.
pub(crate) fn create_file(path: &Path) -> io::Result<std::fs::File> {
    std::fs::File::create(path).map_err(|e| annotate(path, e))
}

/// A retrying, fault-checked `write_all`: injected or real `Interrupted`
/// is retried in place (counted into [`ReadStats::io_retries`]); every
/// other failure comes back annotated with the path.
pub(crate) fn write_all(
    file: &mut std::fs::File,
    bytes: &[u8],
    path: &Path,
    plan: Option<&Arc<FaultPlan>>,
    stats: Option<&ReadStats>,
) -> io::Result<()> {
    use std::io::Write;
    loop {
        if let Some(plan) = plan {
            match plan.before_write(path, bytes.len()) {
                WriteCheck::Proceed => {}
                WriteCheck::Interrupted => {
                    if let Some(stats) = stats {
                        stats.bump_io_retry();
                    }
                    continue;
                }
                WriteCheck::Fail(e) => return Err(annotate(path, e)),
                WriteCheck::Crash { torn } => {
                    // The crash IS the outcome: whatever the torn prefix
                    // does on disk is what a real mid-write death leaves.
                    // lint: allow(swallowed_result) — best-effort torn prefix; the injected crash error below is the result under test
                    let _ = file.write_all(&bytes[..torn]);
                    return Err(annotate(path, crash_error()));
                }
            }
        }
        // `write_all` itself already loops over real EINTRs; it cannot
        // surface `Interrupted`, so no outer retry arm is needed here.
        return file.write_all(bytes).map_err(|e| annotate(path, e));
    }
}

/// A fault-checked `File::sync_all`: the durability half of atomic
/// publication. An `fsync:fail` rule (or a latched `crash=N`) fails it;
/// otherwise the real fsync runs and its error comes back annotated.
pub(crate) fn sync_all(
    file: &std::fs::File,
    path: &Path,
    plan: Option<&Arc<FaultPlan>>,
) -> io::Result<()> {
    if let Some(plan) = plan {
        if let Some(e) = plan.before_fsync(path) {
            return Err(annotate(path, e));
        }
    }
    file.sync_all().map_err(|e| annotate(path, e))
}

/// Fsyncs a directory so a rename inside it is durable (the directory
/// entry itself must reach the disk, not just the file bytes). Subject to
/// the same `fsync` fault rules as file syncs.
pub(crate) fn sync_dir(dir: &Path, plan: Option<&Arc<FaultPlan>>) -> io::Result<()> {
    if let Some(plan) = plan {
        if let Some(e) = plan.before_fsync(dir) {
            return Err(annotate(dir, e));
        }
    }
    let handle = std::fs::File::open(dir).map_err(|e| annotate(dir, e))?;
    handle.sync_all().map_err(|e| annotate(dir, e))
}

/// The retrying read wrapper every [`crate::BlockReader`] byte flows
/// through: owns the physical descriptor, consults the plan on each read,
/// retries `Interrupted` in place, applies bit flips, and annotates
/// errors with the path.
#[derive(Debug)]
pub(crate) struct FaultFile {
    inner: PhysicalFile,
    path: std::path::PathBuf,
    pos: u64,
    plan: Option<Arc<FaultPlan>>,
    stats: Option<ReadStats>,
}

impl FaultFile {
    pub(crate) fn new(
        inner: PhysicalFile,
        path: &Path,
        plan: Option<Arc<FaultPlan>>,
        stats: Option<ReadStats>,
    ) -> FaultFile {
        FaultFile {
            inner,
            path: path.to_path_buf(),
            pos: 0,
            plan,
            stats,
        }
    }

    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    fn bump_retry(&self) {
        if let Some(stats) = &self.stats {
            stats.bump_io_retry();
        }
    }
}

impl io::Read for FaultFile {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        loop {
            let mut want = out.len();
            if let Some(plan) = &self.plan {
                match plan.before_read(&self.path, self.pos, want) {
                    ReadCheck::Eof => return Ok(0),
                    ReadCheck::Fail(e) => {
                        if e.kind() == io::ErrorKind::Interrupted {
                            // The transient-error contract: retried here,
                            // invisible to every caller above the wrapper.
                            self.bump_retry();
                            continue;
                        }
                        return Err(annotate(&self.path, e));
                    }
                    ReadCheck::Proceed { want: w, shortened } => {
                        if shortened {
                            self.bump_retry();
                        }
                        want = w;
                    }
                }
            }
            match self.inner.read(&mut out[..want]) {
                Ok(n) => {
                    if let Some(plan) = &self.plan {
                        plan.after_read(&self.path, self.pos, &mut out[..n]);
                    }
                    self.pos += n as u64;
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.bump_retry();
                    continue;
                }
                Err(e) => return Err(annotate(&self.path, e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn plan(spec: &str) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::parse(spec).unwrap())
    }

    fn fault_file(
        data: &[u8],
        plan: Option<Arc<FaultPlan>>,
        stats: Option<ReadStats>,
    ) -> FaultFile {
        let dir = ind_testkit::TempDir::new("fault-file");
        let path = dir.join("data.bin");
        std::fs::write(&path, data).unwrap();
        FaultFile::new(
            PhysicalFile::Buffered(std::fs::File::open(&path).unwrap()),
            &path,
            plan,
            stats,
        )
    }

    #[test]
    fn parses_the_documented_syntax() {
        let p = FaultPlan::parse("read:attr-00002:flip=57, write:run-:enospc , read:*:eintr@3")
            .unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[0].kind, FaultKind::BitFlipAt(57));
        assert_eq!(p.rules[1].kind, FaultKind::NoSpace);
        assert_eq!(p.rules[2].kind, FaultKind::Interrupted);
        assert_eq!(p.rules[2].remaining.load(Ordering::Relaxed), 3);
        assert!(FaultPlan::parse("").unwrap().rules.is_empty());
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "read:x",              // missing kind
            "munch:*:eintr",       // unknown op
            "read:*:explode",      // unknown kind
            "read:*:enospc",       // kind/op mismatch
            "open:*:flip=3",       // kind/op mismatch
            "read:*:eintr@0",      // zero count
            "read:*:flip=notanum", // bad offset
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn eintr_is_retried_transparently_and_counted() {
        let stats = ReadStats::new();
        let p = plan("read:*:eintr@5");
        let mut f = fault_file(b"hello world", Some(p.clone()), Some(stats.clone()));
        let mut out = Vec::new();
        f.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"hello world");
        assert_eq!(stats.io_retries(), 5, "every injected EINTR is counted");
        assert_eq!(p.fired_count(), 5);
    }

    #[test]
    fn short_reads_are_absorbed_by_the_fill_loop() {
        let stats = ReadStats::new();
        let data: Vec<u8> = (0..200u8).collect();
        let mut f = fault_file(&data, Some(plan("read:*:short@4")), Some(stats.clone()));
        let mut out = Vec::new();
        f.read_to_end(&mut out).unwrap();
        assert_eq!(out, data, "short reads never lose bytes");
        assert!(stats.io_retries() >= 1);
    }

    #[test]
    fn truncation_ends_the_stream_at_byte_n() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut f = fault_file(&data, Some(plan("read:*:truncate=37")), None);
        let mut out = Vec::new();
        f.read_to_end(&mut out).unwrap();
        assert_eq!(out, &data[..37]);
    }

    #[test]
    fn bit_flip_lands_on_the_requested_byte_only() {
        let data = vec![0u8; 64];
        let p = plan("read:*:flip=20");
        let mut f = fault_file(&data, Some(p.clone()), None);
        let mut out = Vec::new();
        f.read_to_end(&mut out).unwrap();
        let diffs: Vec<usize> = (0..64).filter(|&i| out[i] != 0).collect();
        assert_eq!(diffs, vec![20], "exactly byte 20 differs");
        assert_eq!(out[20].count_ones(), 1, "exactly one bit flipped");
        assert_eq!(p.fired_count(), 1);
    }

    #[test]
    fn seeds_pick_different_bits_deterministically() {
        let read = |seed: u64| {
            let p = Arc::new(FaultPlan::parse("read:*:flip=0").unwrap().with_seed(seed));
            let mut f = fault_file(&[0u8; 4], Some(p), None);
            let mut out = Vec::new();
            f.read_to_end(&mut out).unwrap();
            out[0]
        };
        assert_eq!(read(1), read(1), "same seed, same bit");
        let distinct: std::collections::BTreeSet<u8> = (0..16).map(read).collect();
        assert!(distinct.len() > 1, "seeds vary the flipped bit");
    }

    #[test]
    fn open_failure_is_injected_once() {
        let p = plan("open:data:fail");
        let dir = ind_testkit::TempDir::new("fault-open");
        let path = dir.join("data.bin");
        std::fs::write(&path, b"x").unwrap();
        let denied = check_open(&path, Some(&p));
        assert!(denied.is_err());
        assert!(
            denied.unwrap_err().to_string().contains("data.bin"),
            "the error names the file"
        );
        assert!(check_open(&path, Some(&p)).is_ok(), "fires only once");
    }

    #[test]
    fn enospc_fails_the_write_with_the_real_errno() {
        let dir = ind_testkit::TempDir::new("fault-write");
        let path = dir.join("out.bin");
        let mut file = std::fs::File::create(&path).unwrap();
        let p = plan("write:out:enospc");
        let e = write_all(&mut file, b"abc", &path, Some(&p), None).unwrap_err();
        // Path annotation wraps the raw errno, but the kind survives.
        assert_eq!(e.kind(), io::Error::from_raw_os_error(28).kind(), "ENOSPC");
        assert!(e.to_string().contains("out.bin"));
        assert!(
            e.to_string().contains("No space left"),
            "the OS error text survives annotation: {e}"
        );
        // The budgeted rule is spent: the next write succeeds.
        write_all(&mut file, b"abc", &path, Some(&p), None).unwrap();
    }

    #[test]
    fn write_eintr_is_retried_and_counted() {
        let dir = ind_testkit::TempDir::new("fault-write-eintr");
        let path = dir.join("out.bin");
        let mut file = std::fs::File::create(&path).unwrap();
        let stats = ReadStats::new();
        let p = plan("write:*:eintr@2");
        write_all(&mut file, b"abc", &path, Some(&p), Some(&stats)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"abc");
        assert_eq!(stats.io_retries(), 2);
    }

    #[test]
    fn crash_tears_the_nth_write_and_kills_the_path() {
        let dir = ind_testkit::TempDir::new("fault-crash");
        let path = dir.join("out.tmp");
        let mut file = std::fs::File::create(&path).unwrap();
        let p = plan("write:out:crash=3");
        write_all(&mut file, b"aaaa", &path, Some(&p), None).unwrap();
        write_all(&mut file, b"bbbb", &path, Some(&p), None).unwrap();
        let e = write_all(&mut file, b"cccc", &path, Some(&p), None).unwrap_err();
        assert!(e.to_string().contains("injected crash"), "{e}");
        // The third write tore mid-buffer: half of it reached the file.
        assert_eq!(std::fs::read(&path).unwrap(), b"aaaabbbbcc");
        // The path is dead: writes and fsyncs both fail from here on.
        let e = write_all(&mut file, b"dddd", &path, Some(&p), None).unwrap_err();
        assert!(e.to_string().contains("injected crash"));
        let e = sync_all(&file, &path, Some(&p)).unwrap_err();
        assert!(e.to_string().contains("injected crash"));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"aaaabbbbcc",
            "no more bytes land"
        );
        // Unrelated paths are untouched.
        let other = dir.join("other.bin");
        let mut other_file = std::fs::File::create(&other).unwrap();
        write_all(&mut other_file, b"ok", &other, Some(&p), None).unwrap();
    }

    #[test]
    fn fsync_failure_is_injected_once_and_named() {
        let dir = ind_testkit::TempDir::new("fault-fsync");
        let path = dir.join("out.bin");
        let file = std::fs::File::create(&path).unwrap();
        let p = plan("fsync:out:fail");
        let e = sync_all(&file, &path, Some(&p)).unwrap_err();
        assert!(e.to_string().contains("injected fsync failure"), "{e}");
        assert!(e.to_string().contains("out.bin"));
        sync_all(&file, &path, Some(&p)).unwrap();
        // Directory syncs consult the same rules.
        let p = plan("fsync:fault-fsync:fail");
        assert!(sync_dir(dir.path(), Some(&p)).is_err());
        sync_dir(dir.path(), Some(&p)).unwrap();
    }

    #[test]
    fn crash_syntax_is_validated() {
        assert!(FaultPlan::parse("write:*:crash=1").is_ok());
        assert!(FaultPlan::parse("write:*:crash=0").is_err(), "N >= 1");
        assert!(FaultPlan::parse("read:*:crash=2").is_err(), "write-only");
        assert!(FaultPlan::parse("fsync:*:eintr").is_err(), "fail-only");
    }

    #[test]
    fn rules_only_match_their_paths() {
        let p = plan("read:other-file:eintr@1000");
        let mut f = fault_file(b"abc", Some(p.clone()), None);
        let mut out = Vec::new();
        f.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abc");
        assert_eq!(p.fired_count(), 0, "non-matching rules never fire");
    }
}
