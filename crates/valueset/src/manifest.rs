//! The durable export manifest: one `MANIFEST.json` per workdir recording,
//! for every exported attribute, the content hash of its source column,
//! the value file's byte size, its record count, and the on-disk format
//! version.
//!
//! Together with atomic value-file publication (tmp + rename + directory
//! fsync, [`crate::ValueFileWriter::create_atomic_with_options`]) the
//! manifest makes an interrupted export *resumable*: on `--resume` the
//! export sweeps orphaned `.tmp` files, verifies each manifest entry
//! against its file's self-verifying footer, and re-exports only what is
//! missing or invalid. The manifest itself is published with the same
//! tmp + rename + fsync protocol, so a reader never observes a torn
//! manifest — at worst a missing one, which merely disables reuse.
//!
//! This file is also the seam for a future content-addressed store: every
//! entry already carries a source-content hash, so exports keyed by hash
//! instead of attribute id are a rename away.

use crate::error::{Result, ValueSetError};
use ind_storage::{DataType, Value};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// File name of the manifest inside an export workdir.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Manifest schema version (bump on incompatible layout changes; readers
/// reject other versions, which simply disables reuse).
const MANIFEST_VERSION: u64 = 1;

/// One exported attribute's durable record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Value file name relative to the workdir (`attr-00042.indv`).
    pub file: String,
    /// Dense attribute id.
    pub id: u32,
    /// Owning table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Declared column type.
    pub data_type: DataType,
    /// Rows in the owning table.
    pub rows: u64,
    /// Non-null occurrences, `|v(a)|`.
    pub non_null: u64,
    /// Distinct values, `|s(a)|`.
    pub distinct: u64,
    /// Smallest canonical value (hex-encoded on disk), if any.
    pub min: Option<Vec<u8>>,
    /// Largest canonical value (hex-encoded on disk), if any.
    pub max: Option<Vec<u8>>,
    /// Byte size of the value file, recorded at write time.
    pub file_bytes: u64,
    /// Records in the value file (its footer count).
    pub records: u64,
    /// On-disk format version of the value file.
    pub format_version: u32,
    /// FNV-1a hash of the source column's canonical bytes (nulls
    /// included as markers), so stale files are detected when the input
    /// data changes between runs.
    pub source_hash: u64,
}

/// The parsed (or in-construction) manifest of one export workdir.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    entries: Vec<ManifestEntry>,
}

/// 64-bit FNV-1a, the workspace's no-dependency content hash.
#[derive(Debug, Clone)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Content hash of one source column: every cell in row order, nulls as
/// a marker byte, non-nulls as their length-prefixed canonical rendering
/// (the exact bytes the export writes). Deterministic across runs and
/// thread counts by construction.
pub(crate) fn hash_column(column: &[Value]) -> u64 {
    let mut hash = Fnv1a::new();
    let mut buf = Vec::new();
    for value in column {
        if value.is_null() {
            hash.update(&[0xFF]);
        } else {
            buf.clear();
            value.render_canonical(&mut buf);
            hash.update(&(buf.len() as u64).to_le_bytes());
            hash.update(&buf);
        }
    }
    hash.finish()
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        // lint: allow(no_unwrap) — fmt writes into a String are infallible
        write!(out, "{b:02x}").expect("write to String cannot fail");
    }
    out
}

fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(text.len() / 2);
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// JSON string escaping for the hand-rolled renderer.
fn escape_json(text: &str, out: &mut String) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // lint: allow(no_unwrap) — fmt writes into a String are infallible
                write!(out, "\\u{:04x}", c as u32).expect("write to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl ManifestEntry {
    fn render(&self, out: &mut String) {
        out.push_str("    {\"file\": ");
        escape_json(&self.file, out);
        // lint: allow(no_unwrap) — fmt writes into a String are infallible
        write!(out, ", \"id\": {}, \"table\": ", self.id).expect("write to String cannot fail");
        escape_json(&self.table, out);
        out.push_str(", \"column\": ");
        escape_json(&self.column, out);
        out.push_str(", \"data_type\": ");
        escape_json(self.data_type.name(), out);
        write!(
            out,
            ", \"rows\": {}, \"non_null\": {}, \"distinct\": {}",
            self.rows, self.non_null, self.distinct
        )
        // lint: allow(no_unwrap) — fmt writes into a String are infallible
        .expect("write to String cannot fail");
        for (key, bound) in [("min", &self.min), ("max", &self.max)] {
            match bound {
                Some(bytes) => {
                    write!(out, ", \"{key}\": \"{}\"", hex_encode(bytes))
                        // lint: allow(no_unwrap) — fmt writes into a String are infallible
                        .expect("write to String cannot fail");
                }
                None => {
                    // lint: allow(no_unwrap) — fmt writes into a String are infallible
                    write!(out, ", \"{key}\": null").expect("write to String cannot fail");
                }
            }
        }
        write!(
            out,
            ", \"file_bytes\": {}, \"records\": {}, \"format_version\": {}, \"source_hash\": {}}}",
            self.file_bytes, self.records, self.format_version, self.source_hash
        )
        // lint: allow(no_unwrap) — fmt writes into a String are infallible
        .expect("write to String cannot fail");
    }

    fn from_json(json: &ind_trace::json::Json) -> Option<ManifestEntry> {
        let bound = |key: &str| -> Option<Option<Vec<u8>>> {
            match json.get(key)? {
                ind_trace::json::Json::Null => Some(None),
                other => Some(Some(hex_decode(other.as_str()?)?)),
            }
        };
        Some(ManifestEntry {
            file: json.get("file")?.as_str()?.to_string(),
            id: u32::try_from(json.get("id")?.as_u64()?).ok()?,
            table: json.get("table")?.as_str()?.to_string(),
            column: json.get("column")?.as_str()?.to_string(),
            data_type: DataType::from_name(json.get("data_type")?.as_str()?)?,
            rows: json.get("rows")?.as_u64()?,
            non_null: json.get("non_null")?.as_u64()?,
            distinct: json.get("distinct")?.as_u64()?,
            min: bound("min")?,
            max: bound("max")?,
            file_bytes: json.get("file_bytes")?.as_u64()?,
            records: json.get("records")?.as_u64()?,
            format_version: u32::try_from(json.get("format_version")?.as_u64()?).ok()?,
            source_hash: json.get("source_hash")?.as_u64()?,
        })
    }
}

impl Manifest {
    /// An empty manifest.
    pub fn new() -> Self {
        Manifest::default()
    }

    /// Entries, sorted by file name.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// The entry for `file`, if recorded.
    pub fn get(&self, file: &str) -> Option<&ManifestEntry> {
        self.entries
            .binary_search_by(|e| e.file.as_str().cmp(file))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Inserts or replaces the entry for `entry.file`.
    pub fn upsert(&mut self, entry: ManifestEntry) {
        match self
            .entries
            .binary_search_by(|e| e.file.as_str().cmp(entry.file.as_str()))
        {
            Ok(i) => self.entries[i] = entry,
            Err(i) => self.entries.insert(i, entry),
        }
    }

    /// Drops the entry for `file`, if present (the file was quarantined
    /// or deleted; a stale claim would only cost a failed validation on
    /// the next resume, but dropping it keeps the manifest honest).
    pub fn remove(&mut self, file: &str) {
        if let Ok(i) = self.entries.binary_search_by(|e| e.file.as_str().cmp(file)) {
            self.entries.remove(i);
        }
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the manifest as JSON (one entry per line, keys in a fixed
    /// order, entries sorted by file name — byte-deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write!(
            out,
            "{{\n  \"manifest_version\": {MANIFEST_VERSION},\n  \"entries\": ["
        )
        // lint: allow(no_unwrap) — fmt writes into a String are infallible
        .expect("write to String cannot fail");
        for (i, entry) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            entry.render(&mut out);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a manifest document; `None` for anything malformed or of
    /// another manifest version (which merely disables reuse — a manifest
    /// is an optimization record, never a source of truth over footers).
    pub fn from_json(text: &str) -> Option<Manifest> {
        let json = match ind_trace::json::parse(text) {
            Ok(json) => json,
            Err(_) => return None,
        };
        if json.get("manifest_version")?.as_u64()? != MANIFEST_VERSION {
            return None;
        }
        let mut entries = Vec::new();
        for item in json.get("entries")?.as_arr()? {
            entries.push(ManifestEntry::from_json(item)?);
        }
        entries.sort_by(|a, b| a.file.cmp(&b.file));
        entries.dedup_by(|a, b| a.file == b.file);
        Some(Manifest { entries })
    }

    /// Loads the manifest of `dir`; `None` when absent or invalid.
    pub fn load(dir: &Path) -> Option<Manifest> {
        let text = match std::fs::read_to_string(dir.join(MANIFEST_NAME)) {
            Ok(text) => text,
            // Missing or unreadable only disables reuse.
            Err(_) => return None,
        };
        Manifest::from_json(&text)
    }

    /// Publishes the manifest durably: written to `MANIFEST.json.tmp`,
    /// fsynced, renamed into place, directory fsynced — the same protocol
    /// as the value files, so a crash at any point leaves either the
    /// previous manifest or the new one, never a torn hybrid. All writes
    /// and fsyncs go through the fault layer.
    pub fn store(&self, dir: &Path, fault: Option<&Arc<crate::fault::FaultPlan>>) -> Result<()> {
        let final_path = dir.join(MANIFEST_NAME);
        let tmp = crate::format::tmp_path(&final_path);
        crate::fault::check_open(&tmp, fault)?;
        let mut file = crate::fault::create_file(&tmp)?;
        crate::fault::write_all(&mut file, self.to_json().as_bytes(), &tmp, fault, None)?;
        crate::fault::sync_all(&file, &tmp, fault)?;
        std::fs::rename(&tmp, &final_path)
            .map_err(|e| ValueSetError::Io(crate::fault::annotate(&tmp, e)))?;
        crate::fault::sync_dir(dir, fault)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_testkit::TempDir;

    fn entry(file: &str, id: u32) -> ManifestEntry {
        ManifestEntry {
            file: file.to_string(),
            id,
            table: "t".to_string(),
            column: format!("c{id}"),
            data_type: DataType::Integer,
            rows: 10,
            non_null: 9,
            distinct: 7,
            min: Some(b"1".to_vec()),
            max: Some(b"99".to_vec()),
            file_bytes: 1234,
            records: 7,
            format_version: 2,
            source_hash: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let mut m = Manifest::new();
        m.upsert(entry("attr-00001.indv", 1));
        m.upsert(entry("attr-00000.indv", 0));
        let mut odd = entry("attr-00002.indv", 2);
        odd.min = None;
        odd.max = None;
        odd.table = "we\"ird\\tab\nle".to_string();
        odd.data_type = DataType::Text;
        m.upsert(odd);
        let parsed = Manifest::from_json(&m.to_json()).expect("round trip");
        assert_eq!(parsed.entries(), m.entries());
        assert_eq!(parsed.get("attr-00001.indv").unwrap().id, 1);
        assert!(parsed.get("attr-00009.indv").is_none());
    }

    #[test]
    fn upsert_replaces_by_file_name() {
        let mut m = Manifest::new();
        m.upsert(entry("attr-00000.indv", 0));
        let mut replacement = entry("attr-00000.indv", 0);
        replacement.distinct = 99;
        m.upsert(replacement);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("attr-00000.indv").unwrap().distinct, 99);
    }

    #[test]
    fn malformed_documents_disable_reuse() {
        assert!(Manifest::from_json("").is_none());
        assert!(Manifest::from_json("{}").is_none());
        assert!(Manifest::from_json("{\"manifest_version\": 999, \"entries\": []}").is_none());
        assert!(
            Manifest::from_json("{\"manifest_version\": 1, \"entries\": [{\"file\": 3}]}")
                .is_none()
        );
        assert!(Manifest::load(Path::new("/nonexistent")).is_none());
    }

    #[test]
    fn store_publishes_atomically_and_loads_back() {
        let dir = TempDir::new("manifest-store");
        let mut m = Manifest::new();
        m.upsert(entry("attr-00000.indv", 0));
        m.store(dir.path(), None).unwrap();
        assert!(dir.join(MANIFEST_NAME).exists());
        assert!(!dir.join("MANIFEST.json.tmp").exists(), "tmp renamed away");
        let loaded = Manifest::load(dir.path()).expect("loads");
        assert_eq!(loaded.entries(), m.entries());

        // Re-store with more entries: replaces, still no tmp left behind.
        m.upsert(entry("attr-00001.indv", 1));
        m.store(dir.path(), None).unwrap();
        assert_eq!(Manifest::load(dir.path()).unwrap().len(), 2);
        assert!(!dir.join("MANIFEST.json.tmp").exists());
    }

    #[test]
    fn injected_fsync_failure_surfaces_on_store() {
        let dir = TempDir::new("manifest-fsync");
        let plan = Arc::new(crate::fault::FaultPlan::parse("fsync:MANIFEST:fail").unwrap());
        let mut m = Manifest::new();
        m.upsert(entry("attr-00000.indv", 0));
        let err = m.store(dir.path(), Some(&plan)).expect_err("fsync fails");
        assert!(err.to_string().contains("injected fsync"), "{err}");
        assert!(
            Manifest::load(dir.path()).is_none(),
            "a failed publish leaves no manifest under the final name"
        );
    }

    #[test]
    fn column_hash_tracks_content_not_layout() {
        use ind_storage::Value;
        let a = vec![Value::Integer(1), Value::Null, Value::from("xy")];
        let b = vec![Value::Integer(1), Value::Null, Value::from("xy")];
        assert_eq!(hash_column(&a), hash_column(&b));
        let c = vec![Value::Integer(1), Value::Null, Value::from("xz")];
        assert_ne!(hash_column(&a), hash_column(&c));
        // Length prefixes keep concatenation ambiguity out of the hash.
        let d = vec![Value::from("ab"), Value::from("c")];
        let e = vec![Value::from("a"), Value::from("bc")];
        assert_ne!(hash_column(&d), hash_column(&e));
        assert_ne!(
            hash_column(&[Value::Null]),
            hash_column(&[] as &[Value]),
            "nulls are part of the content"
        );
    }
}
