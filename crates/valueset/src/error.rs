//! Errors for the value-set substrate.

use std::fmt;

/// Errors produced while writing, reading, or managing value sets.
#[derive(Debug)]
pub enum ValueSetError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A value file is malformed (bad magic, truncated record, …).
    Corrupt {
        /// File (or description) that failed.
        context: String,
        /// What was wrong.
        detail: String,
    },
    /// Values were appended out of order or duplicated.
    Unsorted {
        /// File being written.
        context: String,
    },
    /// The open-file budget would be exceeded.
    ///
    /// This is the failure mode the paper hit on the 2.7 GB PDB fraction:
    /// "we had to open 2560 files, which is not feasible for our system"
    /// (Sec. 4.2).
    FileBudgetExceeded {
        /// Configured maximum number of simultaneously open value files.
        budget: usize,
    },
    /// An attribute id was out of range for the provider.
    UnknownAttribute(u32),
    /// The run was cancelled cooperatively (deadline, SIGINT, or an
    /// explicit [`CancelToken`](crate::CancelToken)) while in `phase`.
    Cancelled {
        /// The pipeline phase that observed the cancellation.
        phase: &'static str,
    },
    /// Propagated storage error (during extraction).
    Storage(ind_storage::StorageError),
}

impl fmt::Display for ValueSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueSetError::Io(e) => write!(f, "I/O error: {e}"),
            ValueSetError::Corrupt { context, detail } => {
                write!(f, "corrupt value file {context}: {detail}")
            }
            ValueSetError::Unsorted { context } => write!(
                f,
                "values for {context} are not strictly increasing (sorted and distinct)"
            ),
            ValueSetError::FileBudgetExceeded { budget } => {
                write!(f, "open-file budget of {budget} value files exceeded")
            }
            ValueSetError::UnknownAttribute(id) => write!(f, "unknown attribute id {id}"),
            ValueSetError::Cancelled { phase } => write!(f, "cancelled during {phase}"),
            ValueSetError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ValueSetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValueSetError::Io(e) => Some(e),
            ValueSetError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ValueSetError {
    fn from(e: std::io::Error) -> Self {
        ValueSetError::Io(e)
    }
}

impl From<ind_storage::StorageError> for ValueSetError {
    fn from(e: ind_storage::StorageError) -> Self {
        ValueSetError::Storage(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ValueSetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = ValueSetError::FileBudgetExceeded { budget: 7 };
        assert!(e.to_string().contains('7'));
        let e = ValueSetError::Unsorted {
            context: "attr-3".into(),
        };
        assert!(e.to_string().contains("attr-3"));
        let e = ValueSetError::UnknownAttribute(42);
        assert!(e.to_string().contains("42"));
        let e = ValueSetError::Cancelled { phase: "export" };
        assert!(e.to_string().contains("cancelled during export"));
    }
}
