//! Cooperative cancellation: a shared-atomic [`CancelToken`] checked at
//! block-fill and heap-pop granularity by every engine and the export
//! pipeline.
//!
//! A token is driven three ways: explicitly ([`CancelToken::cancel`]),
//! by a wall-clock deadline ([`CancelToken::with_deadline`], the CLI's
//! `--deadline`), or by SIGINT once [`CancelToken::watch_sigint`] has
//! armed the process-wide handler. Deterministic tests use
//! [`CancelToken::cancel_after`], which fires on the Nth poll regardless
//! of timing.
//!
//! Checks are designed for hot loops: one relaxed load when nothing has
//! fired, with the deadline clock read only every [`DEADLINE_STRIDE`]
//! polls. Besides the explicit token carried by
//! [`IoOptions`](crate::IoOptions), a thread-local *ambient* slot
//! ([`set_ambient`] / [`check_ambient`]) lets the engines poll without
//! changing their public signatures; worker threads re-install the
//! ambient token captured by their spawner.

use crate::error::{Result, ValueSetError};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Deadline polls between wall-clock reads: cheap enough for per-record
/// loops, tight enough that expiry is noticed within a few microseconds
/// of work.
const DEADLINE_STRIDE: u64 = 32;

/// Recovers a poisoned mutex: the guarded state (the first cancelled
/// phase) is a plain label, valid regardless of a panicking holder.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Fires cancellation when a poll decrements it to zero (tests).
    countdown: Option<AtomicU64>,
    /// Polls since the last deadline clock read.
    probes: AtomicU64,
    /// When set, polls also observe the process-wide SIGINT flag.
    sigint: AtomicBool,
    /// The first phase that observed cancellation (for run reports).
    phase: Mutex<Option<&'static str>>,
}

impl Inner {
    fn with(deadline: Option<Instant>, countdown: Option<u64>) -> Arc<Self> {
        Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline,
            countdown: countdown.map(AtomicU64::new),
            probes: AtomicU64::new(0),
            sigint: AtomicBool::new(false),
            phase: Mutex::new(None),
        })
    }
}

/// A shared cancellation flag. Cloning is cheap and every clone observes
/// the same state, so one token fans out to worker threads, cursors, and
/// writers alike.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only fires when [`cancel`](Self::cancel) is called
    /// (or SIGINT arrives, once [`watch_sigint`](Self::watch_sigint) is
    /// armed).
    pub fn new() -> Self {
        CancelToken {
            inner: Inner::with(None, None),
        }
    }

    /// A token that fires once `budget` of wall clock has elapsed.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Inner::with(Some(Instant::now() + budget), None),
        }
    }

    /// A token that fires on the `polls`-th poll — deterministic
    /// interruption for tests (`polls == 0` fires immediately).
    pub fn cancel_after(polls: u64) -> Self {
        CancelToken {
            inner: Inner::with(None, Some(polls)),
        }
    }

    /// Arms the process-wide SIGINT handler and makes this token observe
    /// it: the first Ctrl-C cancels the run instead of killing the
    /// process. Idempotent.
    pub fn watch_sigint(&self) {
        sigint::install();
        self.inner.sigint.store(true, Ordering::Relaxed);
    }

    /// Fires the token. All clones observe it on their next poll.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Polls the token. One relaxed load in the common (live) case; the
    /// deadline clock is read every [`DEADLINE_STRIDE`] polls.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        self.poll_slow()
    }

    #[cold]
    fn poll_slow(&self) -> bool {
        if self.inner.sigint.load(Ordering::Relaxed) && sigint::seen() {
            self.cancel();
            return true;
        }
        if let Some(countdown) = &self.inner.countdown {
            // Wraps once fired, which is harmless: the latch above wins.
            if countdown.fetch_sub(1, Ordering::Relaxed) <= 1 {
                self.cancel();
                return true;
            }
        }
        if let Some(deadline) = self.inner.deadline {
            let probe = self.inner.probes.fetch_add(1, Ordering::Relaxed);
            if probe.is_multiple_of(DEADLINE_STRIDE) && Instant::now() >= deadline {
                self.cancel();
                return true;
            }
        }
        false
    }

    /// Polls and converts a fired token into
    /// [`ValueSetError::Cancelled`], recording `phase` as the point the
    /// run stopped if it is the first to observe it.
    #[inline]
    pub fn check(&self, phase: &'static str) -> Result<()> {
        if self.is_cancelled() {
            let mut slot = lock(&self.inner.phase);
            if slot.is_none() {
                *slot = Some(phase);
            }
            return Err(ValueSetError::Cancelled { phase });
        }
        Ok(())
    }

    /// The first phase that observed cancellation, if any.
    pub fn phase(&self) -> Option<&'static str> {
        *lock(&self.inner.phase)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

thread_local! {
    static AMBIENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Restores the previous ambient token on drop (see [`set_ambient`]).
#[derive(Debug)]
pub struct AmbientGuard {
    prev: Option<CancelToken>,
    restored: bool,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        if !self.restored {
            self.restored = true;
            let prev = self.prev.take();
            AMBIENT.with(|slot| *slot.borrow_mut() = prev);
        }
    }
}

/// Installs `token` as this thread's ambient cancellation token for the
/// lifetime of the returned guard. Engines poll it via [`check_ambient`]
/// without threading a token through their signatures; worker threads
/// re-install the token their spawner captured with [`ambient`].
pub fn set_ambient(token: Option<CancelToken>) -> AmbientGuard {
    let prev = AMBIENT.with(|slot| std::mem::replace(&mut *slot.borrow_mut(), token));
    AmbientGuard {
        prev,
        restored: false,
    }
}

/// The current thread's ambient token, if one is installed — capture it
/// before spawning workers and re-install it inside each.
pub fn ambient() -> Option<CancelToken> {
    AMBIENT.with(|slot| slot.borrow().clone())
}

/// Polls the ambient token (no-op when none is installed).
#[inline]
pub fn check_ambient(phase: &'static str) -> Result<()> {
    AMBIENT.with(|slot| match slot.borrow().as_ref() {
        Some(token) => token.check(phase),
        None => Ok(()),
    })
}

#[cfg(unix)]
mod sigint {
    //! Raw SIGINT plumbing: one process-wide flag set by an
    //! async-signal-safe handler, installed at most once.

    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Once;

    static SEEN: AtomicBool = AtomicBool::new(false);
    static INSTALL: Once = Once::new();

    /// POSIX `SIGINT` (identical on every Unix this workspace targets).
    const SIGINT: i32 = 2;

    extern "C" fn on_sigint(_signum: i32) {
        // A relaxed store is async-signal-safe: no allocation, no locks.
        SEEN.store(true, Ordering::Relaxed);
    }

    extern "C" {
        // POSIX `signal(2)`; declared directly to avoid a libc dependency
        // (the workspace vendors no crates beyond its four stand-ins).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub(super) fn seen() -> bool {
        SEEN.load(Ordering::Relaxed)
    }

    pub(super) fn install() {
        INSTALL.call_once(|| {
            // SAFETY: `signal` is the POSIX C API; the handler only
            // performs a relaxed atomic store, which is async-signal-safe,
            // and the function pointer cast matches the C signature.
            unsafe {
                signal(SIGINT, on_sigint as *const () as usize);
            }
        });
    }
}

#[cfg(not(unix))]
mod sigint {
    //! Non-Unix stub: SIGINT watching becomes a no-op.

    pub(super) fn seen() -> bool {
        false
    }

    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_latches_for_all_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(clone.check("merge").is_ok());
        token.cancel();
        assert!(clone.is_cancelled());
        let err = clone.check("merge").expect_err("fired");
        assert!(matches!(err, ValueSetError::Cancelled { phase: "merge" }));
        assert_eq!(token.phase(), Some("merge"));
    }

    #[test]
    fn first_observed_phase_sticks() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.check("export").is_err());
        assert!(token.check("merge").is_err());
        assert_eq!(token.phase(), Some("export"));
    }

    #[test]
    fn countdown_fires_on_the_nth_poll() {
        let token = CancelToken::cancel_after(3);
        assert!(!token.is_cancelled());
        assert!(!token.is_cancelled());
        assert!(token.is_cancelled(), "third poll fires");
        assert!(token.is_cancelled(), "and it latches");
    }

    #[test]
    fn zero_countdown_fires_immediately() {
        let token = CancelToken::cancel_after(0);
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_in_the_past_fires() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.is_cancelled());
        assert!(token.check("export").is_err());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        for _ in 0..200 {
            assert!(!token.is_cancelled());
        }
    }

    #[test]
    fn ambient_slot_installs_nests_and_restores() {
        assert!(check_ambient("merge").is_ok(), "empty slot is a no-op");
        let outer = CancelToken::new();
        let guard = set_ambient(Some(outer.clone()));
        assert!(ambient().is_some());
        {
            let inner = CancelToken::new();
            inner.cancel();
            let nested = set_ambient(Some(inner));
            assert!(check_ambient("export").is_err());
            drop(nested);
        }
        assert!(check_ambient("export").is_ok(), "outer token is live");
        outer.cancel();
        assert!(check_ambient("merge").is_err());
        drop(guard);
        assert!(check_ambient("merge").is_ok(), "slot restored to empty");
    }

    #[test]
    fn ambient_token_crosses_threads_by_capture() {
        let token = CancelToken::new();
        token.cancel();
        let _guard = set_ambient(Some(token));
        let captured = ambient().expect("captured");
        let observed = std::thread::spawn(move || {
            let _worker = set_ambient(Some(captured));
            check_ambient("merge").is_err()
        })
        .join()
        .expect("worker");
        assert!(observed, "worker sees the spawner's cancellation");
    }
}
