//! Order-preserving tuple encoding for composite value streams.
//!
//! The n-ary discovery levels export *tuples* of canonical values — one
//! entry per row, one component per attribute of a composite candidate —
//! through the same sorted-value-file machinery the unary pipeline uses.
//! That machinery (the external sorter, [`crate::ValueFileWriter`]'s
//! strictly-increasing invariant, the zero-copy block cursors, and the
//! SPIDER heap merge) compares entries **byte-wise**, so the encoding must
//! guarantee
//!
//! ```text
//! encode(t) <  encode(u)  ⇔  t <lex u        (component-wise lexicographic)
//! encode(t) == encode(u)  ⇔  t == u          (injectivity / round-trip)
//! ```
//!
//! A naive length-prefix-per-component encoding does **not** have the first
//! property: big-endian prefixes compare `("b")` before `("ab")` because
//! `1 < 2` wins before any data byte is seen. Instead each component is
//! written with an escape for the zero byte and closed with a two-byte
//! terminator, the classic memcomparable construction:
//!
//! * data byte `0x00` → `0x00 0xFF`;
//! * any other data byte → itself;
//! * end of component → `0x00 0x01`.
//!
//! The terminator's second byte (`0x01`) is smaller than every byte that
//! can follow a literal `0x00` inside a component (`0xFF`) and the
//! terminator's first byte (`0x00`) is smaller than every unescaped data
//! byte (`≥ 0x01`), so a component that is a proper prefix of another sorts
//! first — exactly the lexicographic rule. Decoding scans for `0x00` and
//! branches on the byte after it, so the encoding is self-delimiting and
//! the round trip is exact for arbitrary binary components, including
//! empty ones.

use crate::error::{Result, ValueSetError};

/// Escape introducer and terminator lead byte.
const LEAD: u8 = 0x00;
/// Second byte of an escaped literal `0x00`.
const ESCAPED_ZERO: u8 = 0xFF;
/// Second byte of a component terminator.
const TERMINATOR: u8 = 0x01;

/// Appends the order-preserving encoding of `components` to `out`.
///
/// Byte-wise comparison of two encodings of equal arity equals
/// lexicographic comparison of the component sequences; see the module
/// docs for the construction and [`decode_tuple`] for the inverse.
pub fn encode_tuple_into(components: &[&[u8]], out: &mut Vec<u8>) {
    for component in components {
        for &b in *component {
            if b == LEAD {
                out.push(LEAD);
                out.push(ESCAPED_ZERO);
            } else {
                out.push(b);
            }
        }
        out.push(LEAD);
        out.push(TERMINATOR);
    }
}

/// [`encode_tuple_into`] returning a fresh vector.
pub fn encode_tuple(components: &[&[u8]]) -> Vec<u8> {
    // Worst case doubles every byte; the common case is +2 per component.
    let mut out = Vec::with_capacity(components.iter().map(|c| c.len() + 2).sum::<usize>());
    encode_tuple_into(components, &mut out);
    out
}

/// Decodes an encoded tuple back into its components. The exact inverse of
/// [`encode_tuple`]: rejects truncated escapes, unknown escape bytes, and
/// trailing bytes after the final terminator.
pub fn decode_tuple(bytes: &[u8]) -> Result<Vec<Vec<u8>>> {
    let corrupt = |detail: &str| ValueSetError::Corrupt {
        context: "tuple encoding".into(),
        detail: detail.into(),
    };
    // lint: allow(hot_alloc) — decode_tuple is the test/verification inverse; the export path uses encode_tuple_into
    let mut components = Vec::new();
    // lint: allow(hot_alloc) — decode-side only, see above
    let mut current = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b != LEAD {
            current.push(b);
            i += 1;
            continue;
        }
        match bytes.get(i + 1) {
            Some(&ESCAPED_ZERO) => current.push(LEAD),
            Some(&TERMINATOR) => components.push(std::mem::take(&mut current)),
            Some(&other) => {
                // lint: allow(hot_alloc) — cold corrupt-input error path
                return Err(corrupt(&format!("invalid escape byte 0x{other:02x}")));
            }
            None => return Err(corrupt("truncated escape at end of tuple")),
        }
        i += 2;
    }
    if !current.is_empty() {
        return Err(corrupt("trailing bytes after the last terminator"));
    }
    Ok(components)
}

/// Number of components in an encoded tuple without materialising them.
pub fn tuple_arity(bytes: &[u8]) -> Result<usize> {
    decode_tuple(bytes).map(|c| c.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(components: &[&[u8]]) -> Vec<u8> {
        encode_tuple(components)
    }

    #[test]
    fn round_trip_exact() {
        let cases: Vec<Vec<Vec<u8>>> = vec![
            vec![],
            vec![b"".to_vec()],
            vec![b"a".to_vec(), b"b".to_vec()],
            vec![b"".to_vec(), b"".to_vec(), b"".to_vec()],
            vec![vec![0u8], vec![0u8, 0u8], vec![0xFFu8, 0u8, 0x01u8]],
            vec![vec![0u8, 0x01], vec![0x01, 0u8]],
            vec![b"composite key".to_vec(), vec![0u8; 100], vec![0xFF; 50]],
        ];
        for components in cases {
            let refs: Vec<&[u8]> = components.iter().map(Vec::as_slice).collect();
            let encoded = enc(&refs);
            assert_eq!(
                decode_tuple(&encoded).unwrap(),
                components,
                "{components:?}"
            );
            assert_eq!(tuple_arity(&encoded).unwrap(), components.len());
        }
    }

    #[test]
    fn byte_order_equals_tuple_order() {
        // Every pair from a pathological fixture: empty components, shared
        // prefixes, embedded zero/terminator/escape bytes — the cases where
        // naive encodings break.
        let tuples: Vec<Vec<Vec<u8>>> = vec![
            vec![b"".to_vec(), b"".to_vec()],
            vec![b"".to_vec(), b"a".to_vec()],
            vec![vec![0u8], b"".to_vec()],
            vec![vec![0u8, 0u8], b"".to_vec()],
            vec![vec![0u8, 1u8], b"".to_vec()],
            vec![b"a".to_vec(), b"b".to_vec()],
            vec![b"a".to_vec(), vec![0xFFu8]],
            vec![b"ab".to_vec(), b"".to_vec()],
            vec![b"ab".to_vec(), b"b".to_vec()],
            vec![b"b".to_vec(), b"a".to_vec()],
            vec![vec![0xFFu8], b"a".to_vec()],
            vec![vec![0xFFu8, 0u8], b"a".to_vec()],
        ];
        for a in &tuples {
            for b in &tuples {
                let ra: Vec<&[u8]> = a.iter().map(Vec::as_slice).collect();
                let rb: Vec<&[u8]> = b.iter().map(Vec::as_slice).collect();
                assert_eq!(
                    enc(&ra).cmp(&enc(&rb)),
                    a.cmp(b),
                    "encoding must order {a:?} vs {b:?} like the tuples themselves"
                );
            }
        }
    }

    #[test]
    fn length_prefix_counterexample_is_handled() {
        // The case that breaks length-prefixed encodings: ("ab",) < ("b",)
        // lexicographically, but 1 < 2 would order the prefixes the other
        // way round.
        let ab = enc(&[b"ab"]);
        let b = enc(&[b"b"]);
        assert!(ab < b);
    }

    #[test]
    fn corrupt_encodings_are_rejected() {
        assert!(decode_tuple(&[0x00]).is_err(), "truncated escape");
        assert!(decode_tuple(&[0x00, 0x02]).is_err(), "unknown escape");
        assert!(decode_tuple(b"abc").is_err(), "no terminator");
        assert!(
            decode_tuple(&[b'a', 0x00, 0x01, b'b']).is_err(),
            "trailing bytes"
        );
    }

    #[test]
    fn encode_into_appends() {
        let mut buf = vec![9u8];
        encode_tuple_into(&[b"x"], &mut buf);
        assert_eq!(buf[0], 9);
        assert_eq!(decode_tuple(&buf[1..]).unwrap(), vec![b"x".to_vec()]);
    }
}
