//! In-memory value sets, used by tests, property checks, and small runs.

use crate::cursor::{ValueCursor, ValueSetProvider};
use crate::error::{Result, ValueSetError};
use std::sync::Arc;

/// A sorted, duplicate-free value set held in memory. Cheap to clone.
#[derive(Debug, Clone)]
pub struct MemoryValueSet {
    values: Arc<Vec<Vec<u8>>>,
}

impl MemoryValueSet {
    /// Builds a set from arbitrary (unsorted, possibly duplicated) values —
    /// the in-memory analogue of `SELECT DISTINCT … ORDER BY …`.
    pub fn from_unsorted<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Vec<u8>>,
    {
        let mut v: Vec<Vec<u8>> = values.into_iter().map(Into::into).collect();
        v.sort_unstable();
        v.dedup();
        MemoryValueSet {
            values: Arc::new(v),
        }
    }

    /// Wraps values that are already sorted and distinct; validated.
    pub fn from_sorted_distinct(values: Vec<Vec<u8>>) -> Result<Self> {
        for w in values.windows(2) {
            if w[0] >= w[1] {
                return Err(ValueSetError::Unsorted {
                    context: "MemoryValueSet::from_sorted_distinct".into(),
                });
            }
        }
        Ok(MemoryValueSet {
            values: Arc::new(values),
        })
    }

    /// Number of values.
    pub fn len(&self) -> u64 {
        self.values.len() as u64
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A fresh cursor positioned before the first value.
    pub fn cursor(&self) -> MemoryCursor {
        MemoryCursor {
            values: Arc::clone(&self.values),
            pos: 0,
        }
    }

    /// Slice view of the values.
    pub fn as_slice(&self) -> &[Vec<u8>] {
        &self.values
    }
}

/// Cursor over a [`MemoryValueSet`].
#[derive(Debug, Clone)]
pub struct MemoryCursor {
    values: Arc<Vec<Vec<u8>>>,
    /// Number of values already produced; `0` means before the first.
    pos: usize,
}

impl ValueCursor for MemoryCursor {
    fn advance(&mut self) -> Result<bool> {
        if self.pos >= self.values.len() {
            return Ok(false);
        }
        self.pos += 1;
        Ok(true)
    }

    fn seek(&mut self, lower: &[u8]) -> Result<bool> {
        // Binary search instead of the trait's linear scan; `partition_point`
        // over the not-yet-produced suffix keeps seek forward-only.
        let idx = self.pos + self.values[self.pos..].partition_point(|v| v.as_slice() < lower);
        if idx >= self.values.len() {
            self.pos = self.values.len();
            return Ok(false);
        }
        self.pos = idx + 1;
        Ok(true)
    }

    fn current(&self) -> &[u8] {
        debug_assert!(self.pos > 0, "current() before first advance()");
        &self.values[self.pos - 1]
    }

    fn remaining(&self) -> u64 {
        (self.values.len() - self.pos) as u64
    }

    fn len(&self) -> u64 {
        self.values.len() as u64
    }
}

/// A [`ValueSetProvider`] over in-memory sets, indexed by attribute id.
#[derive(Debug, Clone, Default)]
pub struct MemoryProvider {
    sets: Vec<MemoryValueSet>,
}

impl MemoryProvider {
    /// Builds a provider from per-attribute sets; attribute `i`'s id is `i`.
    pub fn new(sets: Vec<MemoryValueSet>) -> Self {
        MemoryProvider { sets }
    }

    /// The set behind attribute `id`.
    pub fn set(&self, id: u32) -> Option<&MemoryValueSet> {
        self.sets.get(id as usize)
    }
}

impl ValueSetProvider for MemoryProvider {
    type Cursor = MemoryCursor;

    fn open(&self, id: u32) -> Result<MemoryCursor> {
        self.sets
            .get(id as usize)
            .map(MemoryValueSet::cursor)
            .ok_or(ValueSetError::UnknownAttribute(id))
    }

    fn attribute_count(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::collect_cursor;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s =
            MemoryValueSet::from_unsorted(["b", "a", "b", "c", "a"].map(|x| x.as_bytes().to_vec()));
        assert_eq!(s.len(), 3);
        assert_eq!(
            collect_cursor(s.cursor()).unwrap(),
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]
        );
    }

    #[test]
    fn from_sorted_distinct_validates() {
        assert!(MemoryValueSet::from_sorted_distinct(vec![b"a".to_vec(), b"a".to_vec()]).is_err());
        assert!(MemoryValueSet::from_sorted_distinct(vec![b"b".to_vec(), b"a".to_vec()]).is_err());
        assert!(MemoryValueSet::from_sorted_distinct(vec![b"a".to_vec(), b"b".to_vec()]).is_ok());
        assert!(MemoryValueSet::from_sorted_distinct(vec![]).is_ok());
    }

    #[test]
    fn cursor_protocol() {
        let s = MemoryValueSet::from_unsorted([b"x".to_vec()]);
        let mut c = s.cursor();
        assert_eq!(c.len(), 1);
        assert_eq!(c.remaining(), 1);
        assert!(c.advance().unwrap());
        assert_eq!(c.current(), b"x");
        assert_eq!(c.remaining(), 0);
        assert!(!c.advance().unwrap());
        assert!(!c.advance().unwrap(), "advance is idempotent at the end");
    }

    #[test]
    fn provider_hands_out_independent_cursors() {
        let p = MemoryProvider::new(vec![
            MemoryValueSet::from_unsorted([b"a".to_vec(), b"b".to_vec()]),
            MemoryValueSet::from_unsorted([b"z".to_vec()]),
        ]);
        assert_eq!(p.attribute_count(), 2);
        let mut c1 = p.open(0).unwrap();
        let mut c2 = p.open(0).unwrap();
        c1.advance().unwrap();
        c1.advance().unwrap();
        c2.advance().unwrap();
        assert_eq!(c1.current(), b"b");
        assert_eq!(c2.current(), b"a", "cursors must not share position");
        assert!(matches!(p.open(9), Err(ValueSetError::UnknownAttribute(9))));
    }
}
