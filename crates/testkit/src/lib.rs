//! Shared test utilities for the spider-ind workspace.
//!
//! The workspace deliberately avoids pulling in `tempfile`; this crate
//! provides a minimal RAII temporary directory built on `std` only.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed on drop.
///
/// ```
/// let dir = ind_testkit::TempDir::new("doctest");
/// assert!(dir.path().exists());
/// ```
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory whose name embeds `label`, the process id,
    /// and a per-process counter, so parallel tests never collide.
    pub fn new(label: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "spider-ind-{label}-{pid}-{n}",
            pid = std::process::id()
        ));
        // lint: allow(no_unwrap) — test fixture: an unusable temp dir should abort the test run loudly
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Convenience join.
    pub fn join(&self, rel: &str) -> PathBuf {
        self.path.join(rel)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // lint: allow(swallowed_result) — Drop cannot return an error; best-effort cleanup is all a temp dir can do
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_dir_is_created_and_removed() {
        let path;
        {
            let dir = TempDir::new("unit");
            path = dir.path().to_path_buf();
            assert!(path.is_dir());
            std::fs::write(dir.join("x.txt"), b"hello").unwrap();
        }
        assert!(!path.exists(), "directory should be removed on drop");
    }

    #[test]
    fn temp_dirs_are_unique() {
        let a = TempDir::new("unique");
        let b = TempDir::new("unique");
        assert_ne!(a.path(), b.path());
    }
}
