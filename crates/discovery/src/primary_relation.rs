//! Primary-relation identification (Sec. 5, heuristic 2).
//!
//! "In the life science domain databases typically contain one major class
//! of data with several annotations" — the primary relation. Heuristic 1
//! narrows the field to relations containing an accession-number candidate;
//! heuristic 2 then picks the relation whose attributes are referenced by
//! the most satisfied INDs.

use crate::accession::{find_accession_candidates, AccessionRules};
use ind_core::Discovery;
use ind_storage::{Database, QualifiedName};
use std::collections::BTreeMap;

/// The outcome of the primary-relation heuristics on one database.
#[derive(Debug, Clone)]
pub struct PrimaryRelationReport {
    /// Accession-number candidates found under the supplied rules
    /// (heuristic 1).
    pub accession_candidates: Vec<QualifiedName>,
    /// Tables holding at least one accession candidate, with the number of
    /// satisfied INDs referencing any of their attributes, descending
    /// (heuristic 2).
    pub ranking: Vec<(String, usize)>,
    /// All tables tied at the maximal count — the paper reports ties
    /// (three candidates for PDB) rather than forcing a single winner.
    pub primary_candidates: Vec<String>,
}

impl PrimaryRelationReport {
    /// The unambiguous winner, when exactly one table tops the ranking.
    pub fn unambiguous_primary(&self) -> Option<&str> {
        match self.primary_candidates.as_slice() {
            [single] => Some(single),
            _ => None,
        }
    }
}

/// Applies heuristics 1 and 2.
pub fn identify_primary_relation(
    db: &Database,
    discovery: &Discovery,
    rules: &AccessionRules,
) -> PrimaryRelationReport {
    let accession_candidates = find_accession_candidates(db, rules);

    // Heuristic 1: tables owning at least one accession candidate.
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for qn in &accession_candidates {
        counts.entry(qn.table.clone()).or_insert(0);
    }

    // Heuristic 2: count satisfied INDs referencing any attribute of each
    // candidate table.
    for ind in &discovery.satisfied {
        let ref_table = &discovery.profiles[ind.refd as usize].name.table;
        if let Some(n) = counts.get_mut(ref_table) {
            *n += 1;
        }
    }

    let mut ranking: Vec<(String, usize)> = counts.into_iter().collect();
    ranking.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let max = ranking.first().map_or(0, |(_, n)| *n);
    let primary_candidates = ranking
        .iter()
        .filter(|(_, n)| *n == max && max > 0)
        .map(|(t, _)| t.clone())
        .collect();

    PrimaryRelationReport {
        accession_candidates,
        ranking,
        primary_candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_core::{Algorithm, IndFinder};
    use ind_storage::{ColumnSchema, DataType, Table, TableSchema, Value};

    /// main(acc unique, referenced by two tables) and side(code, referenced
    /// by none): heuristic 2 must pick `main`.
    fn db() -> Database {
        let mut db = Database::new("primary");
        let mut main = Table::new(
            TableSchema::new(
                "main",
                vec![
                    ColumnSchema::new("id", DataType::Integer)
                        .not_null()
                        .unique(),
                    ColumnSchema::new("acc", DataType::Text).not_null().unique(),
                ],
            )
            .unwrap(),
        );
        for i in 0..30i64 {
            main.insert(vec![(1000 + i).into(), format!("AC{:04}", i).into()])
                .unwrap();
        }
        db.add_table(main).unwrap();

        for (name, rows) in [("annot_a", 50i64), ("annot_b", 40i64)] {
            let mut t = Table::new(
                TableSchema::new(
                    name,
                    vec![
                        ColumnSchema::new("main_id", DataType::Integer),
                        ColumnSchema::new("note", DataType::Text),
                    ],
                )
                .unwrap(),
            );
            for i in 0..rows {
                // Note lengths vary wildly so the column never passes the
                // accession spread rule.
                let note = format!("note {} {}", i, "pad".repeat(i as usize % 5));
                t.insert(vec![(1000 + i % 30).into(), Value::Text(note)])
                    .unwrap();
            }
            db.add_table(t).unwrap();
        }

        // A table with an accession-like column but no inbound INDs.
        let mut side = Table::new(
            TableSchema::new(
                "side",
                vec![ColumnSchema::new("code", DataType::Text)
                    .not_null()
                    .unique()],
            )
            .unwrap(),
        );
        for i in 0..10i64 {
            side.insert(vec![format!("ZZ{:04}", i).into()]).unwrap();
        }
        db.add_table(side).unwrap();
        db
    }

    fn report() -> PrimaryRelationReport {
        let db = db();
        let discovery = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .unwrap();
        identify_primary_relation(&db, &discovery, &AccessionRules::strict())
    }

    #[test]
    fn accession_candidates_are_found() {
        let r = report();
        let names: Vec<String> = r
            .accession_candidates
            .iter()
            .map(QualifiedName::to_string)
            .collect();
        assert!(names.contains(&"main.acc".to_string()));
        assert!(names.contains(&"side.code".to_string()));
        assert!(!names.contains(&"annot_a.note".to_string()), "{names:?}");
    }

    #[test]
    fn heuristic_two_picks_the_referenced_table() {
        let r = report();
        assert_eq!(r.unambiguous_primary(), Some("main"));
        assert_eq!(r.ranking[0].0, "main");
        assert!(r.ranking[0].1 >= 2, "two annotation tables reference main");
    }

    #[test]
    fn ranking_includes_zero_count_candidates() {
        let r = report();
        assert!(r.ranking.iter().any(|(t, n)| t == "side" && *n == 0));
    }

    #[test]
    fn ties_are_reported_as_multiple_candidates() {
        // Two structurally identical relations referenced equally often.
        let mut db = Database::new("tie");
        for name in ["left", "right"] {
            let mut t = Table::new(
                TableSchema::new(
                    name,
                    vec![ColumnSchema::new("acc", DataType::Text).not_null().unique()],
                )
                .unwrap(),
            );
            for i in 0..20i64 {
                t.insert(vec![format!("AB{:04}", i).into()]).unwrap();
            }
            db.add_table(t).unwrap();
        }
        // Equal value sets → INDs both directions → both referenced once.
        let discovery = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .unwrap();
        let r = identify_primary_relation(&db, &discovery, &AccessionRules::strict());
        assert_eq!(r.primary_candidates, vec!["left", "right"]);
        assert!(r.unambiguous_primary().is_none());
    }
}
