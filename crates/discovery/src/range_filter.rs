//! Surrogate-range detection — the false-positive filter the paper calls
//! for (Sec. 5): "the OpenMMS schema often utilizes surrogate IDs, i.e.,
//! semantic-free integers whose ranges all begin at 1, as primary keys.
//! This is a case where INDs fail to identify foreign keys. … In future
//! work we will look into heuristics for removing such false positives.
//! One idea is to analyze the ranges of attributes."
//!
//! An attribute is a *surrogate range* when all its values parse as
//! integers forming a dense range that starts at (or next to) 1. An IND
//! between two surrogate ranges is almost certainly a coincidence of
//! counting, not a semantic reference.

use ind_core::{Candidate, Discovery};
use ind_storage::{Database, Value};
use std::collections::HashMap;

/// Numeric profile of a column whose values all parse as integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeProfile {
    /// Smallest value.
    pub min: i64,
    /// Largest value.
    pub max: i64,
    /// Distinct values.
    pub distinct: u64,
}

impl RangeProfile {
    /// Dense: the distinct count covers the whole `[min, max]` interval.
    pub fn is_dense(&self) -> bool {
        let span = (self.max - self.min).unsigned_abs() + 1;
        self.distinct == span
    }

    /// The paper's surrogate-key signature: a dense integer range starting
    /// at 1 (tolerating a start of 0 or 2 for off-by-one id schemes).
    pub fn is_surrogate(&self) -> bool {
        self.is_dense() && (0..=2).contains(&self.min) && self.distinct > 1
    }
}

/// Computes the numeric range profile of a column, treating integer-typed
/// values and integer-parsable text alike (life-science databases often
/// store "even attributes containing solely integers … as string",
/// Sec. 4.1). Returns `None` when any non-null value fails to parse or the
/// column is empty.
pub fn numeric_range_profile(values: &[Value]) -> Option<RangeProfile> {
    let mut ints: Vec<i64> = Vec::with_capacity(values.len());
    for v in values {
        match v {
            Value::Null => continue,
            Value::Integer(i) => ints.push(*i),
            Value::Text(s) => ints.push(s.parse::<i64>().ok()?),
            Value::Float(_) => return None,
        }
    }
    if ints.is_empty() {
        return None;
    }
    ints.sort_unstable();
    let min = ints[0];
    // lint: allow(no_unwrap) — guarded by the is_empty early-return above
    let max = *ints.last().expect("non-empty");
    ints.dedup();
    Some(RangeProfile {
        min,
        max,
        distinct: ints.len() as u64,
    })
}

/// Splits discovered INDs into `(kept, filtered)`: an IND is filtered when
/// *both* sides are surrogate ranges.
pub fn filter_surrogate_inds(
    db: &Database,
    discovery: &Discovery,
) -> (Vec<Candidate>, Vec<Candidate>) {
    let mut cache: HashMap<u32, bool> = HashMap::new();
    let mut is_surrogate = |attr: u32| -> bool {
        if let Some(&hit) = cache.get(&attr) {
            return hit;
        }
        let profile = &discovery.profiles[attr as usize];
        let result = db
            .column(&profile.name)
            .ok()
            .and_then(numeric_range_profile)
            .is_some_and(|p| p.is_surrogate());
        cache.insert(attr, result);
        result
    };
    let mut kept = Vec::new();
    let mut filtered = Vec::new();
    for &ind in &discovery.satisfied {
        if is_surrogate(ind.dep) && is_surrogate(ind.refd) {
            filtered.push(ind);
        } else {
            kept.push(ind);
        }
    }
    (kept, filtered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(values: &[i64]) -> Vec<Value> {
        values.iter().map(|&v| Value::Integer(v)).collect()
    }

    #[test]
    fn dense_range_from_one_is_surrogate() {
        let p = numeric_range_profile(&ints(&[3, 1, 2, 4, 5])).unwrap();
        assert!(p.is_dense());
        assert!(p.is_surrogate());
    }

    #[test]
    fn sparse_or_offset_ranges_are_not() {
        let sparse = numeric_range_profile(&ints(&[1, 2, 10])).unwrap();
        assert!(!sparse.is_dense());
        assert!(!sparse.is_surrogate());
        let offset = numeric_range_profile(&ints(&[100, 101, 102])).unwrap();
        assert!(offset.is_dense());
        assert!(!offset.is_surrogate(), "does not start near 1");
    }

    #[test]
    fn duplicates_do_not_break_density() {
        let p = numeric_range_profile(&ints(&[1, 1, 2, 2, 3])).unwrap();
        assert_eq!(p.distinct, 3);
        assert!(p.is_surrogate());
    }

    #[test]
    fn integers_in_text_columns_are_recognized() {
        let values: Vec<Value> = vec!["1".into(), "2".into(), "3".into()];
        assert!(numeric_range_profile(&values).unwrap().is_surrogate());
        let mixed: Vec<Value> = vec!["1".into(), "two".into()];
        assert!(numeric_range_profile(&mixed).is_none());
    }

    #[test]
    fn floats_and_empty_columns_yield_none() {
        assert!(numeric_range_profile(&[Value::Float(1.0)]).is_none());
        assert!(numeric_range_profile(&[]).is_none());
        assert!(numeric_range_profile(&[Value::Null]).is_none());
    }

    #[test]
    fn single_value_is_not_surrogate() {
        let p = numeric_range_profile(&ints(&[1])).unwrap();
        assert!(!p.is_surrogate(), "a lone 1 is not a range");
    }
}
