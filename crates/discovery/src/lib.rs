//! # ind-discovery
//!
//! Schema discovery on top of unary INDs — the application layer of Sec. 5:
//!
//! * [`foreign_keys`] — FK guessing from satisfied INDs, with the
//!   surrogate-range flagging the paper proposes as future work;
//! * [`accession`] — accession-number-candidate detection (heuristic 1,
//!   strict and softened);
//! * [`primary_relation`] — primary-relation identification (heuristic 2);
//! * [`range_filter`] — dense-integer-range analysis behind the
//!   false-positive filter;
//! * [`quality`] — evaluation against gold-standard FKs (found / missed on
//!   empty tables / closure extras / unexplained);
//! * [`aladin`] — the five-step Aladin pipeline of Fig. 1, including
//!   inter-source links via exact and partial INDs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accession;
pub mod aladin;
pub mod concat;
pub mod foreign_keys;
pub mod primary_relation;
pub mod quality;
pub mod range_filter;

pub use accession::{find_accession_candidates, AccessionRules};
pub use aladin::{
    find_duplicates, key_candidates, run_aladin, AladinConfig, AladinReport, DuplicateReport,
    KeyCandidate, LinkReport, SourceReport,
};
pub use concat::{find_concat_match, AffixTransform, ConcatMatch};
pub use foreign_keys::{
    composite_fk_guesses, evaluate_composite_foreign_keys, fk_guesses, fk_guesses_filtered,
    CompositeFkEvaluation, CompositeFkGuess, FkGuess,
};
pub use primary_relation::{identify_primary_relation, PrimaryRelationReport};
pub use quality::{evaluate_foreign_keys, ExtraClass, ExtraInd, FkEvaluation};
pub use range_filter::{filter_surrogate_inds, numeric_range_profile, RangeProfile};
