//! Evaluation of discovered INDs against a gold standard of foreign keys
//! (Sec. 5).
//!
//! The paper's UniProt findings, which this module makes checkable: "Our
//! algorithm found all defined foreign keys as INDs, with the exception of
//! two foreign keys that are defined on empty tables … Additionally, we
//! found 11 INDs that are in the transitive closure of the foreign key
//! definitions … Finally, no false positives were produced."

use crate::range_filter::numeric_range_profile;
use ind_core::{transitive_closure, Candidate, Discovery};
use ind_storage::{Database, Database as Db, QualifiedName};
use std::collections::{HashMap, HashSet};

/// Classification of a discovered IND that is not itself a declared FK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtraClass {
    /// The reverse of a declared FK whose two sides hold equal value sets
    /// (1:1 relationships).
    EqualityReverse,
    /// Implied by the declared FKs plus the discovered set equalities via
    /// transitivity — the paper's "in the transitive closure" category.
    Closure,
    /// Both sides are dense integer ranges starting at 1 — the PDB
    /// surrogate-key coincidence.
    SurrogateRange,
    /// None of the above: a genuine false positive.
    Unexplained,
}

/// One discovered IND beyond the gold standard, with its classification.
#[derive(Debug, Clone)]
pub struct ExtraInd {
    /// Dependent attribute.
    pub dep: QualifiedName,
    /// Referenced attribute.
    pub refd: QualifiedName,
    /// Why it appeared.
    pub class: ExtraClass,
}

/// Full evaluation of a discovery run against the declared foreign keys.
#[derive(Debug, Clone)]
pub struct FkEvaluation {
    /// Declared FKs discovered as INDs.
    pub found: Vec<(QualifiedName, QualifiedName)>,
    /// Declared FKs not discovered because the dependent column holds no
    /// data (the paper's empty-table exception).
    pub missed_empty: Vec<(QualifiedName, QualifiedName)>,
    /// Declared FKs missed for any other reason (should be empty: set
    /// inclusion is implied by a foreign key).
    pub missed_other: Vec<(QualifiedName, QualifiedName)>,
    /// Discovered INDs beyond the declared FKs, classified.
    pub extras: Vec<ExtraInd>,
}

impl FkEvaluation {
    /// Recall over declared FKs that are discoverable from data.
    pub fn recall_discoverable(&self) -> f64 {
        let discoverable = self.found.len() + self.missed_other.len();
        if discoverable == 0 {
            1.0
        } else {
            self.found.len() as f64 / discoverable as f64
        }
    }

    /// Extras classified as genuine false positives.
    pub fn unexplained(&self) -> Vec<&ExtraInd> {
        self.extras
            .iter()
            .filter(|e| e.class == ExtraClass::Unexplained)
            .collect()
    }

    /// Extras explained by closure / equality (the paper's "11 INDs").
    pub fn closure_extras(&self) -> usize {
        self.extras
            .iter()
            .filter(|e| matches!(e.class, ExtraClass::Closure | ExtraClass::EqualityReverse))
            .count()
    }

    /// Extras flagged as surrogate-range coincidences.
    pub fn surrogate_extras(&self) -> usize {
        self.extras
            .iter()
            .filter(|e| e.class == ExtraClass::SurrogateRange)
            .count()
    }
}

fn attr_ids(discovery: &Discovery) -> HashMap<QualifiedName, u32> {
    discovery
        .profiles
        .iter()
        .map(|p| (p.name.clone(), p.id))
        .collect()
}

/// Evaluates `discovery` (run over `db`) against `db`'s declared FKs.
pub fn evaluate_foreign_keys(db: &Database, discovery: &Discovery) -> FkEvaluation {
    let ids = attr_ids(discovery);
    let discovered: HashSet<Candidate> = discovery.satisfied.iter().copied().collect();

    // Gold standard as candidates over attribute ids.
    let mut gold: Vec<Candidate> = Vec::new();
    let mut gold_named: HashMap<Candidate, (QualifiedName, QualifiedName)> = HashMap::new();
    for (dep, refd) in db.gold_foreign_keys() {
        let (Some(&d), Some(&r)) = (ids.get(&dep), ids.get(&refd)) else {
            continue;
        };
        let c = Candidate::new(d, r);
        gold.push(c);
        gold_named.insert(c, (dep, refd));
    }

    let mut found = Vec::new();
    let mut missed_empty = Vec::new();
    let mut missed_other = Vec::new();
    for c in &gold {
        let (dep, refd) = gold_named[c].clone();
        if discovered.contains(c) {
            found.push((dep, refd));
        } else if discovery.profiles[c.dep as usize].non_null == 0 {
            missed_empty.push((dep, refd));
        } else {
            missed_other.push((dep, refd));
        }
    }

    // Equality reverses: reverse of a gold FK whose sides have equal
    // cardinality (equal sets, given the FK inclusion holds).
    let gold_set: HashSet<Candidate> = gold.iter().copied().collect();
    let mut closure_base = gold.clone();
    for c in &discovered {
        let reverse = Candidate::new(c.refd, c.dep);
        if gold_set.contains(&reverse) {
            closure_base.push(*c);
        }
    }
    let closure = transitive_closure(&closure_base);

    let mut surrogate_cache: HashMap<u32, bool> = HashMap::new();
    let mut is_surrogate = |attr: u32, db: &Db| -> bool {
        *surrogate_cache.entry(attr).or_insert_with(|| {
            db.column(&discovery.profiles[attr as usize].name)
                .ok()
                .and_then(numeric_range_profile)
                .is_some_and(|p| p.is_surrogate())
        })
    };

    let mut extras = Vec::new();
    for c in &discovery.satisfied {
        if gold_set.contains(c) {
            continue;
        }
        let reverse = Candidate::new(c.refd, c.dep);
        let class = if gold_set.contains(&reverse) {
            ExtraClass::EqualityReverse
        } else if closure.contains(c) {
            ExtraClass::Closure
        } else if is_surrogate(c.dep, db) && is_surrogate(c.refd, db) {
            ExtraClass::SurrogateRange
        } else {
            ExtraClass::Unexplained
        };
        extras.push(ExtraInd {
            dep: discovery.profiles[c.dep as usize].name.clone(),
            refd: discovery.profiles[c.refd as usize].name.clone(),
            class,
        });
    }

    FkEvaluation {
        found,
        missed_empty,
        missed_other,
        extras,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_core::{Algorithm, IndFinder};
    use ind_storage::{ColumnSchema, DataType, Table, TableSchema};

    /// parent ← child (FK), mirror 1:1 of parent, and two surrogate tables.
    fn db() -> Database {
        let mut db = Database::new("quality");
        let mut parent = Table::new(
            TableSchema::new(
                "parent",
                vec![ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique()],
            )
            .unwrap(),
        );
        for i in 100..120i64 {
            parent.insert(vec![i.into()]).unwrap();
        }
        db.add_table(parent).unwrap();

        let mut child_schema = TableSchema::new(
            "child",
            vec![ColumnSchema::new("parent_id", DataType::Integer)],
        )
        .unwrap();
        child_schema
            .add_foreign_key("parent_id", "parent", "id")
            .unwrap();
        let mut child = Table::new(child_schema);
        for i in 0..40i64 {
            child.insert(vec![(100 + i % 20).into()]).unwrap();
        }
        db.add_table(child).unwrap();

        // 1:1 mirror of parent → discovered equality reverse + closure.
        let mut mirror_schema = TableSchema::new(
            "mirror",
            vec![ColumnSchema::new("parent_id", DataType::Integer)
                .not_null()
                .unique()],
        )
        .unwrap();
        mirror_schema
            .add_foreign_key("parent_id", "parent", "id")
            .unwrap();
        let mut mirror = Table::new(mirror_schema);
        for i in 100..120i64 {
            mirror.insert(vec![i.into()]).unwrap();
        }
        db.add_table(mirror).unwrap();

        // Two surrogate tables: 1..10 ⊆ 1..30 with no semantic relation.
        for (name, n) in [("s_small", 10i64), ("s_big", 30i64)] {
            let mut t = Table::new(
                TableSchema::new(
                    name,
                    vec![ColumnSchema::new("id", DataType::Integer)
                        .not_null()
                        .unique()],
                )
                .unwrap(),
            );
            for i in 1..=n {
                t.insert(vec![i.into()]).unwrap();
            }
            db.add_table(t).unwrap();
        }
        db
    }

    fn evaluation() -> FkEvaluation {
        let db = db();
        let discovery = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .unwrap();
        evaluate_foreign_keys(&db, &discovery)
    }

    #[test]
    fn declared_fks_are_found() {
        let eval = evaluation();
        assert_eq!(eval.found.len(), 2, "child→parent and mirror→parent");
        assert!(eval.missed_other.is_empty());
        assert_eq!(eval.recall_discoverable(), 1.0);
    }

    #[test]
    fn equality_reverse_and_closure_are_classified() {
        let eval = evaluation();
        let classes: Vec<ExtraClass> = eval.extras.iter().map(|e| e.class).collect();
        assert!(
            classes.contains(&ExtraClass::EqualityReverse),
            "parent.id ⊆ mirror.parent_id: {classes:?}"
        );
        assert!(
            classes.contains(&ExtraClass::Closure),
            "child.parent_id ⊆ mirror.parent_id: {classes:?}"
        );
    }

    #[test]
    fn surrogate_coincidence_is_classified() {
        let eval = evaluation();
        assert!(
            eval.extras
                .iter()
                .any(|e| e.class == ExtraClass::SurrogateRange
                    && e.dep.table == "s_small"
                    && e.refd.table == "s_big"),
            "{:?}",
            eval.extras
        );
    }

    #[test]
    fn no_unexplained_extras_in_clean_schema() {
        let eval = evaluation();
        assert!(
            eval.unexplained().is_empty(),
            "unexpected false positives: {:?}",
            eval.unexplained()
        );
    }

    #[test]
    fn empty_table_fks_are_reported_separately() {
        let mut db = db();
        let mut empty_schema = TableSchema::new(
            "empty_ref",
            vec![ColumnSchema::new("parent_id", DataType::Integer)],
        )
        .unwrap();
        empty_schema
            .add_foreign_key("parent_id", "parent", "id")
            .unwrap();
        db.add_table(Table::new(empty_schema)).unwrap();

        let discovery = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .unwrap();
        let eval = evaluate_foreign_keys(&db, &discovery);
        assert_eq!(eval.missed_empty.len(), 1);
        assert_eq!(eval.missed_empty[0].0.table, "empty_ref");
        assert!(eval.missed_other.is_empty());
        assert_eq!(eval.recall_discoverable(), 1.0);
    }
}
