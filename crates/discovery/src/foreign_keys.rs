//! Foreign-key guessing from satisfied INDs (Sec. 1: INDs "provide an
//! excellent basis for guessing foreign key constraints").
//!
//! Every satisfied IND `dep ⊆ ref` is a guess; the optional surrogate-range
//! filter removes the PDB-style coincidences. Guesses are only ever false
//! positives, never false negatives ("algorithms can produce only false
//! positives, but no false negative foreign key constraints") — which the
//! quality module verifies.

use crate::range_filter::filter_surrogate_inds;
use ind_core::Discovery;
use ind_storage::{Database, QualifiedName};

/// One guessed foreign key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FkGuess {
    /// The referring (dependent) attribute.
    pub dep: QualifiedName,
    /// The referenced attribute.
    pub refd: QualifiedName,
    /// True when the surrogate-range heuristic flagged this guess as a
    /// likely coincidence (only set when filtering is requested).
    pub flagged_surrogate: bool,
}

/// Turns every satisfied IND into an FK guess, unfiltered.
pub fn fk_guesses(discovery: &Discovery) -> Vec<FkGuess> {
    discovery
        .satisfied
        .iter()
        .map(|c| FkGuess {
            dep: discovery.profiles[c.dep as usize].name.clone(),
            refd: discovery.profiles[c.refd as usize].name.clone(),
            flagged_surrogate: false,
        })
        .collect()
}

/// FK guesses with surrogate-range coincidences flagged (the paper's
/// proposed false-positive filter).
pub fn fk_guesses_filtered(db: &Database, discovery: &Discovery) -> Vec<FkGuess> {
    let (kept, filtered) = filter_surrogate_inds(db, discovery);
    let mut out = Vec::with_capacity(kept.len() + filtered.len());
    for (candidates, flagged) in [(kept, false), (filtered, true)] {
        for c in candidates {
            out.push(FkGuess {
                dep: discovery.profiles[c.dep as usize].name.clone(),
                refd: discovery.profiles[c.refd as usize].name.clone(),
                flagged_surrogate: flagged,
            });
        }
    }
    out.sort_by(|a, b| (&a.dep, &a.refd).cmp(&(&b.dep, &b.refd)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_core::{Algorithm, IndFinder};
    use ind_storage::{ColumnSchema, DataType, Table, TableSchema};

    fn db() -> Database {
        let mut db = Database::new("fk");
        let mut parent = Table::new(
            TableSchema::new(
                "parent",
                vec![ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique()],
            )
            .unwrap(),
        );
        for i in 100..110i64 {
            parent.insert(vec![i.into()]).unwrap();
        }
        db.add_table(parent).unwrap();
        let mut child = Table::new(
            TableSchema::new(
                "child",
                vec![ColumnSchema::new("parent_id", DataType::Integer)],
            )
            .unwrap(),
        );
        for i in 0..20i64 {
            child.insert(vec![(100 + i % 10).into()]).unwrap();
        }
        db.add_table(child).unwrap();
        // Surrogate pair.
        for (name, n) in [("a", 5i64), ("b", 9i64)] {
            let mut t = Table::new(
                TableSchema::new(
                    name,
                    vec![ColumnSchema::new("id", DataType::Integer)
                        .not_null()
                        .unique()],
                )
                .unwrap(),
            );
            for i in 1..=n {
                t.insert(vec![i.into()]).unwrap();
            }
            db.add_table(t).unwrap();
        }
        db
    }

    #[test]
    fn every_ind_becomes_a_guess() {
        let db = db();
        let d = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .unwrap();
        let guesses = fk_guesses(&d);
        assert_eq!(guesses.len(), d.ind_count());
        assert!(guesses
            .iter()
            .any(|g| g.dep.to_string() == "child.parent_id" && g.refd.to_string() == "parent.id"));
    }

    #[test]
    fn surrogate_guesses_are_flagged_not_dropped() {
        let db = db();
        let d = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .unwrap();
        let guesses = fk_guesses_filtered(&db, &d);
        assert_eq!(guesses.len(), d.ind_count(), "flagging keeps everything");
        let surrogate = guesses
            .iter()
            .find(|g| g.dep.table == "a" && g.refd.table == "b")
            .expect("a.id ⊆ b.id must be discovered");
        assert!(surrogate.flagged_surrogate);
        let real = guesses
            .iter()
            .find(|g| g.dep.to_string() == "child.parent_id")
            .unwrap();
        assert!(!real.flagged_surrogate);
    }
}
