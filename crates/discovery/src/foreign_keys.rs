//! Foreign-key guessing from satisfied INDs (Sec. 1: INDs "provide an
//! excellent basis for guessing foreign key constraints").
//!
//! Every satisfied IND `dep ⊆ ref` is a guess; the optional surrogate-range
//! filter removes the PDB-style coincidences. Guesses are only ever false
//! positives, never false negatives ("algorithms can produce only false
//! positives, but no false negative foreign key constraints") — which the
//! quality module verifies.

use crate::range_filter::filter_surrogate_inds;
use ind_core::{Discovery, NaryDiscovery};
use ind_storage::{Database, QualifiedName};
use std::collections::HashSet;

/// One guessed foreign key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FkGuess {
    /// The referring (dependent) attribute.
    pub dep: QualifiedName,
    /// The referenced attribute.
    pub refd: QualifiedName,
    /// True when the surrogate-range heuristic flagged this guess as a
    /// likely coincidence (only set when filtering is requested).
    pub flagged_surrogate: bool,
}

/// Turns every satisfied IND into an FK guess, unfiltered.
pub fn fk_guesses(discovery: &Discovery) -> Vec<FkGuess> {
    discovery
        .satisfied
        .iter()
        .map(|c| FkGuess {
            dep: discovery.profiles[c.dep as usize].name.clone(),
            refd: discovery.profiles[c.refd as usize].name.clone(),
            flagged_surrogate: false,
        })
        .collect()
}

/// FK guesses with surrogate-range coincidences flagged (the paper's
/// proposed false-positive filter).
pub fn fk_guesses_filtered(db: &Database, discovery: &Discovery) -> Vec<FkGuess> {
    let (kept, filtered) = filter_surrogate_inds(db, discovery);
    let mut out = Vec::with_capacity(kept.len() + filtered.len());
    for (candidates, flagged) in [(kept, false), (filtered, true)] {
        for c in candidates {
            out.push(FkGuess {
                dep: discovery.profiles[c.dep as usize].name.clone(),
                refd: discovery.profiles[c.refd as usize].name.clone(),
                flagged_surrogate: flagged,
            });
        }
    }
    out.sort_by(|a, b| (&a.dep, &a.refd).cmp(&(&b.dep, &b.refd)));
    out
}

/// One guessed composite foreign key: a satisfied n-ary IND whose
/// referenced tuple is jointly unique in the data (the composite analogue
/// of the paper's "referenced attributes are unique" rule — enforced here,
/// after validation, rather than during candidate generation, because the
/// levelwise search needs the non-unique-referenced INDs for its
/// projection pruning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeFkGuess {
    /// The referring (dependent) columns, in key order.
    pub dep: Vec<QualifiedName>,
    /// The referenced columns, aligned with `dep`.
    pub refd: Vec<QualifiedName>,
    /// True when this guess matches a declared gold-standard composite FK.
    pub matches_gold: bool,
}

/// Turns every satisfied composite IND with a jointly-unique referenced
/// tuple into an FK guess, sorted by `(dep, ref)`.
pub fn composite_fk_guesses(db: &Database, discovery: &NaryDiscovery) -> Vec<CompositeFkGuess> {
    let gold: HashSet<(Vec<QualifiedName>, Vec<QualifiedName>)> =
        db.gold_composite_foreign_keys().into_iter().collect();
    // Many INDs can share one referenced tuple (the mirror-heavy shapes);
    // the O(rows) uniqueness scan runs once per distinct tuple.
    let mut unique_cache: std::collections::HashMap<Vec<QualifiedName>, bool> =
        std::collections::HashMap::new();
    let mut out: Vec<CompositeFkGuess> = discovery
        .satisfied_named()
        .into_iter()
        .filter(|(_, refd)| {
            *unique_cache
                .entry(refd.clone())
                .or_insert_with(|| tuple_is_unique(db, refd))
        })
        .map(|(dep, refd)| {
            let matches_gold = gold.contains(&(dep.clone(), refd.clone()));
            CompositeFkGuess {
                dep,
                refd,
                matches_gold,
            }
        })
        .collect();
    out.sort_by(|a, b| (&a.dep, &a.refd).cmp(&(&b.dep, &b.refd)));
    out
}

/// Whether the tuple of `columns` is jointly unique over the rows where
/// every component is non-NULL: the distinct-tuple count (via the same
/// composite extraction the n-ary pipeline validates with) equals the
/// all-components-non-NULL row count.
fn tuple_is_unique(db: &Database, columns: &[QualifiedName]) -> bool {
    let cols: Vec<_> = columns
        .iter()
        // lint: allow(no_unwrap) — every name came from this database's own schema walk a few frames up
        .map(|qn| db.column(qn).expect("discovery names resolve"))
        .collect();
    let rows = cols.first().map_or(0, |c| c.len());
    let non_null_rows = (0..rows)
        .filter(|&row| cols.iter().all(|c| !c[row].is_null()))
        .count() as u64;
    ind_valueset::extract_composite_memory_set(&cols).len() == non_null_rows
}

/// Evaluation of composite FK guesses against the declared gold standard.
#[derive(Debug, Clone)]
pub struct CompositeFkEvaluation {
    /// Declared composite FKs recovered as guesses.
    pub found: Vec<(Vec<QualifiedName>, Vec<QualifiedName>)>,
    /// Declared composite FKs not recovered.
    pub missed: Vec<(Vec<QualifiedName>, Vec<QualifiedName>)>,
    /// Guesses beyond the gold standard.
    pub extras: Vec<CompositeFkGuess>,
}

/// Evaluates a levelwise discovery run against `db`'s declared composite
/// foreign keys.
pub fn evaluate_composite_foreign_keys(
    db: &Database,
    discovery: &NaryDiscovery,
) -> CompositeFkEvaluation {
    let guesses = composite_fk_guesses(db, discovery);
    let guessed: HashSet<(&[QualifiedName], &[QualifiedName])> = guesses
        .iter()
        .map(|g| (g.dep.as_slice(), g.refd.as_slice()))
        .collect();
    let mut found = Vec::new();
    let mut missed = Vec::new();
    for (dep, refd) in db.gold_composite_foreign_keys() {
        if guessed.contains(&(dep.as_slice(), refd.as_slice())) {
            found.push((dep, refd));
        } else {
            missed.push((dep, refd));
        }
    }
    let extras = guesses.into_iter().filter(|g| !g.matches_gold).collect();
    CompositeFkEvaluation {
        found,
        missed,
        extras,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_core::{Algorithm, IndFinder};
    use ind_storage::{ColumnSchema, DataType, Table, TableSchema};

    fn db() -> Database {
        let mut db = Database::new("fk");
        let mut parent = Table::new(
            TableSchema::new(
                "parent",
                vec![ColumnSchema::new("id", DataType::Integer)
                    .not_null()
                    .unique()],
            )
            .unwrap(),
        );
        for i in 100..110i64 {
            parent.insert(vec![i.into()]).unwrap();
        }
        db.add_table(parent).unwrap();
        let mut child = Table::new(
            TableSchema::new(
                "child",
                vec![ColumnSchema::new("parent_id", DataType::Integer)],
            )
            .unwrap(),
        );
        for i in 0..20i64 {
            child.insert(vec![(100 + i % 10).into()]).unwrap();
        }
        db.add_table(child).unwrap();
        // Surrogate pair.
        for (name, n) in [("a", 5i64), ("b", 9i64)] {
            let mut t = Table::new(
                TableSchema::new(
                    name,
                    vec![ColumnSchema::new("id", DataType::Integer)
                        .not_null()
                        .unique()],
                )
                .unwrap(),
            );
            for i in 1..=n {
                t.insert(vec![i.into()]).unwrap();
            }
            db.add_table(t).unwrap();
        }
        db
    }

    #[test]
    fn every_ind_becomes_a_guess() {
        let db = db();
        let d = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .unwrap();
        let guesses = fk_guesses(&d);
        assert_eq!(guesses.len(), d.ind_count());
        assert!(guesses
            .iter()
            .any(|g| g.dep.to_string() == "child.parent_id" && g.refd.to_string() == "parent.id"));
    }

    /// pair_parent(a, b) with jointly-unique pairs whose columns repeat;
    /// pair_child(x, y) drawing its pairs from the parent; loose(u, v)
    /// whose pairs are a *non-unique* tuple drawn from the parent too.
    fn composite_db() -> Database {
        let mut db = Database::new("composite-fk");
        let mut parent = Table::new(
            TableSchema::new(
                "pair_parent",
                vec![
                    ColumnSchema::new("a", DataType::Integer),
                    ColumnSchema::new("b", DataType::Integer),
                ],
            )
            .unwrap(),
        );
        for i in 0..12i64 {
            parent
                .insert(vec![(i % 4).into(), (100 + i % 3).into()])
                .unwrap();
        }
        // distinct pairs: (i%4, 100 + i%3) over i in 0..12 = 12 pairs.
        let mut child_schema = TableSchema::new(
            "pair_child",
            vec![
                ColumnSchema::new("x", DataType::Integer),
                ColumnSchema::new("y", DataType::Integer),
            ],
        )
        .unwrap();
        child_schema
            .add_composite_foreign_key(["x", "y"], "pair_parent", ["a", "b"])
            .unwrap();
        let mut child = Table::new(child_schema);
        for i in 0..6i64 {
            child
                .insert(vec![(i % 3).into(), (100 + i % 3).into()])
                .unwrap();
        }
        db.add_table(parent).unwrap();
        db.add_table(child).unwrap();
        db
    }

    #[test]
    fn composite_guesses_recover_the_declared_key() {
        use ind_core::NaryFinder;
        let db = composite_db();
        let d = NaryFinder::with_max_arity(2)
            .discover_in_memory(&db)
            .unwrap();
        let guesses = composite_fk_guesses(&db, &d);
        assert!(
            guesses.iter().any(|g| g.matches_gold),
            "declared composite FK must be recovered: {guesses:?}"
        );
        let eval = evaluate_composite_foreign_keys(&db, &d);
        assert_eq!(eval.found.len(), 1);
        assert!(eval.missed.is_empty());
        // The wait-but-is-it-unique rule: parent pairs are jointly unique
        // even though both columns repeat; the guessed referenced side is
        // exactly that tuple.
        assert_eq!(eval.found[0].1[0].to_string(), "pair_parent.a");
    }

    #[test]
    fn non_unique_referenced_tuples_are_not_guessed() {
        use ind_core::NaryFinder;
        let mut db = composite_db();
        // A copy of the child whose own pairs duplicate: INDs into it may
        // be satisfied, but it can never be a key.
        let mut dup = Table::new(
            TableSchema::new(
                "dup_child",
                vec![
                    ColumnSchema::new("x", DataType::Integer),
                    ColumnSchema::new("y", DataType::Integer),
                ],
            )
            .unwrap(),
        );
        for i in 0..6i64 {
            dup.insert(vec![(i % 3).into(), (100 + i % 3).into()])
                .unwrap();
        }
        db.add_table(dup).unwrap();
        let d = NaryFinder::with_max_arity(2)
            .discover_in_memory(&db)
            .unwrap();
        assert!(
            d.satisfied_named()
                .iter()
                .any(|(_, refd)| refd[0].table == "dup_child"),
            "the IND into the duplicated tuple is satisfied"
        );
        let guesses = composite_fk_guesses(&db, &d);
        assert!(
            guesses.iter().all(|g| g.refd[0].table != "dup_child"),
            "…but never guessed as a foreign key: {guesses:?}"
        );
    }

    #[test]
    fn surrogate_guesses_are_flagged_not_dropped() {
        let db = db();
        let d = IndFinder::with_algorithm(Algorithm::BruteForce)
            .discover_in_memory(&db)
            .unwrap();
        let guesses = fk_guesses_filtered(&db, &d);
        assert_eq!(guesses.len(), d.ind_count(), "flagging keeps everything");
        let surrogate = guesses
            .iter()
            .find(|g| g.dep.table == "a" && g.refd.table == "b")
            .expect("a.id ⊆ b.id must be discovered");
        assert!(surrogate.flagged_surrogate);
        let real = guesses
            .iter()
            .find(|g| g.dep.to_string() == "child.parent_id")
            .unwrap();
        assert!(!real.flagged_surrogate);
    }
}
