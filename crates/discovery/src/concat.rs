//! Concatenated-value link discovery (Sec. 7 future work).
//!
//! "Furthermore we plan use this procedure to identify inclusion
//! dependencies … between concatenated values, e.g., attributes containing
//! PDB codes as '144f' or as 'PDB-144f'."
//!
//! Given a candidate pair that fails as a plain IND, this module looks for
//! an affix transform — a common prefix and/or suffix shared by *every*
//! dependent value — whose removal turns the pair into an (exact or
//! partial) inclusion. `PDB-144f ⊆ 144f` is the motivating case.

use ind_core::{inclusion_count, InclusionCount, RunMetrics};
use ind_storage::Value;
use ind_valueset::MemoryValueSet;

/// An affix transform: strip `prefix` and `suffix` from dependent values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffixTransform {
    /// Prefix common to all dependent values (possibly empty).
    pub prefix: String,
    /// Suffix common to all dependent values (possibly empty).
    pub suffix: String,
}

impl AffixTransform {
    /// True when the transform does nothing.
    pub fn is_identity(&self) -> bool {
        self.prefix.is_empty() && self.suffix.is_empty()
    }

    /// Applies the transform to one value; `None` when the value does not
    /// carry the affixes or nothing would remain.
    pub fn apply<'a>(&self, value: &'a str) -> Option<&'a str> {
        let stripped = value.strip_prefix(self.prefix.as_str())?;
        let stripped = stripped.strip_suffix(self.suffix.as_str())?;
        if stripped.is_empty() {
            None
        } else {
            Some(stripped)
        }
    }
}

/// A concatenated-value match: dependent values equal `prefix + referenced
/// value + suffix`.
#[derive(Debug, Clone)]
pub struct ConcatMatch {
    /// The discovered transform.
    pub transform: AffixTransform,
    /// Inclusion statistics *after* the transform.
    pub inclusion: InclusionCount,
}

impl ConcatMatch {
    /// Coefficient after stripping.
    pub fn coefficient(&self) -> f64 {
        self.inclusion.coefficient()
    }
}

/// Longest common prefix of the rendered values.
fn common_prefix<'a>(mut values: impl Iterator<Item = &'a str>) -> String {
    let Some(first) = values.next() else {
        return String::new();
    };
    let mut prefix = first;
    for v in values {
        let common = prefix
            .char_indices()
            .zip(v.chars())
            .take_while(|((_, a), b)| a == b)
            .count();
        prefix = &prefix[..prefix
            .char_indices()
            .nth(common)
            .map_or(prefix.len(), |(i, _)| i)];
        if prefix.is_empty() {
            break;
        }
    }
    prefix.to_string()
}

/// Longest common suffix of the rendered values.
fn common_suffix<'a>(mut values: impl Iterator<Item = &'a str>) -> String {
    let Some(first) = values.next() else {
        return String::new();
    };
    let mut suffix: Vec<char> = first.chars().collect();
    for v in values {
        let vc: Vec<char> = v.chars().collect();
        let common = suffix
            .iter()
            .rev()
            .zip(vc.iter().rev())
            .take_while(|(a, b)| a == b)
            .count();
        suffix.drain(..suffix.len() - common);
        if suffix.is_empty() {
            break;
        }
    }
    suffix.into_iter().collect()
}

/// Searches for an affix transform of the dependent column that makes it a
/// (partial) inclusion in the referenced column. Returns `None` when the
/// dependent column has no common affix at all, or when no variant reaches
/// `min_coefficient`.
///
/// Affixes are derived from the *dependent* side only (the common
/// prefix/suffix over all its non-null values). Because a maximal common
/// affix can accidentally swallow payload characters (small code pools
/// often share trailing characters), all three variants —
/// prefix-and-suffix, prefix only, suffix only — are evaluated and the
/// highest-coefficient one wins.
pub fn find_concat_match(
    dep: &[Value],
    refd: &[Value],
    min_coefficient: f64,
    metrics: &mut RunMetrics,
) -> Option<ConcatMatch> {
    let rendered: Vec<String> = dep
        .iter()
        .filter(|v| !v.is_null())
        .map(Value::to_string)
        .collect();
    if rendered.is_empty() {
        return None;
    }
    let prefix = common_prefix(rendered.iter().map(String::as_str));
    let suffix_source: Vec<&str> = rendered
        .iter()
        .map(|v| v.strip_prefix(prefix.as_str()).unwrap_or(v.as_str()))
        .collect();
    let suffix = common_suffix(suffix_source.iter().copied());

    let variants = [
        AffixTransform {
            prefix: prefix.clone(),
            suffix: suffix.clone(),
        },
        AffixTransform {
            prefix,
            suffix: String::new(),
        },
        AffixTransform {
            prefix: String::new(),
            suffix,
        },
    ];

    let ref_set = MemoryValueSet::from_unsorted(
        refd.iter()
            .filter(|v| !v.is_null())
            .map(Value::canonical_bytes),
    );

    let mut best: Option<ConcatMatch> = None;
    let mut seen: Vec<AffixTransform> = Vec::new();
    for transform in variants {
        if transform.is_identity() || seen.contains(&transform) {
            continue;
        }
        seen.push(transform.clone());
        let stripped: Vec<Vec<u8>> = rendered
            .iter()
            .filter_map(|v| transform.apply(v))
            .map(|v| v.as_bytes().to_vec())
            .collect();
        if stripped.is_empty() {
            continue;
        }
        let dep_set = MemoryValueSet::from_unsorted(stripped);
        let inclusion = inclusion_count(&mut dep_set.cursor(), &mut ref_set.cursor(), metrics)
            // lint: allow(no_unwrap) — MemoryValueSet cursors are infallible; the Result is the trait's I/O affordance
            .expect("memory cursors cannot fail");
        if inclusion.coefficient() < min_coefficient {
            continue;
        }
        let better = best
            .as_ref()
            .is_none_or(|b| inclusion.coefficient() > b.coefficient());
        if better {
            best = Some(ConcatMatch {
                transform,
                inclusion,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(values: &[&str]) -> Vec<Value> {
        values.iter().map(|s| Value::Text(s.to_string())).collect()
    }

    #[test]
    fn papers_pdb_prefix_example() {
        // "PDB-144f" ⊆ "144f" after stripping the shared prefix.
        let dep = texts(&["PDB-144f", "PDB-2abc", "PDB-9xyz"]);
        let refd = texts(&["144f", "2abc", "9xyz", "5extra"]);
        let mut m = RunMetrics::new();
        let hit = find_concat_match(&dep, &refd, 1.0, &mut m).expect("match");
        assert_eq!(hit.transform.prefix, "PDB-");
        assert_eq!(hit.transform.suffix, "");
        assert!(hit.inclusion.is_exact());
        assert_eq!(hit.coefficient(), 1.0);
    }

    #[test]
    fn suffix_and_both_affixes() {
        let dep = texts(&["144f.pdb", "2abc.pdb"]);
        let refd = texts(&["144f", "2abc"]);
        let mut m = RunMetrics::new();
        let hit = find_concat_match(&dep, &refd, 1.0, &mut m).expect("suffix match");
        assert_eq!(hit.transform.suffix, ".pdb");

        let dep = texts(&["<144f>", "<2abc>"]);
        let mut m = RunMetrics::new();
        let hit = find_concat_match(&dep, &refd, 1.0, &mut m).expect("bracket match");
        assert_eq!(hit.transform.prefix, "<");
        assert_eq!(hit.transform.suffix, ">");
    }

    #[test]
    fn partial_concat_match_respects_threshold() {
        let dep = texts(&["PDB-144f", "PDB-zzzz"]); // only 144f resolves
        let refd = texts(&["144f", "2abc"]);
        let mut m = RunMetrics::new();
        assert!(find_concat_match(&dep, &refd, 0.4, &mut m).is_some());
        let mut m = RunMetrics::new();
        assert!(find_concat_match(&dep, &refd, 0.9, &mut m).is_none());
    }

    #[test]
    fn no_common_affix_means_no_match() {
        let dep = texts(&["alpha", "beta"]);
        let refd = texts(&["alpha", "beta"]);
        let mut m = RunMetrics::new();
        assert!(
            find_concat_match(&dep, &refd, 0.1, &mut m).is_none(),
            "identity transforms are the plain IND's job"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let mut m = RunMetrics::new();
        assert!(find_concat_match(&[], &texts(&["x"]), 0.5, &mut m).is_none());
        // Identical single values share everything; stripping leaves nothing.
        let dep = texts(&["PDB-", "PDB-"]);
        assert!(find_concat_match(&dep, &texts(&["x"]), 0.5, &mut m).is_none());
    }

    #[test]
    fn affix_helpers() {
        assert_eq!(common_prefix(["abc", "abd"].into_iter()), "ab");
        assert_eq!(common_prefix(["abc"].into_iter()), "abc");
        assert_eq!(common_prefix(["x", "y"].into_iter()), "");
        assert_eq!(common_suffix(["1.pdb", "2.pdb"].into_iter()), ".pdb");
        assert_eq!(common_suffix(["ab", "b"].into_iter()), "b");
        let t = AffixTransform {
            prefix: "a".into(),
            suffix: "z".into(),
        };
        assert_eq!(t.apply("aMIDz"), Some("MID"));
        assert_eq!(t.apply("az"), None, "empty remainder");
        assert_eq!(t.apply("bMIDz"), None, "missing prefix");
    }
}
