//! The Aladin five-step integration pipeline (Sec. 1.1, Figure 1).
//!
//! "Integration is performed in five steps": (1) import the sources,
//! (2) compute primary-key candidates from uniqueness, (3) compute
//! intra-source relationships from set inclusion, (4) infer inter-source
//! relationships targeting the primary relations of other sources, and
//! (5) detect duplicate objects. This module orchestrates steps 2–5 over
//! already-imported [`Database`]s using the discovery machinery of the
//! rest of the workspace.

use crate::accession::AccessionRules;
use crate::foreign_keys::{fk_guesses_filtered, FkGuess};
use crate::primary_relation::{identify_primary_relation, PrimaryRelationReport};
use ind_core::{inclusion_count, memory_export, FinderConfig, IndFinder, RunMetrics};
use ind_storage::{DataType, Database, QualifiedName, Value};
use ind_valueset::{extract_memory_set, Result};
use std::collections::HashMap;
use std::fmt;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct AladinConfig {
    /// IND discovery configuration for step 3.
    pub finder: FinderConfig,
    /// Accession rules for primary-relation identification.
    pub accession: AccessionRules,
    /// Minimum inclusion coefficient for an inter-source link (step 4);
    /// 1.0 demands exact INDs, lower values admit partial INDs ("dirty
    /// data", Sec. 7).
    pub link_threshold: f64,
}

impl Default for AladinConfig {
    fn default() -> Self {
        AladinConfig {
            finder: FinderConfig::default(),
            accession: AccessionRules::strict(),
            link_threshold: 0.3,
        }
    }
}

/// Step 2 output: a primary-key candidate (non-empty unique column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyCandidate {
    /// The column.
    pub attribute: QualifiedName,
    /// Its distinct (= non-null) count.
    pub distinct: u64,
}

/// Step 5 output: duplicate rows within one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateReport {
    /// Table inspected.
    pub table: String,
    /// Rows that are exact copies of an earlier row.
    pub duplicate_rows: usize,
}

/// Per-source results of steps 2, 3, and 5.
#[derive(Debug)]
pub struct SourceReport {
    /// Source database name.
    pub name: String,
    /// Tables / attributes / rows (step 1 inventory).
    pub tables: usize,
    /// Attribute count.
    pub attributes: usize,
    /// Total rows.
    pub rows: usize,
    /// Step 2: primary-key candidates.
    pub key_candidates: Vec<KeyCandidate>,
    /// Step 3: satisfied IND count.
    pub ind_count: usize,
    /// Step 3: FK guesses (surrogate-flagged included).
    pub fk_guesses: Vec<FkGuess>,
    /// Step 3/4: primary-relation identification.
    pub primary_relation: PrimaryRelationReport,
    /// Step 5: duplicates per table (tables with none are omitted).
    pub duplicates: Vec<DuplicateReport>,
    /// Discovery metrics for the IND run.
    pub metrics: RunMetrics,
}

/// Step 4 output: one inter-source link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkReport {
    /// Source database.
    pub source_db: String,
    /// Linking attribute in the source.
    pub source_attr: QualifiedName,
    /// Target database.
    pub target_db: String,
    /// Accession attribute of the target's primary relation.
    pub target_attr: QualifiedName,
    /// Inclusion coefficient of the link.
    pub coefficient: f64,
    /// True when the link is an exact IND.
    pub exact: bool,
    /// When the link only holds after stripping a common affix (the
    /// paper's "PDB-144f" case, Sec. 7), the transform as
    /// `prefix…suffix`; `None` for plain inclusions.
    pub transform: Option<String>,
}

/// Full pipeline output.
#[derive(Debug)]
pub struct AladinReport {
    /// Per-source results.
    pub sources: Vec<SourceReport>,
    /// Inter-source links found in step 4.
    pub links: Vec<LinkReport>,
}

impl fmt::Display for AladinReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.sources {
            writeln!(
                f,
                "source {:<10} tables={:<3} attrs={:<4} rows={:<7} keys={:<3} inds={:<6} primary={:?}",
                s.name,
                s.tables,
                s.attributes,
                s.rows,
                s.key_candidates.len(),
                s.ind_count,
                s.primary_relation.primary_candidates,
            )?;
        }
        for l in &self.links {
            writeln!(
                f,
                "link {}.{} -> {}.{} (coefficient {:.2}{}{})",
                l.source_db,
                l.source_attr,
                l.target_db,
                l.target_attr,
                l.coefficient,
                if l.exact { ", exact" } else { "" },
                match &l.transform {
                    Some(t) => format!(", via transform {t}"),
                    None => String::new(),
                },
            )?;
        }
        Ok(())
    }
}

/// Step 2: primary-key candidates by data-driven uniqueness.
pub fn key_candidates(db: &Database) -> Vec<KeyCandidate> {
    ind_core::profile_database(db)
        .into_iter()
        .filter(|p| p.is_referenced_candidate())
        .map(|p| KeyCandidate {
            attribute: p.name,
            distinct: p.distinct,
        })
        .collect()
}

/// Step 5: exact-duplicate rows per table (canonical rendering of the full
/// row, NULL marked distinctly).
pub fn find_duplicates(db: &Database) -> Vec<DuplicateReport> {
    let mut out = Vec::new();
    for table in db.tables() {
        let mut seen: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut dupes = 0usize;
        for i in 0..table.row_count() {
            let mut key = Vec::new();
            for (_, _, col) in table.iter_columns() {
                match &col[i] {
                    Value::Null => key.push(0u8),
                    v => {
                        key.push(1u8);
                        v.render_canonical(&mut key);
                    }
                }
                key.push(0xFF); // field separator
            }
            let counter = seen.entry(key).or_insert(0);
            if *counter > 0 {
                dupes += 1;
            }
            *counter += 1;
        }
        if dupes > 0 {
            out.push(DuplicateReport {
                table: table.name().to_string(),
                duplicate_rows: dupes,
            });
        }
    }
    out
}

/// Runs steps 2–5 over the given sources.
pub fn run_aladin(sources: &[&Database], config: &AladinConfig) -> Result<AladinReport> {
    let finder = IndFinder::new(config.finder.clone());
    let mut reports = Vec::with_capacity(sources.len());

    for db in sources {
        let discovery = finder.discover_in_memory(db)?;
        let primary = identify_primary_relation(db, &discovery, &config.accession);
        reports.push(SourceReport {
            name: db.name().to_string(),
            tables: db.table_count(),
            attributes: db.attribute_count(),
            rows: db.total_rows(),
            key_candidates: key_candidates(db),
            ind_count: discovery.ind_count(),
            fk_guesses: fk_guesses_filtered(db, &discovery),
            primary_relation: primary,
            duplicates: find_duplicates(db),
            metrics: discovery.metrics.clone(),
        });
    }

    // Step 4: for each source attribute, test inclusion against the
    // accession attributes of every *other* source's primary relations.
    // "This step only considers primary relations as targets, thus
    // drastically reducing the search space."
    let mut links = Vec::new();
    for (si, source) in sources.iter().enumerate() {
        for (ti, target) in sources.iter().enumerate() {
            if si == ti {
                continue;
            }
            let target_report = &reports[ti];
            let targets: Vec<&QualifiedName> = target_report
                .primary_relation
                .accession_candidates
                .iter()
                .filter(|qn| {
                    target_report
                        .primary_relation
                        .primary_candidates
                        .contains(&qn.table)
                })
                .collect();
            if targets.is_empty() {
                continue;
            }
            let (profiles, _) = memory_export(source);
            for profile in &profiles {
                if profile.data_type != DataType::Text || profile.non_null == 0 {
                    continue;
                }
                let source_col = source.column(&profile.name)?;
                let source_set = extract_memory_set(source_col);
                for target_attr in &targets {
                    let target_col = target.column(target_attr)?;
                    let target_set = extract_memory_set(target_col);
                    let mut m = RunMetrics::new();
                    let count = inclusion_count(
                        &mut source_set.cursor(),
                        &mut target_set.cursor(),
                        &mut m,
                    )?;
                    let coefficient = count.coefficient();
                    if coefficient >= config.link_threshold && count.dep_total > 0 {
                        links.push(LinkReport {
                            source_db: source.name().to_string(),
                            source_attr: profile.name.clone(),
                            target_db: target.name().to_string(),
                            target_attr: (*target_attr).clone(),
                            coefficient,
                            exact: count.is_exact(),
                            transform: None,
                        });
                    } else if let Some(hit) = crate::concat::find_concat_match(
                        source_col,
                        target_col,
                        config.link_threshold,
                        &mut m,
                    ) {
                        // The plain inclusion failed, but stripping a shared
                        // affix recovers the link — the paper's "PDB-144f"
                        // concatenated-value case.
                        links.push(LinkReport {
                            source_db: source.name().to_string(),
                            source_attr: profile.name.clone(),
                            target_db: target.name().to_string(),
                            target_attr: (*target_attr).clone(),
                            coefficient: hit.coefficient(),
                            exact: hit.inclusion.is_exact(),
                            transform: Some(format!(
                                "strip '{}'…'{}'",
                                hit.transform.prefix, hit.transform.suffix
                            )),
                        });
                    }
                }
            }
        }
    }

    Ok(AladinReport {
        sources: reports,
        links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ind_storage::{ColumnSchema, Table, TableSchema};

    /// Two toy sources: `target` has a primary relation with accessions;
    /// `source` links to it exactly from one column and partially from
    /// another.
    fn fixture() -> (Database, Database) {
        let mut target = Database::new("target");
        let mut main = Table::new(
            TableSchema::new(
                "main",
                vec![ColumnSchema::new("acc", DataType::Text).not_null().unique()],
            )
            .unwrap(),
        );
        for i in 0..20i64 {
            main.insert(vec![format!("AC{:04}", i).into()]).unwrap();
        }
        target.add_table(main).unwrap();
        let mut annot = Table::new(
            TableSchema::new("annot", vec![ColumnSchema::new("main_acc", DataType::Text)]).unwrap(),
        );
        for i in 0..30i64 {
            annot
                .insert(vec![format!("AC{:04}", i % 20).into()])
                .unwrap();
        }
        target.add_table(annot).unwrap();

        let mut source = Database::new("source");
        let mut xref = Table::new(
            TableSchema::new(
                "xref",
                vec![
                    ColumnSchema::new("exact_link", DataType::Text),
                    ColumnSchema::new("partial_link", DataType::Text),
                    ColumnSchema::new("unrelated", DataType::Text),
                ],
            )
            .unwrap(),
        );
        for i in 0..10i64 {
            let partial = if i < 5 {
                format!("AC{:04}", i)
            } else {
                format!("zz{i} junk value")
            };
            xref.insert(vec![
                format!("AC{:04}", i).into(),
                partial.into(),
                format!("other {i} text").into(),
            ])
            .unwrap();
        }
        source.add_table(xref).unwrap();
        (source, target)
    }

    #[test]
    fn pipeline_produces_source_reports() {
        let (source, target) = fixture();
        let report = run_aladin(&[&source, &target], &AladinConfig::default()).unwrap();
        assert_eq!(report.sources.len(), 2);
        let t = report.sources.iter().find(|s| s.name == "target").unwrap();
        assert_eq!(t.primary_relation.unambiguous_primary(), Some("main"));
        assert!(t.ind_count >= 1, "annot.main_acc ⊆ main.acc");
        assert!(!t.key_candidates.is_empty());
    }

    #[test]
    fn exact_and_partial_links_are_found() {
        let (source, target) = fixture();
        let report = run_aladin(&[&source, &target], &AladinConfig::default()).unwrap();
        let exact = report
            .links
            .iter()
            .find(|l| l.source_attr.column == "exact_link")
            .expect("exact link");
        assert!(exact.exact);
        assert_eq!(exact.coefficient, 1.0);
        assert_eq!(exact.target_attr.to_string(), "main.acc");

        let partial = report
            .links
            .iter()
            .find(|l| l.source_attr.column == "partial_link")
            .expect("partial link");
        assert!(!partial.exact);
        assert!(partial.coefficient >= 0.3 && partial.coefficient < 1.0);

        assert!(
            !report
                .links
                .iter()
                .any(|l| l.source_attr.column == "unrelated"),
            "unrelated text must not link"
        );
    }

    #[test]
    fn threshold_controls_partial_links() {
        let (source, target) = fixture();
        let config = AladinConfig {
            link_threshold: 0.9,
            ..Default::default()
        };
        let report = run_aladin(&[&source, &target], &config).unwrap();
        assert!(report
            .links
            .iter()
            .all(|l| l.source_attr.column == "exact_link"));
    }

    #[test]
    fn duplicates_are_detected() {
        let mut db = Database::new("dup");
        let mut t = Table::new(
            TableSchema::new("t", vec![ColumnSchema::new("x", DataType::Text)]).unwrap(),
        );
        t.insert(vec!["a".into()]).unwrap();
        t.insert(vec!["a".into()]).unwrap();
        t.insert(vec!["b".into()]).unwrap();
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Null]).unwrap();
        db.add_table(t).unwrap();
        let dupes = find_duplicates(&db);
        assert_eq!(dupes.len(), 1);
        assert_eq!(dupes[0].duplicate_rows, 2, "one 'a' copy + one NULL copy");
    }

    #[test]
    fn report_display_is_readable() {
        let (source, target) = fixture();
        let report = run_aladin(&[&source, &target], &AladinConfig::default()).unwrap();
        let text = report.to_string();
        assert!(text.contains("source"));
        assert!(text.contains("link"));
        assert!(text.contains("main.acc"));
    }
}
