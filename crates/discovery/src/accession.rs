//! Accession-number-candidate detection (Sec. 5, heuristic 1).
//!
//! "One of the attributes of a primary relation must be an accession number
//! candidate, which is a domain specific criterion and means that all
//! values of this attribute are at least four characters long, contain at
//! least one character, and must not differ in length more than 20%."
//!
//! The softened variant ("when softening the rules such that only 99.98% of
//! a column's values must fulfill the first criteria") admits columns with
//! a tiny fraction of outlier values.

use ind_storage::{DataType, Database, QualifiedName, Value};

/// The accession-number rules with a configurable qualifying fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessionRules {
    /// Minimum value length ("at least four characters long").
    pub min_len: usize,
    /// Maximum relative length spread over qualifying values
    /// ("must not differ in length more than 20%").
    pub max_len_spread: f64,
    /// Fraction of values that must satisfy the per-value criteria
    /// (1.0 = strict; the paper's softened run used 0.9998).
    pub min_fraction: f64,
}

impl Default for AccessionRules {
    fn default() -> Self {
        AccessionRules {
            min_len: 4,
            max_len_spread: 0.2,
            min_fraction: 1.0,
        }
    }
}

impl AccessionRules {
    /// The paper's strict rules.
    pub fn strict() -> Self {
        Self::default()
    }

    /// Rules softened to the given qualifying fraction.
    pub fn softened(min_fraction: f64) -> Self {
        AccessionRules {
            min_fraction,
            ..Self::default()
        }
    }

    /// Per-value criterion: long enough and contains a letter.
    fn value_qualifies(&self, v: &str) -> bool {
        v.len() >= self.min_len && v.chars().any(|c| c.is_ascii_alphabetic())
    }

    /// Whether a column's non-null values make it an accession-number
    /// candidate.
    pub fn is_candidate(&self, values: &[Value]) -> bool {
        let mut total = 0usize;
        let mut qualifying = 0usize;
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        for v in values {
            if v.is_null() {
                continue;
            }
            total += 1;
            let rendered = v.to_string();
            if self.value_qualifies(&rendered) {
                qualifying += 1;
                min_len = min_len.min(rendered.len());
                max_len = max_len.max(rendered.len());
            }
        }
        if total == 0 || qualifying == 0 {
            return false;
        }
        if (qualifying as f64) < self.min_fraction * total as f64 {
            return false;
        }
        (max_len - min_len) as f64 <= self.max_len_spread * max_len as f64
    }
}

/// Scans every text column of `db` and returns the accession-number
/// candidates in schema order. (Integer and float columns cannot contain
/// letters; LOB payloads are not identifiers.)
pub fn find_accession_candidates(db: &Database, rules: &AccessionRules) -> Vec<QualifiedName> {
    let mut out = Vec::new();
    for table in db.tables() {
        for (_, cs, col) in table.iter_columns() {
            if cs.data_type != DataType::Text {
                continue;
            }
            if rules.is_candidate(col) {
                out.push(QualifiedName::new(table.name(), cs.name.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(values: &[&str]) -> Vec<Value> {
        values.iter().map(|s| Value::Text(s.to_string())).collect()
    }

    #[test]
    fn uniform_lettered_values_qualify() {
        let rules = AccessionRules::strict();
        assert!(rules.is_candidate(&texts(&["P12345", "Q99999", "O43210"])));
        assert!(
            rules.is_candidate(&texts(&["1abc", "2xyz"])),
            "exactly 4 chars"
        );
    }

    #[test]
    fn each_rule_can_disqualify() {
        let rules = AccessionRules::strict();
        // Too short.
        assert!(!rules.is_candidate(&texts(&["abc", "abcd"])));
        // No letters.
        assert!(!rules.is_candidate(&texts(&["1234", "5678"])));
        // Length spread beyond 20%.
        assert!(!rules.is_candidate(&texts(&["abcd", "abcdefghij"])));
        // Empty column.
        assert!(!rules.is_candidate(&[]));
        assert!(!rules.is_candidate(&[Value::Null]));
    }

    #[test]
    fn boundary_of_the_spread_rule() {
        let rules = AccessionRules::strict();
        // max 10, min 8: spread 2 ≤ 0.2 × 10 — allowed.
        assert!(rules.is_candidate(&texts(&["abcdefgh", "abcdefghij"])));
        // max 10, min 7: spread 3 > 2 — rejected.
        assert!(!rules.is_candidate(&texts(&["abcdefg", "abcdefghij"])));
    }

    #[test]
    fn softened_rules_tolerate_outliers() {
        let mut values: Vec<Value> = (0..999).map(|i| format!("AB{:04}", i).into()).collect();
        values.push("N/".into()); // too short: fails strict
        let strict = AccessionRules::strict();
        assert!(!strict.is_candidate(&values));
        let softened = AccessionRules::softened(0.99);
        assert!(softened.is_candidate(&values));
        // But not if outliers exceed the tolerance.
        let softened_tight = AccessionRules::softened(0.9999);
        assert!(!softened_tight.is_candidate(&values));
    }

    #[test]
    fn database_scan_only_considers_text_columns() {
        use ind_storage::{ColumnSchema, Table, TableSchema};
        let mut db = Database::new("acc");
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnSchema::new("code", DataType::Text),
                    ColumnSchema::new("num", DataType::Integer),
                    ColumnSchema::new("blob", DataType::Lob),
                ],
            )
            .unwrap(),
        );
        t.insert(vec!["AB1234".into(), 1234.into(), "AAAA".into()])
            .unwrap();
        t.insert(vec!["CD5678".into(), 5678.into(), "BBBB".into()])
            .unwrap();
        db.add_table(t).unwrap();
        let found = find_accession_candidates(&db, &AccessionRules::strict());
        assert_eq!(found, vec![QualifiedName::new("t", "code")]);
    }
}
