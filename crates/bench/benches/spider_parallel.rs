//! Sequential SPIDER vs value-domain-partitioned parallel SPIDER.
//!
//! Uses the same PDB-shaped database the CLI produces for
//! `spider-ind generate pdb <dir> --scale 200`, so the numbers line up with
//! end-to-end runs. Thread counts 1/2/4/8 sweep the partition fan-out; the
//! `spider` row is the sequential baseline the parallel rows must match
//! result-for-result (asserted before timing) and, given more than one
//! hardware core, beat on wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ind_core::{
    generate_candidates, memory_export, partition_boundaries, run_spider, run_spider_parallel,
    PretestConfig, RunMetrics,
};
use ind_datagen::{generate_pdb, OpenMmsConfig};
use ind_valueset::RangeProvider;

/// The CLI's `generate pdb <dir> --scale 200` configuration.
fn scale200_pdb() -> ind_storage::Database {
    generate_pdb(&OpenMmsConfig {
        entries: 200 * 4,
        base_rows: 200 * 3,
        seed: 42,
        ..OpenMmsConfig::small_fraction()
    })
}

fn spider_vs_spiderpar(c: &mut Criterion) {
    let db = scale200_pdb();
    let (profiles, provider) = memory_export(&db);
    let mut gen = RunMetrics::new();
    let candidates = generate_candidates(&profiles, &PretestConfig::default(), &mut gen);
    println!(
        "pdb --scale 200: {} tables, {} attributes, {} candidates",
        db.table_count(),
        db.attribute_count(),
        candidates.len()
    );

    // Agreement gate: never time a wrong answer.
    let mut m = RunMetrics::new();
    let sequential = run_spider(&provider, &candidates, &mut m).expect("spider");
    for threads in [2usize, 4, 8] {
        let mut m = RunMetrics::new();
        let parallel = run_spider_parallel(&provider, &profiles, &candidates, threads, &mut m)
            .expect("spiderpar");
        assert_eq!(parallel, sequential, "threads={threads}");
    }

    let mut group = c.benchmark_group("spider_vs_spiderpar_pdb200");
    group.sample_size(10);
    group.bench_function("spider", |b| {
        b.iter(|| {
            let mut m = RunMetrics::new();
            run_spider(&provider, &candidates, &mut m)
                .expect("spider")
                .len()
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("spiderpar", threads), &threads, |b, &t| {
            b.iter(|| {
                let mut m = RunMetrics::new();
                run_spider_parallel(&provider, &profiles, &candidates, t, &mut m)
                    .expect("spiderpar")
                    .len()
            })
        });
    }
    group.finish();

    // The measured wall-clock above serialises the partitions on machines
    // with fewer hardware cores than workers. The multicore wall-clock is
    // governed by the slowest single partition (plus the intersection, which
    // is microseconds) — report that critical path per fan-out.
    println!("\nper-partition critical path (multicore wall-clock estimate):");
    let attrs: std::collections::BTreeSet<u32> =
        candidates.iter().flat_map(|c| [c.dep, c.refd]).collect();
    for partitions in [2usize, 4, 8] {
        let boundaries = partition_boundaries(&profiles, &attrs, partitions);
        let mut cuts: Vec<Option<&[u8]>> = vec![None];
        cuts.extend(boundaries.iter().map(|b| Some(b.as_slice())));
        cuts.push(None);
        let mut worst = std::time::Duration::ZERO;
        let mut total = std::time::Duration::ZERO;
        for window in cuts.windows(2) {
            let view = RangeProvider::new(&provider, window[0], window[1]);
            let start = std::time::Instant::now();
            let mut m = RunMetrics::new();
            run_spider(&view, &candidates, &mut m).expect("partition spider");
            let elapsed = start.elapsed();
            worst = worst.max(elapsed);
            total += elapsed;
        }
        println!(
            "  {partitions} partitions: max {worst:?}, sum {total:?} \
             (ideal speedup over sum: {:.2}x)",
            total.as_secs_f64() / worst.as_secs_f64()
        );
    }
}

criterion_group!(benches, spider_vs_spiderpar);
criterion_main!(benches);
