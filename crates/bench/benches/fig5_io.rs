//! Criterion micro-benchmark behind Figure 5: brute force vs single pass
//! over growing attribute subsets (in-memory, so the measured time tracks
//! the item counts the figure plots; the counts themselves come from
//! `cargo run -p ind-bench --bin fig5`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ind_bench::datasets::bench_scale;
use ind_core::{
    generate_candidates, memory_export, run_brute_force, run_single_pass, PretestConfig, RunMetrics,
};

fn fig5_io(c: &mut Criterion) {
    let db = bench_scale::uniprot();
    let (profiles, provider) = memory_export(&db);
    let mut group = c.benchmark_group("fig5_io");
    group.sample_size(10);
    for k in [20usize, 40, 82] {
        let subset = &profiles[..k.min(profiles.len())];
        let mut gen = RunMetrics::new();
        let candidates = generate_candidates(subset, &PretestConfig::default(), &mut gen);
        group.bench_with_input(
            BenchmarkId::new("brute_force", k),
            &candidates,
            |b, candidates| {
                b.iter(|| {
                    let mut m = RunMetrics::new();
                    run_brute_force(&provider, candidates, &mut m)
                        .expect("bf")
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("single_pass", k),
            &candidates,
            |b, candidates| {
                b.iter(|| {
                    let mut m = RunMetrics::new();
                    run_single_pass(&provider, candidates, &mut m)
                        .expect("sp")
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig5_io);
criterion_main!(benches);
